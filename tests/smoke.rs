//! Workspace-level smoke tests through the `epochs_too_epic` facade: every
//! allocator model, reclamation scheme, and data structure the factories
//! know about can actually be constructed and survive one tiny operation.

use epochs_too_epic::alloc::{build_allocator, AllocatorKind, CostModel};
use epochs_too_epic::ds::{build_tree, TreeKind};
use epochs_too_epic::harness::experiments::{all_experiments, run_by_name};
use epochs_too_epic::smr::{build_smr, SmrConfig, SmrKind};
use std::sync::Arc;

const ALLOCATORS: [AllocatorKind; 5] = [
    AllocatorKind::Je,
    AllocatorKind::JeIncr,
    AllocatorKind::Tc,
    AllocatorKind::Mi,
    AllocatorKind::Sys,
];

const TREES: [TreeKind; 4] = [TreeKind::Ab, TreeKind::Occ, TreeKind::Dgt, TreeKind::Hm];

#[test]
fn every_allocator_kind_builds_and_allocates() {
    for kind in ALLOCATORS {
        let alloc = build_allocator(kind, 2, CostModel::zero());
        assert_eq!(alloc.name(), kind.name());
        let p = alloc.alloc(0, 64);
        alloc.dealloc(0, p);
        assert_eq!(alloc.snapshot().totals.allocs, 1, "{kind:?} miscounted");
    }
}

#[test]
fn every_smr_kind_builds_and_retires() {
    for kind in SmrKind::ALL {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let smr = build_smr(kind, Arc::clone(&alloc), SmrConfig::new(1));
        assert_eq!(smr.kind(), kind, "factory returned the wrong scheme");
        {
            let handle = smr.register(0);
            {
                let guard = handle.begin_op();
                let p = guard.alloc(64);
                guard.retire(p);
            }
            handle.detach();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 1, "{kind:?} lost a retirement");
        assert_eq!(
            s.freed + s.garbage,
            1,
            "{kind:?} neither freed nor accounted the retired node"
        );
    }
}

#[test]
fn every_tree_kind_builds_over_every_scheme_family() {
    // Each map over a slot-based, an epoch-based, and a neutralizing scheme:
    // together these cover every protect/validate/poll code path.
    for tree_kind in TREES {
        for smr_kind in [SmrKind::Hp, SmrKind::Debra, SmrKind::Nbr] {
            let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
            let smr = build_smr(smr_kind, alloc, SmrConfig::new(1));
            let map = build_tree(tree_kind, smr);
            let h = map.smr().register(0);
            assert!(map.insert(&h, 7, 70), "{tree_kind:?}/{smr_kind:?} insert");
            assert_eq!(map.get(&h, 7), Some(70), "{tree_kind:?}/{smr_kind:?} get");
            assert!(map.remove(&h, 7), "{tree_kind:?}/{smr_kind:?} remove");
            assert_eq!(map.get(&h, 7), None);
            assert_eq!(map.size(), 0);
            map.check_invariants().expect("invariants");
            h.detach();
            map.smr().quiesce_and_drain();
        }
    }
}

#[test]
fn run_by_name_agrees_with_registry() {
    // Registry ids resolve; a fabricated one does not. (Actually *running*
    // an experiment is the harness crate's own tests' job — here we only
    // check the lookup path the CLI depends on.)
    assert!(run_by_name("definitely_not_an_experiment").is_none());
    let registry = all_experiments();
    let ids: Vec<&str> = registry.iter().map(|e| e.id.as_str()).collect();
    assert!(ids.contains(&"fig11a_experiment1"));
    assert!(ids.contains(&"fig11b_experiment2"));
}
