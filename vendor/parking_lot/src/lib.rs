//! Vendored shim for the subset of [`parking_lot`](https://docs.rs/parking_lot)
//! this workspace uses: `Mutex`, `RwLock` and their guards, with the
//! parking_lot calling convention (`lock()` returns the guard directly, no
//! poisoning).
//!
//! The build container has no network access to crates.io, so the workspace
//! `parking_lot` dependency resolves to this path crate (see the root
//! `Cargo.toml` `[workspace.dependencies]`). The shim delegates to
//! `std::sync` primitives — on Linux those are futex-based, so the lock
//! *contention* the allocator cost model relies on (DESIGN.md §2) remains
//! real; only parking_lot's adaptive spinning and tiny lock word are lost.
//! Swapping in the real crate is a one-line change in the root manifest.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::PoisonError;

/// A mutual-exclusion primitive with the parking_lot API: `lock()` returns
/// the guard directly and panics in a poisoned-state-free world (a panicked
/// holder simply passes the data through, like parking_lot's no-poisoning
/// semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike `std`, never
    /// returns a poison error: a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data, bypassing the lock (safe:
    /// `&mut self` proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with the parking_lot API (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_contended() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
