//! Vendored shim for the subset of [`criterion`](https://docs.rs/criterion)
//! the `epic-bench` microbenchmarks use: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! The build container has no network access to crates.io, so the workspace
//! `criterion` dependency resolves to this path crate. It is not a toy: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! measurement window, and per-iteration times are printed in criterion's
//! familiar `time: [low mid high]` shape (mid is the p50), followed by
//! variance-aware statistics — the p95 quantile and the median absolute
//! deviation (MAD), a robust spread estimate that a handful of
//! descheduling outliers cannot inflate the way a standard deviation can.
//! A perf claim should cite p50 ± MAD, not min/max. There are no HTML
//! reports or CLI filters. Swap in the real crate via the root manifest
//! when building online.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to [`Bencher::iter`] closures' host functions.
pub struct Criterion {
    /// Target wall-clock time of one measurement window. Criterion defaults
    /// to 3 s + 3 s warm-up; the shim keeps CI fast with 300 ms, which is
    /// ample for the ns-scale operations benchmarked here. Overridden by
    /// `EPIC_BENCH_MILLIS` (read once at construction).
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("EPIC_BENCH_MILLIS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Criterion {
            window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Sets the measurement window, overriding the env-derived default.
    pub fn measurement_time(mut self, window: Duration) -> Self {
        self.window = window;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("{name}");
        BenchmarkGroup { c: self, name }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.window, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.c.window, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.c.window, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (printing-only in the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name, a parameter,
/// or both.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter (the group name is the function).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Timing loop handle: call [`iter`](Bencher::iter) exactly once per
/// benchmark closure invocation.
pub struct Bencher {
    /// Total elapsed time across `iters` routine invocations.
    elapsed: Duration,
    /// Number of routine invocations to time.
    iters: u64,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters,
    };
    f(&mut b);
    b.elapsed
}

fn run_one(label: &str, window: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: double the batch size until a batch fills 1/3 of the window.
    let warm_target = window / 3;
    let mut iters: u64 = 1;
    let mut warm_spent = Duration::ZERO;
    loop {
        let t = time_batch(f, iters);
        warm_spent += t;
        if t >= warm_target || warm_spent >= window || iters >= u64::MAX / 2 {
            break;
        }
        iters *= 2;
    }

    // Measurement: split the window into sample batches of the calibrated
    // size and keep per-iteration times for the summary.
    let batch = iters.max(1);
    let mut samples: Vec<f64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < window || samples.len() < 3 {
        let t = time_batch(f, batch);
        samples.push(t.as_nanos() as f64 / batch as f64);
        if samples.len() >= 1024 {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples.first().copied().unwrap_or(0.0);
    let median = samples[samples.len() / 2];
    let max = samples.last().copied().unwrap_or(0.0);
    let p95 = quantile_sorted(&samples, 0.95);
    let mad = median_abs_deviation(&samples, median);
    // The middle of the time triple IS the p50; only p95 and the MAD add
    // information beyond criterion's familiar [low mid high] shape.
    println!(
        "{label:<48} time: [{} {} {}]  p95 {} ±{} MAD  ({} samples x {batch} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        fmt_ns(p95),
        fmt_ns(mad),
        samples.len(),
    );
}

/// Linear-interpolated quantile of an ascending-sorted, non-empty-or-zero
/// sample set.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Median absolute deviation around `center`: the robust spread estimate.
/// Deschedules and frequency transitions produce heavy right tails that
/// blow up a standard deviation; the MAD ignores them.
fn median_abs_deviation(samples: &[f64], center: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut devs: Vec<f64> = samples.iter().map(|s| (s - center).abs()).collect();
    devs.sort_by(|a, b| a.total_cmp(b));
    devs[devs.len() / 2]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro: takes a
/// group name followed by the benchmark functions to run.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("get", "ab").to_string(), "get/ab");
        assert_eq!(BenchmarkId::from_parameter("je").to_string(), "je");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 4.0);
        assert_eq!(quantile_sorted(&sorted, 0.5), 2.5);
        assert!((quantile_sorted(&sorted, 0.95) - 3.85).abs() < 1e-12);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn mad_is_outlier_robust() {
        // 9 tight samples and one huge deschedule spike.
        let mut samples = vec![10.0f64; 9];
        samples.push(10_000.0);
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let mad = median_abs_deviation(&samples, median);
        assert_eq!(mad, 0.0, "one spike in ten must not move the MAD");
        assert_eq!(median_abs_deviation(&[], 0.0), 0.0);
        // Symmetric spread: MAD equals the typical deviation.
        let spread = [8.0, 9.0, 10.0, 11.0, 12.0];
        assert_eq!(median_abs_deviation(&spread, 10.0), 1.0);
    }
}
