//! The three allocator free-path models head-to-head at the raw
//! `PoolAllocator` level: one thread allocates, others free remotely —
//! watch where the cost lands (Table 3 / Appendix B mechanics).
//!
//! ```text
//! cargo run --release --example allocator_models
//! ```

use epochs_too_epic::alloc::{build_allocator, AllocatorKind, CostModel};
use epochs_too_epic::util::Clock;
use std::ptr::NonNull;
use std::sync::Arc;

fn main() {
    const BLOCKS: usize = 40_000;
    const FREERS: usize = 3;
    println!("{BLOCKS} blocks allocated by thread 0, batch-freed remotely by {FREERS} threads:\n");

    for kind in AllocatorKind::ALL {
        let alloc = build_allocator(kind, FREERS + 1, CostModel::default_for_machine());
        // Owner allocates everything.
        let ptrs: Vec<usize> = (0..BLOCKS)
            .map(|_| alloc.alloc(0, 64).as_ptr() as usize)
            .collect();

        // Remote threads batch-free it all (the EBR-batch pattern).
        let clock = Clock::start();
        std::thread::scope(|scope| {
            for (i, chunk) in ptrs.chunks(BLOCKS / FREERS + 1).enumerate() {
                let alloc = Arc::clone(&alloc);
                let chunk = chunk.to_vec();
                scope.spawn(move || {
                    for p in chunk {
                        alloc.dealloc(i + 1, NonNull::new(p as *mut u8).unwrap());
                    }
                });
            }
        });
        let elapsed_ms = clock.elapsed_ns() as f64 / 1e6;

        let s = alloc.snapshot();
        println!(
            "{:<4} {:>8.1} ms   flushes {:>6}   remote {:>6}   lock-wait {:>7.1} ms",
            alloc.name(),
            elapsed_ms,
            s.totals.flushes,
            s.totals.remote_freed,
            s.totals.lock_wait_ns as f64 / 1e6,
        );
    }
    println!(
        "\nje/tc pay per-batch flushes into lock-guarded bins; mi's remote free is a\n\
         single CAS onto the owning page's list — no locks, no flushes (§3.3)."
    );
}
