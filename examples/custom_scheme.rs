//! Implementing your own reclamation scheme against the public [`RawSmr`]
//! trait — and getting the paper's Amortized Free technique for free by
//! embedding [`SchemeCommon`]. Wrapping the scheme in [`Smr::from_raw`]
//! gives it the thread-bound `SmrHandle`/`OpGuard` surface (including the
//! registration guard and the `protect_load` combinator) with no extra
//! code: `local()` just declares the scheme passive.
//!
//! The scheme here is a deliberately minimal EBR ("MiniEbr"): one global
//! epoch, per-thread announcements, and the conservative lag-2 free rule
//! (objects retired under epoch tag `e` are freed once every thread has
//! announced an epoch ≥ `e + 2`; see `epic-smr`'s `rcu.rs` for the safety
//! argument). Everything batch-vs-amortized is delegated to
//! `SchemeCommon::dispose`, so flipping `FreeMode` turns this toy into
//! `miniebr_af` with no extra code.
//!
//! ```text
//! cargo run --release --example custom_scheme
//! ```

use epochs_too_epic::alloc::{build_allocator, AllocatorKind, CostModel, PoolAllocator, Tid};
use epochs_too_epic::ds::{build_tree, TreeKind};
use epochs_too_epic::smr::{
    FreeMode, RawSmr, RetiredList, SchemeCommon, SchemeLocal, Smr, SmrConfig, SmrKind, SmrSnapshot,
};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread that is not in an operation announces this sentinel.
const QUIESCENT: u64 = u64::MAX;

/// One thread's limbo bags: (epoch tag, objects retired under that tag).
/// The per-tag lists are intrusive — retiring into them and splicing them
/// out never allocates; only the tag spine is a Vec.
type LimboBags = Mutex<Vec<(u64, RetiredList)>>;

struct MiniEbr {
    common: SchemeCommon,
    epoch: AtomicU64,
    announce: Box<[AtomicU64]>,
    /// Per-thread limbo bags of (epoch tag, objects). A Mutex keeps the
    /// example short; the real schemes use owner-indexed slots instead.
    bags: Box<[LimboBags]>,
}

impl MiniEbr {
    fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        MiniEbr {
            epoch: AtomicU64::new(2), // start ≥ 2 so tag - 2 never underflows
            announce: (0..n).map(|_| AtomicU64::new(QUIESCENT)).collect(),
            bags: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            common: SchemeCommon::new("miniebr", alloc, cfg),
        }
    }

    /// The grace-period check: advance the epoch if everyone has caught
    /// up, then free every bag generation that is ≥ 2 epochs stale.
    fn try_reclaim(&self, tid: Tid) {
        let e = self.epoch.load(Ordering::SeqCst);
        let all_current = self
            .announce
            .iter()
            .all(|a| matches!(a.load(Ordering::SeqCst), v if v == QUIESCENT || v >= e));
        if !all_current {
            return;
        }
        let _ = self
            .epoch
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.common.stats.get(tid).on_scan();
        self.common.record_epoch_advance(tid, e + 1);
        let mut bag = self.bags[tid].lock().unwrap();
        let mut freeable = RetiredList::new();
        bag.retain_mut(|(tag, objs)| {
            // Safe once every thread announced ≥ tag + 2 (epoch is only
            // e + 1 now, so require tag ≤ e - 1... conservatively e - 2).
            if *tag + 2 <= e {
                freeable.append(objs);
                false
            } else {
                true
            }
        });
        drop(bag);
        // Batch vs amortized vs pooled — entirely SchemeCommon's business.
        self.common.dispose(tid, &mut freeable);
    }
}

impl RawSmr for MiniEbr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        let e = self.epoch.load(Ordering::SeqCst);
        self.announce[tid].store(e, Ordering::SeqCst);
    }

    fn end_op(&self, tid: Tid) {
        self.announce[tid].store(QUIESCENT, Ordering::SeqCst);
    }

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {} // epoch scheme: no-op

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid); // drives the amortized drain
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        let tag = self.epoch.load(Ordering::SeqCst);
        let mut bag = self.bags[tid].lock().unwrap();
        let objs = match bag.last_mut() {
            Some((t, objs)) if *t == tag => objs,
            _ => {
                bag.push((tag, RetiredList::new()));
                &mut bag.last_mut().expect("just pushed").1
            }
        };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { objs.push_retire(ptr, 0) };
        let total: usize = bag.iter().map(|(_, o)| o.len()).sum();
        drop(bag);
        if total >= self.common.cfg.bag_cap {
            self.try_reclaim(tid);
        }
    }

    fn detach(&self, tid: Tid) {
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for tid in 0..self.common.n_threads() {
            let mut bag = self.bags[tid].lock().unwrap();
            let mut all = RetiredList::new();
            for (_, mut objs) in bag.drain(..) {
                all.append(&mut objs);
            }
            drop(bag);
            self.common.free_batch_now(tid, &mut all);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Rcu // closest built-in family, for reporting purposes
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        // Epoch scheme: protect is a no-op, links never need re-validation
        // — protect_load compiles down to one Acquire load.
        SchemeLocal::passive()
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

fn run(mode: FreeMode) {
    let threads = 4;
    let alloc = build_allocator(AllocatorKind::Je, threads, CostModel::default_for_machine());
    let mut cfg = SmrConfig::new(threads).with_mode(mode).with_bag_cap(1024);
    cfg.af_backlog_cap = 16 * 1024; // relief valve well above steady backlog
    let smr = Smr::from_raw(Arc::new(MiniEbr::new(Arc::clone(&alloc), cfg)));
    let tree = build_tree(TreeKind::Ab, smr);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let tree = Arc::clone(&tree);
            scope.spawn(move || {
                let handle = tree.smr().register(tid);
                let mut x = 0x2545_F491_4F6C_DD1Du64 ^ ((tid as u64) << 17);
                for _ in 0..200_000u32 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Key and coin from well-separated bit ranges: xorshift
                    // low bits correlate across the state, and a correlated
                    // key/coin pair degenerates into "insert evens, remove
                    // odds" — no churn at all.
                    let key = (x >> 16) % 8192;
                    if (x >> 40) & 1 == 0 {
                        tree.insert(&handle, key, key);
                    } else {
                        tree.remove(&handle, key);
                    }
                }
                handle.detach();
            });
        }
    });

    let s = tree.smr().stats();
    let a = alloc.snapshot().totals;
    println!(
        "{:<12}  retired {:>8}  freed {:>8}  epochs {:>5}  flushes {:>5}  remote {:>7}",
        tree.smr().name(),
        s.retired,
        s.freed,
        s.epochs,
        a.flushes,
        a.remote_freed
    );
    tree.check_invariants().expect("tree invariants");
}

fn main() {
    println!("a user-defined scheme, batch vs amortized vs pooled (ABtree, Je model):\n");
    run(FreeMode::Batch);
    run(FreeMode::amortized());
    run(FreeMode::Pooled);
    println!(
        "\ntakeaway: embedding SchemeCommon gives any custom scheme the paper's\n\
         amortized-free (and pooled) disposal for free — compare the flush and\n\
         remote-free columns."
    );
}
