//! The remote-batch-free problem, §3 of the paper, as a demo you can watch:
//! the *same* data structure, scheme, and workload — only the free policy
//! differs — and the allocator counters tell the whole story.
//!
//! ```text
//! cargo run --release --example rbf_problem
//! ```

use epochs_too_epic::ds::TreeKind;
use epochs_too_epic::harness::{run_trial, WorkloadCfg};
use epochs_too_epic::smr::SmrKind;

fn main() {
    let threads = epochs_too_epic::util::Topology::detect().logical_cpus * 2;
    println!("ABtree + DEBRA on the jemalloc model, {threads} threads, 50/50 insert/delete\n");

    for (label, amortize) in [
        ("BATCH FREE (the anti-pattern)", false),
        ("AMORTIZED FREE (the fix)", true),
    ] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, threads);
        cfg.millis = 500;
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let a = &r.alloc.totals;
        println!("── {label}");
        println!("   throughput        {:>10.2} M ops/s", r.throughput / 1e6);
        println!("   objects freed     {:>10}", r.smr.freed);
        println!("   tcache flushes    {:>10}", a.flushes);
        println!(
            "   remote frees      {:>10}   (objects returned to other threads' arenas)",
            a.remote_freed
        );
        println!("   % time freeing    {:>10.1}", r.pct_free(threads));
        println!("   % time in flush   {:>10.1}", r.pct_flush(threads));
        println!("   % time lock-spin  {:>10.1}", r.pct_lock(threads));
        println!();
    }
    println!(
        "The batch run overflows the thread caches, forcing objects back to their\n\
         owners' arenas under contended locks (je_tcache_bin_flush_small). The\n\
         amortized run frees one object per allocation: the cache absorbs each one\n\
         and the next allocation reuses it locally — flushes and remote frees vanish."
    );
}
