//! Fault injection: what a single delayed thread does to each reclamation
//! family — the classic EBR weakness the paper's §3.1 cites ("a single
//! delayed thread can prevent all threads from reclaiming garbage").
//!
//! Thread 0 parks for 15 ms *inside* an operation every 50 ms, holding its
//! epoch announcement. Grace-period schemes (DEBRA, QSBR) stall whole
//! epochs; era/pointer-based schemes (HE, HP) only pin objects whose
//! lifetimes overlap the stall.
//!
//! ```text
//! cargo run --release --example fault_injection
//! ```

use epochs_too_epic::ds::TreeKind;
use epochs_too_epic::harness::{run_trial, WorkloadCfg};
use epochs_too_epic::smr::SmrKind;

fn main() {
    let threads = 4;
    println!("50/50 churn on the ABtree; thread 0 stalls 15ms of every 50ms:\n");
    println!(
        "{:<10} {:>14} {:>14} {:>16} {:>18}",
        "scheme", "clean Mops/s", "stalled Mops/s", "clean peak garb", "stalled peak garb"
    );
    for kind in [
        SmrKind::Debra,
        SmrKind::Qsbr,
        SmrKind::TokenPeriodic,
        SmrKind::He,
        SmrKind::Hp,
    ] {
        let mut clean_cfg = WorkloadCfg::new(TreeKind::Ab, kind, threads);
        clean_cfg.millis = 250;
        let clean = run_trial(&clean_cfg);

        let mut stalled_cfg = WorkloadCfg::new(TreeKind::Ab, kind, threads);
        stalled_cfg.millis = 250;
        stalled_cfg.stall = Some((50, 15));
        let stalled = run_trial(&stalled_cfg);

        println!(
            "{:<10} {:>14.2} {:>14.2} {:>16} {:>18}",
            clean.scheme,
            clean.throughput / 1e6,
            stalled.throughput / 1e6,
            clean.smr.peak_garbage,
            stalled.smr.peak_garbage,
        );
    }
    println!(
        "\ntakeaway: the stall balloons peak garbage for the epoch/token family\n\
         (everyone's limbo bags wait for thread 0) while the era/pointer family\n\
         keeps reclaiming everything the staller cannot reach."
    );
}
