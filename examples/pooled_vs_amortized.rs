//! The road the paper did not take: object pooling (footnote 4) next to
//! amortized freeing (§3.3) and classic batch freeing.
//!
//! Amortized free keeps the allocator in the loop but feeds it objects one
//! at a time, so its thread caches absorb and locally recycle them. Pooling
//! skips the allocator altogether — the same trick Version Based
//! Reclamation uses, which footnote 4 credits for VBR beating
//! allocator-interacting EBRs. The cost: pooled memory is invisible to the
//! allocator, so nothing else in the process can ever reuse it.
//!
//! ```text
//! cargo run --release --example pooled_vs_amortized
//! ```

use epochs_too_epic::ds::TreeKind;
use epochs_too_epic::harness::{run_trial, WorkloadCfg};
use epochs_too_epic::smr::{FreeMode, SmrKind};

fn main() {
    let threads = 4;
    println!("ABtree + DEBRA on the jemalloc model, three disposal policies:\n");
    println!(
        "{:<12} {:>9} {:>10} {:>10} {:>12} {:>9} {:>9}",
        "policy", "Mops/s", "freed", "pool hits", "alloc calls", "flushes", "remote"
    );
    for mode in [FreeMode::Batch, FreeMode::amortized(), FreeMode::Pooled] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, threads).with_mode(mode);
        cfg.millis = 250;
        let r = run_trial(&cfg);
        println!(
            "{:<12} {:>9.2} {:>10} {:>10} {:>12} {:>9} {:>9}",
            r.scheme,
            r.throughput / 1e6,
            r.smr.freed,
            r.smr.pool_hits,
            r.alloc.totals.allocs,
            r.alloc.totals.flushes,
            r.alloc.totals.remote_freed,
        );
    }
    println!(
        "\ntakeaway: both fixes kill the remote-batch-free problem (flushes/remote ~0).\n\
         Amortized free does it while still returning memory to the allocator —\n\
         the paper's point: allocator interaction can be made fast, not avoided."
    );
}
