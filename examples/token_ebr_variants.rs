//! The §4 progression: four Token-EBR variants on the same workload,
//! reproducing Table 4's story — why the naive ring fails, and why
//! amortized freeing turns the simplest EBR into the fastest.
//!
//! ```text
//! cargo run --release --example token_ebr_variants
//! ```

use epochs_too_epic::ds::TreeKind;
use epochs_too_epic::harness::{run_trial, WorkloadCfg};
use epochs_too_epic::smr::{FreeMode, SmrKind};

fn main() {
    let threads = epochs_too_epic::util::Topology::detect().logical_cpus * 2;
    println!("ABtree, {threads} threads — the Token-EBR design walk of §4:\n");
    let variants: [(&str, SmrKind, FreeMode, &str); 4] = [
        (
            "Naive      (free, swap, pass)",
            SmrKind::TokenNaive,
            FreeMode::Batch,
            "reclamation serializes around the ring; garbage piles up",
        ),
        (
            "Pass-first (pass, then free)",
            SmrKind::TokenPassFirst,
            FreeMode::Batch,
            "concurrent frees, but long frees still delay the next receipt",
        ),
        (
            "Periodic   (re-check every k frees)",
            SmrKind::TokenPeriodic,
            FreeMode::Batch,
            "token keeps moving, yet single long free calls still stall it",
        ),
        (
            "Amortized  (token_af)",
            SmrKind::TokenPeriodic,
            FreeMode::Amortized { per_op: 1 },
            "the paper's headline algorithm",
        ),
    ];
    for (label, kind, mode, note) in variants {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, kind, threads).with_mode(mode);
        cfg.millis = 400;
        let r = run_trial(&cfg);
        println!(
            "{label:<38} {:>7.2} M ops/s  freed {:>9}  garbage left {:>9}  // {note}",
            r.throughput / 1e6,
            r.smr.freed,
            r.smr.garbage
        );
    }
}
