//! Five-minute tour: build the paper's headline stack — an ABtree over
//! Amortized-free Token-EBR on the jemalloc model — run a workload, and
//! read the numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use epochs_too_epic::alloc::{build_allocator, AllocatorKind, CostModel};
use epochs_too_epic::ds::{build_tree, TreeKind};
use epochs_too_epic::smr::{build_smr, SmrConfig, SmrKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    let threads = 4;

    // 1. An allocator model: jemalloc-style thread caches + arenas.
    let alloc = build_allocator(AllocatorKind::Je, threads, CostModel::default_for_machine());

    // 2. A reclamation scheme: Token-EBR with Amortized Free — the paper's
    //    fastest configuration (token_af).
    let mut cfg = SmrConfig::new(threads).with_amortized(1);
    // Backlog relief valve at 4x the bag capacity (the harness default):
    // a tighter cap makes begin_op drain faster than the thread allocates,
    // overflowing the very thread caches AF is meant to protect.
    cfg.af_backlog_cap = 4 * cfg.bag_cap;
    let smr = build_smr(SmrKind::TokenPeriodic, Arc::clone(&alloc), cfg);
    println!("scheme: {}", smr.name());

    // 3. The paper's primary data structure.
    let tree = build_tree(TreeKind::Ab, smr);

    // 4. The paper's workload: 50% inserts, 50% deletes, uniform keys.
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                // Per-thread handle: the scheme's hot state, resolved once.
                let handle = tree.smr().register(tid);
                let mut x = 88_172_645_463_325_252u64 ^ (tid as u64) << 32;
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                while !stop.load(Ordering::Relaxed) {
                    // Key and coin from separated bit ranges (xorshift's
                    // neighbouring outputs share low-bit structure).
                    let key = (rng() >> 16) % 8192;
                    if (rng() >> 40) & 1 == 0 {
                        tree.insert(&handle, key, key);
                    } else {
                        tree.remove(&handle, key);
                    }
                }
                handle.detach();
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    // 5. Read the story out of the counters.
    let s = tree.smr().stats();
    let a = alloc.snapshot();
    println!("tree size now:        {}", tree.size());
    println!("nodes retired:        {}", s.retired);
    println!("nodes freed:          {}", s.freed);
    println!("token circulations:   {}", s.epochs);
    println!("unreclaimed garbage:  {}", s.garbage);
    println!(
        "tcache flushes:       {}  <- amortized free keeps this tiny",
        a.totals.flushes
    );
    println!(
        "remote frees:         {}  <- and this near zero",
        a.totals.remote_freed
    );
    println!(
        "peak pool memory:     {:.1} MiB",
        alloc.peak_bytes() as f64 / 1048576.0
    );
    tree.check_invariants().expect("tree invariants");
    println!("invariants: OK");
}
