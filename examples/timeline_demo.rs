//! Timeline graphs (§3.1): record reclamation events during a run and
//! render the paper's visualization — thread rows, batch-free boxes, blue
//! epoch dots with a projection strip — as ASCII (here) and SVG (written
//! to results/).
//!
//! ```text
//! cargo run --release --example timeline_demo
//! ```

use epochs_too_epic::ds::TreeKind;
use epochs_too_epic::harness::{results_dir, run_trial, WorkloadCfg};
use epochs_too_epic::smr::SmrKind;
use epochs_too_epic::timeline::{render_ascii, render_svg, RenderOptions};

fn main() {
    let threads = epochs_too_epic::util::Topology::detect().logical_cpus * 2;
    let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, threads)
        .with_timeline()
        .with_garbage_series();
    cfg.millis = 400;

    let r = run_trial(&cfg);
    let rec = r.recorder.as_ref().expect("timeline enabled");

    let opts = RenderOptions {
        title: format!(
            "DEBRA batch frees, {threads} threads (boxes = batch frees, o/^ = epoch advances)"
        ),
        width: 110,
        max_rows: threads,
        ..Default::default()
    };
    println!("{}", render_ascii(rec, &opts));

    let svg_path = results_dir().join("timeline_demo.svg");
    std::fs::write(&svg_path, render_svg(rec, &opts)).expect("write svg");
    println!("full SVG written to {}", svg_path.display());

    if let Some(series) = &r.garbage {
        println!(
            "\ngarbage per epoch ({} epochs, mean {:.0}, max {:.0}):\n{}",
            series.len(),
            series.mean_y(),
            series.max_y(),
            series.sparkline(100)
        );
    }
}
