//! # epochs_too_epic — umbrella crate for the PPoPP 2024 reproduction
//!
//! Reproduction of **"Are Your Epochs Too Epic? Batch Free Can Be Harmful"**
//! (PPoPP 2024): epoch-based memory reclamation schemes free
//! retired objects in large batches, and those batches overflow allocator
//! thread caches and serialize on arena locks — *Amortized Free* spreads the
//! frees across subsequent operations and recovers the lost throughput.
//!
//! This facade re-exports the workspace sub-crates under short module names
//! so examples and downstream users need a single dependency:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`alloc`] | `epic-alloc` | pool allocator with je/tc/mi free-path models |
//! | [`smr`] | `epic-smr` | reclamation schemes, `FreeMode`, Token-EBR |
//! | [`ds`] | `epic-ds` | (a,b)-tree, OCC BST, DGT tree, HM list |
//! | [`harness`] | `epic-harness` | workloads, trials, experiment registry |
//! | [`timeline`] | `epic-timeline` | event recorder + ASCII/SVG renderer |
//! | [`util`] | `epic-util` | padding, locks, RNGs, topology, stats |
//!
//! Start with the `quickstart` example (`cargo run --release --example
//! quickstart`), then `README.md` for the crate map and `DESIGN.md` for how
//! the reproduction maps onto the paper's figures.

#![warn(missing_docs)]

/// The allocator layer: re-export of [`epic_alloc`].
pub mod alloc {
    pub use epic_alloc::*;
}

/// The reclamation layer: re-export of [`epic_smr`].
pub mod smr {
    pub use epic_smr::*;
}

/// The data-structure layer: re-export of [`epic_ds`].
pub mod ds {
    pub use epic_ds::*;
}

/// The experiment harness: re-export of [`epic_harness`].
pub mod harness {
    pub use epic_harness::*;
}

/// Timeline recording and rendering: re-export of [`epic_timeline`].
pub mod timeline {
    pub use epic_timeline::*;
}

/// Low-level utilities: re-export of [`epic_util`].
pub mod util {
    pub use epic_util::*;
}
