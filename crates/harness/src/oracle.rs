//! The paper-shape oracle: executable assertions over [`ExperimentResult`]s.
//!
//! Every experiment ends with a free-text `paper shape: ...` print. This
//! module turns those prose claims into machine-checkable assertions: a
//! small DSL ([`Check`]) of shape predicates — ratios, orderings,
//! monotone trends, crossover absence, distribution fractions — each with
//! a noise tolerance and a [`Tier`]:
//!
//! * **Strict** assertions are structural or robust at any scale (grid
//!   completeness, by-construction inequalities). `epic-run check` exits
//!   non-zero when one fails — they are CI gates.
//! * **Advisory** assertions encode magnitude claims that only emerge at
//!   paper scale (large `EPIC_MILLIS`, many trials). A failing advisory
//!   is reported (and recorded in `SHAPES.json`) but never fails the
//!   build, so tiny smoke runs stay green while full runs still surface
//!   every deviation from the paper.
//!
//! Tolerances are *relative*: an [`Check::Ordering`] with `tol = 0.10`
//! accepts `greater ≥ 0.9 × lesser`. When an experiment reports a
//! measured noise level (`rel_ci95/...` metrics from multi-trial runs),
//! [`evaluate`] widens the tolerance by it, so the same oracle adapts to
//! however noisy the box happens to be (DESIGN.md §6).

use crate::config::ExperimentScale;
use crate::report::{ExperimentResult, Table};

/// How a failed assertion affects the overall verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Must hold at any scale; fails the `check` run.
    Strict,
    /// Paper-scale magnitude claim; reported but never fatal.
    Advisory,
}

impl Tier {
    /// Display label.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Strict => "strict",
            Tier::Advisory => "advisory",
        }
    }
}

/// One shape predicate over an experiment's metrics/series.
#[derive(Debug, Clone)]
pub enum Check {
    /// `metrics[num] / metrics[den] ≥ min`, within tolerance.
    RatioAtLeast {
        /// Numerator metric.
        num: String,
        /// Denominator metric.
        den: String,
        /// Minimum acceptable ratio.
        min: f64,
    },
    /// `metrics[greater] ≥ metrics[lesser]`, within tolerance.
    Ordering {
        /// The metric claimed to be larger.
        greater: String,
        /// The metric claimed to be smaller.
        lesser: String,
    },
    /// `metrics[metric] ≥ min`, within tolerance. With `min = 0` this is
    /// a pure existence check (missing metrics always fail).
    AtLeast {
        /// The metric.
        metric: String,
        /// Lower bound.
        min: f64,
    },
    /// `metrics[metric] ≤ max`, within tolerance.
    AtMost {
        /// The metric.
        metric: String,
        /// Upper bound.
        max: f64,
    },
    /// Every adjacent step of the series moves the claimed direction
    /// (within tolerance — small counter-moves under `tol` are accepted).
    Monotone {
        /// The series.
        series: String,
        /// `true` = non-decreasing, `false` = non-increasing.
        rising: bool,
    },
    /// The mean of the series' second half vs its first half moves the
    /// claimed direction — "grows/shrinks over time" without demanding
    /// point-wise monotonicity of a noisy signal.
    Trend {
        /// The series.
        series: String,
        /// `true` = later half larger.
        rising: bool,
    },
    /// `upper[i] ≥ lower[i]` at every index (within tolerance): the
    /// `upper` curve never crosses below `lower` across the sweep.
    CrossoverAbsent {
        /// The series claimed to dominate.
        upper: String,
        /// The dominated series.
        lower: String,
    },
    /// At most `max_fraction` of the series' entries are below
    /// `threshold` (threshold is tolerance-shrunk). Encodes "wins for
    /// 9/10 schemes"-style claims.
    FractionBelow {
        /// The series.
        series: String,
        /// Entries below this count against the budget.
        threshold: f64,
        /// Largest acceptable failing fraction.
        max_fraction: f64,
    },
}

/// A named, tiered, tolerance-carrying check.
#[derive(Debug, Clone)]
pub struct Assertion {
    /// Human-readable claim (appears in the verdict table / SHAPES.json).
    pub label: String,
    /// Strict or advisory.
    pub tier: Tier,
    /// Relative noise tolerance (see module docs).
    pub tol: f64,
    /// The predicate.
    pub check: Check,
}

impl Assertion {
    fn new(label: &str, check: Check) -> Self {
        Assertion {
            label: label.to_string(),
            tier: Tier::Strict,
            tol: 0.05,
            check,
        }
    }

    /// Demotes to advisory.
    pub fn advisory(mut self) -> Self {
        self.tier = Tier::Advisory;
        self
    }

    /// Overrides the relative tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }
}

/// `num/den ≥ min` (strict by default).
pub fn ratio_at_least(label: &str, num: &str, den: &str, min: f64) -> Assertion {
    Assertion::new(
        label,
        Check::RatioAtLeast {
            num: num.into(),
            den: den.into(),
            min,
        },
    )
}

/// `greater ≥ lesser` (strict by default).
pub fn ordering(label: &str, greater: &str, lesser: &str) -> Assertion {
    Assertion::new(
        label,
        Check::Ordering {
            greater: greater.into(),
            lesser: lesser.into(),
        },
    )
}

/// `metric ≥ min` (strict by default).
pub fn at_least(label: &str, metric: &str, min: f64) -> Assertion {
    Assertion::new(
        label,
        Check::AtLeast {
            metric: metric.into(),
            min,
        },
    )
}

/// `metric ≤ max` (strict by default).
pub fn at_most(label: &str, metric: &str, max: f64) -> Assertion {
    Assertion::new(
        label,
        Check::AtMost {
            metric: metric.into(),
            max,
        },
    )
}

/// Series non-decreasing (strict by default).
pub fn monotone_rising(label: &str, series: &str) -> Assertion {
    Assertion::new(
        label,
        Check::Monotone {
            series: series.into(),
            rising: true,
        },
    )
}

/// Series non-increasing (strict by default).
pub fn monotone_falling(label: &str, series: &str) -> Assertion {
    Assertion::new(
        label,
        Check::Monotone {
            series: series.into(),
            rising: false,
        },
    )
}

/// Second-half mean above first-half mean (strict by default).
pub fn trend_rising(label: &str, series: &str) -> Assertion {
    Assertion::new(
        label,
        Check::Trend {
            series: series.into(),
            rising: true,
        },
    )
}

/// `upper` stays at or above `lower` point-wise (strict by default).
pub fn crossover_absent(label: &str, upper: &str, lower: &str) -> Assertion {
    Assertion::new(
        label,
        Check::CrossoverAbsent {
            upper: upper.into(),
            lower: lower.into(),
        },
    )
}

/// At most `max_fraction` of the series below `threshold` (strict by
/// default).
pub fn fraction_below(label: &str, series: &str, threshold: f64, max_fraction: f64) -> Assertion {
    Assertion::new(
        label,
        Check::FractionBelow {
            series: series.into(),
            threshold,
            max_fraction,
        },
    )
}

/// Trial durations at or below this many milliseconds count as smoke
/// runs: AF-ratio magnitudes measured over a handful of milliseconds are
/// dominated by startup/drain phase noise, not by the steady-state
/// behavior the paper claims are about.
pub const SMOKE_MILLIS: u64 = 20;

/// Scale-aware tiering: demotes `a` to advisory when the per-trial
/// duration `millis` is within smoke range (`<= cutoff`), and leaves it
/// strict at paper scale. Pure — `all_oracles` feeds it the environment
/// so the same oracle catalog is a CI gate on full runs and merely a
/// report on smoke runs.
pub fn demote_at_millis(a: Assertion, cutoff: u64, millis: u64) -> Assertion {
    if millis <= cutoff {
        a.advisory()
    } else {
        a
    }
}

/// One experiment's registered paper-shape claims.
#[derive(Debug, Clone)]
pub struct Oracle {
    /// The experiment id this oracle checks (matches the registry —
    /// owned, because runbook-generated experiments synthesize their
    /// oracles at run time).
    pub experiment: String,
    /// The paper-shape sentence being encoded.
    pub claim: String,
    /// The assertions.
    pub assertions: Vec<Assertion>,
}

impl Oracle {
    fn new(experiment: impl Into<String>, claim: impl Into<String>) -> Self {
        Oracle {
            experiment: experiment.into(),
            claim: claim.into(),
            assertions: Vec::new(),
        }
    }

    fn check(mut self, a: Assertion) -> Self {
        self.assertions.push(a);
        self
    }
}

/// The outcome of one assertion against one result.
#[derive(Debug, Clone)]
pub struct AssertionOutcome {
    /// The assertion's claim label.
    pub label: String,
    /// Strict or advisory.
    pub tier: Tier,
    /// Whether the predicate held.
    pub passed: bool,
    /// Numbers behind the verdict (or what was missing).
    pub detail: String,
}

/// All outcomes for one experiment.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The experiment id.
    pub experiment: String,
    /// The encoded paper-shape sentence.
    pub claim: String,
    /// Per-assertion outcomes.
    pub outcomes: Vec<AssertionOutcome>,
}

impl OracleReport {
    /// Number of failed strict assertions.
    pub fn strict_failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.passed && o.tier == Tier::Strict)
            .count()
    }

    /// Number of failed advisory assertions.
    pub fn advisory_failures(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.passed && o.tier == Tier::Advisory)
            .count()
    }

    /// `PASS` (all green), `ADVISORY` (only advisory misses), or `FAIL`
    /// (at least one strict miss).
    pub fn verdict(&self) -> &'static str {
        if self.strict_failures() > 0 {
            "FAIL"
        } else if self.advisory_failures() > 0 {
            "ADVISORY"
        } else {
            "PASS"
        }
    }
}

/// The per-experiment noise widening: the largest `rel_ci95/...` metric
/// the experiment reported (0 when single-trial).
fn noise_widening(result: &ExperimentResult) -> f64 {
    result
        .metrics()
        .iter()
        .filter(|(k, _)| k.starts_with("rel_ci95/"))
        .map(|(_, v)| *v)
        .fold(0.0, f64::max)
        .min(0.5) // cap: beyond 50% relative CI the data is noise anyway
}

/// Evaluates one oracle against one result.
pub fn evaluate(oracle: &Oracle, result: &ExperimentResult) -> OracleReport {
    let widen = noise_widening(result);
    let outcomes = oracle
        .assertions
        .iter()
        .map(|a| {
            let tol = a.tol + widen;
            let (passed, detail) = eval_check(&a.check, tol, result);
            AssertionOutcome {
                label: a.label.clone(),
                tier: a.tier,
                passed,
                detail,
            }
        })
        .collect();
    OracleReport {
        experiment: result.id.clone(),
        claim: oracle.claim.to_string(),
        outcomes,
    }
}

fn metric_of(result: &ExperimentResult, name: &str) -> Result<f64, String> {
    result
        .get(name)
        .ok_or_else(|| format!("metric '{name}' missing"))
}

fn series_of<'r>(result: &'r ExperimentResult, name: &str) -> Result<&'r [f64], String> {
    match result.get_series(name) {
        Some(s) if !s.is_empty() => Ok(s),
        Some(_) => Err(format!("series '{name}' is empty")),
        None => Err(format!("series '{name}' missing")),
    }
}

fn eval_check(check: &Check, tol: f64, result: &ExperimentResult) -> (bool, String) {
    match check {
        Check::RatioAtLeast { num, den, min } => {
            match (metric_of(result, num), metric_of(result, den)) {
                (Ok(n), Ok(d)) => {
                    if d <= 0.0 {
                        return (false, format!("denominator {den} = {d} (non-positive)"));
                    }
                    let ratio = n / d;
                    let floor = min * (1.0 - tol);
                    (
                        ratio >= floor,
                        format!("{num}/{den} = {ratio:.3} (needs ≥ {floor:.3})"),
                    )
                }
                (Err(e), _) | (_, Err(e)) => (false, e),
            }
        }
        Check::Ordering { greater, lesser } => {
            match (metric_of(result, greater), metric_of(result, lesser)) {
                (Ok(g), Ok(l)) => (
                    g >= l * (1.0 - tol),
                    format!("{greater} = {g:.3} vs {lesser} = {l:.3} (tol {tol:.2})"),
                ),
                (Err(e), _) | (_, Err(e)) => (false, e),
            }
        }
        Check::AtLeast { metric, min } => match metric_of(result, metric) {
            Ok(v) => {
                let floor = min * (1.0 - tol);
                (
                    v >= floor,
                    format!("{metric} = {v:.3} (needs ≥ {floor:.3})"),
                )
            }
            Err(e) => (false, e),
        },
        Check::AtMost { metric, max } => match metric_of(result, metric) {
            Ok(v) => {
                let ceil = max * (1.0 + tol);
                (v <= ceil, format!("{metric} = {v:.3} (needs ≤ {ceil:.3})"))
            }
            Err(e) => (false, e),
        },
        Check::Monotone { series, rising } => match series_of(result, series) {
            Ok(vals) => {
                let dir = if *rising { "rising" } else { "falling" };
                for w in vals.windows(2) {
                    let ok = if *rising {
                        w[1] >= w[0] * (1.0 - tol)
                    } else {
                        w[1] <= w[0] * (1.0 + tol)
                    };
                    if !ok {
                        return (
                            false,
                            format!("{series} not {dir}: step {:.3} -> {:.3}", w[0], w[1]),
                        );
                    }
                }
                (true, format!("{series} {dir} across {} points", vals.len()))
            }
            Err(e) => (false, e),
        },
        Check::Trend { series, rising } => match series_of(result, series) {
            Ok(vals) => {
                let mid = vals.len() / 2;
                let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len().max(1) as f64;
                let (early, late) = (mean(&vals[..mid.max(1)]), mean(&vals[mid..]));
                let ok = if *rising {
                    late >= early * (1.0 - tol)
                } else {
                    late <= early * (1.0 + tol)
                };
                (
                    ok,
                    format!("{series} halves: early {early:.3}, late {late:.3}"),
                )
            }
            Err(e) => (false, e),
        },
        Check::CrossoverAbsent { upper, lower } => {
            match (series_of(result, upper), series_of(result, lower)) {
                (Ok(u), Ok(l)) => {
                    if u.len() != l.len() {
                        return (
                            false,
                            format!(
                                "length mismatch: {upper} {} vs {lower} {}",
                                u.len(),
                                l.len()
                            ),
                        );
                    }
                    for (i, (a, b)) in u.iter().zip(l.iter()).enumerate() {
                        if *a < b * (1.0 - tol) {
                            return (
                                false,
                                format!("{upper} dips below {lower} at index {i}: {a:.3} < {b:.3}"),
                            );
                        }
                    }
                    (true, format!("{upper} ≥ {lower} at all {} points", u.len()))
                }
                (Err(e), _) | (_, Err(e)) => (false, e),
            }
        }
        Check::FractionBelow {
            series,
            threshold,
            max_fraction,
        } => match series_of(result, series) {
            Ok(vals) => {
                let cut = threshold * (1.0 - tol);
                let below = vals.iter().filter(|v| **v < cut).count();
                let frac = below as f64 / vals.len() as f64;
                (
                    frac <= *max_fraction,
                    format!(
                        "{below}/{} of {series} below {cut:.3} (frac {frac:.2}, max {max_fraction:.2})",
                        vals.len()
                    ),
                )
            }
            Err(e) => (false, e),
        },
    }
}

/// One registered oracle per experiment, in registry order: the builtin
/// catalog below, then one synthesized oracle per runbook-generated
/// cell (see [`crate::scenario::generated_oracles`]). Every id in
/// [`crate::experiments::all_experiments`] has exactly one entry here
/// (enforced by `tests/cli_consistency.rs`).
pub fn all_oracles() -> Vec<Oracle> {
    let scale = ExperimentScale::detect();
    // Throughput-ratio claims (AF vs batch and friends) need steady-state
    // trials; at smoke durations they are demoted to advisory (see
    // [`demote_at_millis`]).
    let millis = epic_util::topology::env_u64("EPIC_MILLIS", 200);
    let sweep = scale.sweep.len() as f64;
    let mut t1_points = vec![1, scale.mid_threads, scale.max_threads];
    t1_points.dedup();
    let t1_rows = t1_points.len() as f64;
    // fig18_29 thread points (same dedup the experiment applies).
    let mut g_points = vec![1, 2, scale.mid_threads, scale.max_threads];
    g_points.dedup();

    let mut oracles = vec![
        Oracle::new(
            "fig1_scaling",
            "ABtree+debra flattens while OCCtree keeps scaling; leaking closes the gap but \
             explodes ABtree memory",
        )
        .check(at_least(
            "full 4-config sweep grid",
            "rows/fig1_scaling",
            4.0 * sweep,
        ))
        .check(
            ordering(
                "leaking explodes ABtree memory",
                "peak_mib/abtree/none/max_t",
                "peak_mib/abtree/debra/max_t",
            )
            .tol(0.10),
        )
        .check(
            ordering(
                "OCCtree outscales ABtree under debra at max threads",
                "mops/occtree/debra/max_t",
                "mops/abtree/debra/max_t",
            )
            .advisory(),
        ),
        Oracle::new(
            "table1_je_overhead",
            "%free/%flush/%lock rise steeply with threads while epoch count collapses",
        )
        .check(at_least(
            "all thread points measured",
            "rows/table1_je_overhead",
            t1_rows,
        ))
        .check(
            ordering(
                "%free rises with threads",
                "pct_free/max_t",
                "pct_free/min_t",
            )
            .advisory()
            .tol(0.10),
        )
        .check(monotone_rising("%lock rises with threads", "pct_lock_by_threads").advisory())
        .check(
            ordering("epoch count collapses", "epochs/min_t", "epochs/max_t")
                .advisory()
                .tol(0.25),
        ),
        Oracle::new(
            "fig2_timeline_batch",
            "reclamation events are disproportionately longer at the higher thread count",
        )
        .check(at_least(
            "batch frees recorded at max threads",
            "timeline/max/batchfree_count",
            1.0,
        ))
        .check(
            ordering(
                "longer batch frees at higher thread count",
                "timeline/max/batchfree_mean_ns",
                "timeline/mid/batchfree_mean_ns",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "fig3_timeline_af",
            "batch free shows many more high-latency free calls than amortized free",
        )
        .check(at_least(
            "batch free-call latencies recorded",
            "free_max_ns/batch",
            1.0,
        ))
        .check(
            ordering(
                "more visible (≥0.1ms) free calls under batch",
                "visible/batch",
                "visible/amortized",
            )
            .advisory(),
        )
        .check(
            ordering(
                "longer worst-case free call under batch",
                "free_max_ns/batch",
                "free_max_ns/amortized",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "table2_af_counters",
            "amortized frees MORE objects in LESS time; lock time collapses",
        )
        .check(at_least(
            "both approaches measured",
            "rows/table2_af_counters",
            2.0,
        ))
        .check(demote_at_millis(
            ratio_at_least(
                "AF at least matches batch throughput",
                "mops/af",
                "mops/batch",
                1.0,
            )
            .tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(
            // "Frees MORE objects": in short trials the snapshot freed
            // count depends on where the alloc-coupled drain happens to
            // sit vs the last batch spike — paper-scale claim, advisory.
            ordering(
                "AF frees at least as many objects",
                "freed/af",
                "freed/batch",
            )
            .advisory()
            .tol(0.15),
        )
        .check(
            ratio_at_least("AF ≥ 2x batch (paper: 2.6x)", "mops/af", "mops/batch", 2.0).advisory(),
        )
        .check(
            ordering("%lock collapses under AF", "pct_lock/batch", "pct_lock/af")
                .advisory()
                .tol(0.25),
        ),
        Oracle::new(
            "fig4_garbage",
            "amortized freeing has far fewer peaks with only slightly higher mean garbage",
        )
        .check(at_least(
            "batch garbage series sampled",
            "garbage/batch/epochs",
            1.0,
        ))
        .check(at_least(
            "amortized garbage series sampled",
            "garbage/amortized/epochs",
            1.0,
        ))
        .check(
            ordering(
                "fewer garbage peaks under AF",
                "garbage/batch/peaks",
                "garbage/amortized/peaks",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "table3_allocators",
            "AF speeds up JE (2.6x) and TC (3.25x) but NOT MI — per-page free lists sidestep \
             the RBF problem",
        )
        .check(at_least(
            "3 allocators x 2 modes",
            "rows/table3_allocators",
            6.0,
        ))
        .check(demote_at_millis(
            at_least("AF does not hurt JE", "af_ratio/je", 1.0).tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(demote_at_millis(
            at_least("AF does not hurt TC", "af_ratio/tc", 1.0).tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(at_least("AF speeds up JE ≥ 2x (paper: 2.6x)", "af_ratio/je", 2.0).advisory())
        .check(at_least("AF speeds up TC ≥ 2x (paper: 3.25x)", "af_ratio/tc", 2.0).advisory())
        .check(demote_at_millis(
            at_most("MI does not improve", "af_ratio/mi", 1.10).tol(0.10),
            SMOKE_MILLIS,
            millis,
        )),
        Oracle::new(
            "fig5_6_naive_token",
            "high apparent throughput but terrible reclamation: garbage pile-up, serialized frees",
        )
        .check(at_least(
            "sweep perf table complete",
            "rows/fig5_6_naive_token_perf",
            sweep,
        ))
        .check(at_least("garbage piles past one limbo bag", "peak_garbage", 4096.0).tol(0.25))
        .check(
            ratio_at_least("retires outpace frees (pile-up)", "retired", "freed", 1.2).advisory(),
        ),
        Oracle::new(
            "fig7_passfirst",
            "concurrent freeing now, but batch lengths still grow over time",
        )
        .check(at_least("frees actually happen", "freed", 1.0))
        .check(at_least(
            "garbage series sampled",
            "garbage/series/epochs",
            1.0,
        ))
        .check(trend_rising("batch lengths grow over the run", "garbage/series").advisory()),
        Oracle::new(
            "fig8_periodic",
            "lower peak memory than pass-first, but long free calls still stall the token",
        )
        .check(at_least("token circulates", "epochs", 1.0))
        .check(at_least("frees actually happen", "freed", 1.0))
        .check(
            at_least(
                "long frees visible in the timeline",
                "timeline/timeline/batchfree_max_ns",
                1.0,
            )
            .advisory(),
        ),
        Oracle::new(
            "fig9_10_token_af",
            "garbage pile-up gone, epoch count way up, best perf + memory of the variants",
        )
        .check(at_least(
            "sweep perf table complete",
            "rows/fig9_10_token_af_perf",
            sweep,
        ))
        .check(at_least("token circulates", "epochs", 1.0))
        .check(
            ratio_at_least("reclamation keeps up (no pile-up)", "freed", "retired", 0.5).advisory(),
        ),
        Oracle::new(
            "table4_token_variants",
            "Naive frees almost nothing; Pass-first/Periodic free lots but slowly; Amortized \
             frees the most AND is fastest",
        )
        .check(at_least(
            "all four variants measured",
            "rows/table4_token_variants",
            4.0,
        ))
        .check(at_least("periodic reclaims", "freed/periodic", 1.0))
        .check(at_least("amortized reclaims", "freed/amortized", 1.0))
        .check(
            // Token-circulation counts are wildly run-dependent in short
            // trials; the paper-scale gap (218 vs 4 epochs) is advisory.
            ordering(
                "amortized circulates the token more than pass-first",
                "epochs/amortized",
                "epochs/passfirst",
            )
            .advisory()
            .tol(0.25),
        )
        .check(
            // Paper scale: naive's serialized freeing falls hopelessly
            // behind. At smoke scale a 30 ms run frees comparably, so the
            // magnitude claim is advisory.
            ordering(
                "amortized out-frees naive",
                "freed/amortized",
                "freed/naive",
            )
            .advisory()
            .tol(0.15),
        )
        .check(
            ordering(
                "amortized faster than periodic",
                "mops/amortized",
                "mops/periodic",
            )
            .advisory()
            .tol(0.10),
        )
        .check(
            ordering("periodic out-frees naive", "freed/periodic", "freed/naive")
                .advisory()
                .tol(0.15),
        ),
        Oracle::new(
            "fig11a_experiment1",
            "token_af on top (~1.7x next best nbr+; 7-9x hp/he) and both AF schemes beat the \
             leaky baseline",
        )
        .check(at_least(
            "13-scheme sweep grid",
            "rows/fig11a_experiment1",
            13.0 * sweep,
        ))
        .check(ordering("token_af beats hp", "mops/token_af/max_t", "mops/hp/max_t").tol(0.15))
        .check(
            ratio_at_least(
                "token_af ≥ 1.3x nbr+ (paper: 1.7x)",
                "mops/token_af/max_t",
                "mops/nbr+/max_t",
                1.3,
            )
            .advisory(),
        )
        .check(
            ratio_at_least(
                "token_af ≥ 3x hp (paper: 7-9x)",
                "mops/token_af/max_t",
                "mops/hp/max_t",
                3.0,
            )
            .advisory(),
        )
        .check(
            ordering(
                "token_af beats the leaky baseline",
                "mops/token_af/max_t",
                "mops/none/max_t",
            )
            .advisory()
            .tol(0.10),
        ),
        Oracle::new(
            "fig11b_experiment2",
            "AF wins for 9/10 schemes (up to 2.3x); he does not improve; hp/wfe only ~1.2x",
        )
        .check(at_least(
            "all ten schemes measured",
            "rows/fig11b_experiment2",
            10.0,
        ))
        .check(demote_at_millis(
            fraction_below("AF wins for ≥ 9/10 schemes", "af_ratio_field", 1.0, 0.101).tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(
            at_most("he does not improve (≤ ~1.15x)", "af_ratio/he", 1.15)
                .advisory()
                .tol(0.10),
        ),
        Oracle::new(
            "fig12_orig_vs_af_sweep",
            "AF stays at or above ORIG across the whole thread sweep (ABtree)",
        )
        .check(at_least(
            "10-scheme sweep grid",
            "rows/fig12_orig_vs_af_sweep",
            10.0 * sweep,
        ))
        .check(
            crossover_absent(
                "debra AF never crosses below ORIG",
                "af_by_threads/debra",
                "orig_by_threads/debra",
            )
            .advisory()
            .tol(0.15),
        ),
        Oracle::new(
            "fig13_dgt_orig_vs_af",
            "the ABtree story replays on the DGT tree (2 frees per delete)",
        )
        .check(at_least(
            "10-scheme sweep grid",
            "rows/fig13_dgt_orig_vs_af",
            10.0 * sweep,
        ))
        .check(
            crossover_absent(
                "debra AF never crosses below ORIG (DGT)",
                "af_by_threads/debra",
                "orig_by_threads/debra",
            )
            .advisory()
            .tol(0.15),
        ),
        Oracle::new(
            "fig14_dgt_experiment1",
            "token_af tops the field on the DGT tree too",
        )
        .check(at_least(
            "13-scheme sweep grid",
            "rows/fig14_dgt_experiment1",
            13.0 * sweep,
        ))
        .check(
            ratio_at_least(
                "token_af at least matches nbr+ (DGT)",
                "mops/token_af/max_t",
                "mops/nbr+/max_t",
                1.0,
            )
            .advisory(),
        ),
        Oracle::new(
            "fig15_16_machine_presets",
            "the AF ranking is machine-independent; only magnitudes shift",
        )
        .check(at_least(
            "3 presets x 4 configs",
            "rows/fig15_16_machine_presets",
            12.0,
        ))
        .check(
            ordering(
                "token_af tops debra batch on intel-4s-192t",
                "mops/intel-4s-192t/token_af",
                "mops/intel-4s-192t/debra",
            )
            .advisory()
            .tol(0.10),
        )
        .check(
            ordering(
                "token_af tops debra batch on amd-2s-256t",
                "mops/amd-2s-256t/token_af",
                "mops/amd-2s-256t/debra",
            )
            .advisory()
            .tol(0.10),
        ),
        Oracle::new(
            "fig17_visible_frees",
            "only a tiny fraction of free calls are visible (≥ 0.1 ms), and far fewer under AF",
        )
        .check(at_most(
            "visible calls a tiny fraction (batch)",
            "visible_frac/batch",
            0.05,
        ))
        .check(
            ordering(
                "fewer visible calls under AF",
                "visible/batch",
                "visible/amortized",
            )
            .advisory(),
        ),
        Oracle::new(
            "fig18_29_allocator_timelines",
            "je/tc timelines fill with long batch frees as threads grow; mi stays clean",
        )
        .check(at_least(
            "all thread points visited",
            "thread_points",
            g_points.len() as f64,
        ))
        .check(at_least("je sweep captured", "batchfree_ns/je/max_t", 0.0))
        .check(at_least("tc sweep captured", "batchfree_ns/tc/max_t", 0.0))
        .check(at_least("mi sweep captured", "batchfree_ns/mi/max_t", 0.0))
        .check(
            ordering(
                "je batch-free time grows with threads",
                "batchfree_ns/je/max_t",
                "batchfree_ns/je/min_t",
            )
            .advisory(),
        )
        .check(
            ordering(
                "mi timeline cleaner than je at max threads",
                "batchfree_ns/je/max_t",
                "batchfree_ns/mi/max_t",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "ablation_af_drain_rate",
            "k=1 lets DGT garbage grow (2 frees/delete needed); k≥2 bounds it",
        )
        .check(at_least(
            "all four k values measured",
            "rows/ablation_af_drain_rate",
            4.0,
        ))
        .check(
            ordering(
                "k=1 leaves more garbage than k=2",
                "final_garbage/k1",
                "final_garbage/k2",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "ablation_tcache_cap",
            "bigger caches absorb more of each batch -> fewer flushes",
        )
        .check(at_least(
            "all cap points measured",
            "rows/ablation_tcache_cap",
            3.0,
        ))
        .check(monotone_falling("flushes fall as cap grows", "flushes_by_cap").tol(0.15))
        .check(
            ordering("small cap flushes most", "flushes/cap50", "flushes/cap800")
                .advisory()
                .tol(0.10),
        ),
        Oracle::new(
            "ablation_arena_count",
            "fewer arenas -> more flush collisions -> more lock waiting",
        )
        .check(at_least(
            "all arena points measured",
            "rows/ablation_arena_count",
            3.0,
        ))
        .check(
            monotone_falling("%lock falls as arenas multiply", "pct_lock_by_arenas")
                .advisory()
                .tol(0.25),
        ),
        Oracle::new(
            "ablation_token_check_period",
            "smaller check intervals keep the token moving through long frees",
        )
        .check(at_least(
            "all interval points measured",
            "rows/ablation_token_check_period",
            3.0,
        ))
        .check(
            monotone_falling(
                "epoch count falls as the interval grows",
                "epochs_by_period",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "ablation_bag_cap",
            "bigger batches hurt ORIG more, widening the AF advantage",
        )
        .check(at_least(
            "all bag caps measured",
            "rows/ablation_bag_cap",
            4.0,
        ))
        .check(
            ordering(
                "AF advantage wider at 32K bags than 512",
                "af_ratio/cap32768",
                "af_ratio/cap512",
            )
            .advisory()
            .tol(0.15),
        ),
        Oracle::new(
            "ablation_background_free",
            "a background reclaimer still batch-frees (flushes/remote frees stay high); AF \
             removes them",
        )
        .check(at_least(
            "all three modes measured",
            "rows/ablation_background_free",
            3.0,
        ))
        .check(
            ordering(
                "background keeps flushing, AF does not",
                "flushes/background",
                "flushes/af",
            )
            .tol(0.25),
        )
        .check(
            ordering(
                "remote frees stay high under background",
                "remote/background",
                "remote/af",
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "ablation_stalled_thread",
            "epoch/token schemes' garbage balloons while a stalled thread holds its announcement",
        )
        .check(at_least(
            "all six schemes measured",
            "rows/ablation_stalled_thread",
            6.0,
        ))
        .check(
            ratio_at_least(
                "debra garbage balloons under the stall",
                "stalled_peak_garbage/debra",
                "clean_peak_garbage/debra",
                1.0,
            )
            .advisory()
            .tol(0.25),
        ),
        Oracle::new(
            "ablation_update_ratio",
            "the AF advantage shrinks as updates (and hence garbage) thin out",
        )
        .check(at_least(
            "all update ratios measured",
            "rows/ablation_update_ratio",
            3.0,
        ))
        .check(demote_at_millis(
            monotone_falling(
                "%free falls as updates thin out",
                "orig_pct_free_by_updates",
            )
            .tol(0.25),
            SMOKE_MILLIS,
            millis,
        ))
        .check(
            monotone_falling("AF advantage shrinks with updates", "af_ratio_by_updates")
                .advisory()
                .tol(0.15),
        ),
        Oracle::new(
            "ablation_pooled",
            "pooling sidesteps the allocator almost entirely; AF stays comparable while keeping \
             the allocator in the loop",
        )
        .check(at_least(
            "all three modes measured",
            "rows/ablation_pooled",
            3.0,
        ))
        .check(at_least(
            "pooling actually recycles",
            "pool_hits/pooled",
            1.0,
        ))
        .check(demote_at_millis(
            ordering(
                "pooling slashes allocator traffic",
                "allocs/batch",
                "allocs/pooled",
            )
            .tol(0.25),
            SMOKE_MILLIS,
            millis,
        ))
        .check(
            ratio_at_least(
                "AF within 2x of pooled throughput",
                "mops/af",
                "mops/pooled",
                0.5,
            )
            .advisory(),
        ),
        Oracle::new(
            "ablation_allocator_fix",
            "je_incr's tiny flush quanta shrink lock holds, recovering much of AF's benefit at \
             the allocator layer",
        )
        .check(at_least(
            "all three configs measured",
            "rows/ablation_allocator_fix",
            3.0,
        ))
        .check(
            ordering(
                "incremental flush shrinks the flush quantum",
                "objs_per_flush/je_batch",
                "objs_per_flush/je_incr_batch",
            )
            .tol(0.15),
        )
        .check(
            ratio_at_least(
                "je_incr recovers batch throughput",
                "mops/je_incr_batch",
                "mops/je_batch",
                1.0,
            )
            .advisory(),
        ),
        Oracle::new(
            "ablation_ds_generality",
            "AF's advantage tracks garbage volume: biggest for the ABtree, smallest for the list",
        )
        .check(at_least(
            "all four structures measured",
            "rows/ablation_ds_generality",
            4.0,
        ))
        .check(
            ordering(
                "ABtree gains at least the list's",
                "af_ratio/abtree",
                "af_ratio/hmlist",
            )
            .advisory()
            .tol(0.15),
        ),
        Oracle::new(
            "adaptive_tracking",
            "the _adapt controller tracks the best static configuration on the fig12 sweep \
             and the bag-cap grid without hand-tuning",
        )
        .check(at_least(
            "both grids measured (sweep x 2 schemes + cap grid)",
            "rows/adaptive_tracking",
            2.0 * sweep + 4.0,
        ))
        .check(at_most(
            "adaptive retire path stays allocation-free (scratch first-borrows only)",
            "adapt_retire_path_allocs",
            scale.max_threads as f64 * 8.0,
        ))
        .check(demote_at_millis(
            ratio_at_least(
                "token_adapt within tolerance of best static",
                "adapt_mops/token",
                "best_static_mops/token",
                1.0,
            )
            .advisory()
            .tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(demote_at_millis(
            ratio_at_least(
                "nbr+_adapt within tolerance of best static",
                "adapt_mops/nbr+",
                "best_static_mops/nbr+",
                1.0,
            )
            .advisory()
            .tol(0.15),
            SMOKE_MILLIS,
            millis,
        ))
        .check(demote_at_millis(
            ratio_at_least(
                "adaptive beats the worst static cap on the ablation grid",
                "adapt_grid_mops",
                "worst_static_mops",
                1.0,
            )
            .advisory()
            .tol(0.1),
            SMOKE_MILLIS,
            millis,
        ))
        .check(
            // The controller's signals see allocator pressure, not cache
            // locality; on hosts where the winning static cap wins purely
            // through locality it holds the configured operating point, so
            // the best-cap bound is deliberately looser than the fig12 one
            // (DESIGN.md §10 discusses the limits).
            at_least(
                "adaptive stays near the best bag cap on the ablation grid",
                "adapt_vs_best_cap_ratio",
                0.65,
            )
            .advisory()
            .tol(0.15),
        ),
    ];
    oracles.extend(crate::scenario::generated_oracles());
    oracles
}

/// The oracle for one experiment id.
pub fn oracle_for(id: &str) -> Option<Oracle> {
    all_oracles().into_iter().find(|o| o.experiment == id)
}

/// Renders the verdict table `epic-run check` prints.
pub fn render_verdict_table(reports: &[OracleReport]) -> String {
    let mut t = Table::new(
        "check_verdicts",
        "paper-shape oracle verdicts",
        &[
            "experiment",
            "verdict",
            "strict",
            "advisory",
            "first failure",
        ],
    );
    for r in reports {
        let strict_total = r.outcomes.iter().filter(|o| o.tier == Tier::Strict).count();
        let adv_total = r
            .outcomes
            .iter()
            .filter(|o| o.tier == Tier::Advisory)
            .count();
        let first_fail = r
            .outcomes
            .iter()
            .find(|o| !o.passed)
            .map(|o| o.label.clone())
            .unwrap_or_default();
        t.row(vec![
            r.experiment.clone(),
            r.verdict().to_string(),
            format!("{}/{}", strict_total - r.strict_failures(), strict_total),
            format!("{}/{}", adv_total - r.advisory_failures(), adv_total),
            first_fail,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(metrics: &[(&str, f64)], series: &[(&str, &[f64])]) -> ExperimentResult {
        let mut r = ExperimentResult::new("test");
        for (k, v) in metrics {
            r.metric(*k, *v);
        }
        for (k, vs) in series {
            r.set_series(*k, vs.to_vec());
        }
        r
    }

    fn eval_one(a: Assertion, r: &ExperimentResult) -> AssertionOutcome {
        let oracle = Oracle {
            experiment: "test".into(),
            claim: "".into(),
            assertions: vec![a],
        };
        evaluate(&oracle, r).outcomes.into_iter().next().unwrap()
    }

    #[test]
    fn demote_at_millis_is_scale_aware() {
        // Smoke scale: strict becomes advisory.
        let a = demote_at_millis(at_least("x", "m", 1.0), SMOKE_MILLIS, SMOKE_MILLIS);
        assert_eq!(a.tier, Tier::Advisory);
        let a = demote_at_millis(at_least("x", "m", 1.0), SMOKE_MILLIS, 1);
        assert_eq!(a.tier, Tier::Advisory);
        // Paper scale: stays strict.
        let a = demote_at_millis(at_least("x", "m", 1.0), SMOKE_MILLIS, SMOKE_MILLIS + 1);
        assert_eq!(a.tier, Tier::Strict);
        let a = demote_at_millis(at_least("x", "m", 1.0), SMOKE_MILLIS, 200);
        assert_eq!(a.tier, Tier::Strict);
        // Already-advisory assertions are unaffected either way.
        let a = demote_at_millis(at_least("x", "m", 1.0).advisory(), SMOKE_MILLIS, 200);
        assert_eq!(a.tier, Tier::Advisory);
    }

    #[test]
    fn ratio_and_ordering_respect_tolerance() {
        let r = result_with(&[("a", 95.0), ("b", 100.0)], &[]);
        // a/b = 0.95 ≥ 1.0*(1-0.10).
        assert!(eval_one(ratio_at_least("x", "a", "b", 1.0).tol(0.10), &r).passed);
        assert!(!eval_one(ratio_at_least("x", "a", "b", 1.0).tol(0.01), &r).passed);
        assert!(eval_one(ordering("x", "a", "b").tol(0.10), &r).passed);
        assert!(!eval_one(ordering("x", "a", "b").tol(0.01), &r).passed);
    }

    #[test]
    fn missing_metric_fails_with_detail() {
        let r = result_with(&[("a", 1.0)], &[]);
        let o = eval_one(ordering("x", "a", "nope"), &r);
        assert!(!o.passed);
        assert!(o.detail.contains("nope"), "detail: {}", o.detail);
        let o = eval_one(monotone_rising("x", "no_series"), &r);
        assert!(!o.passed);
        assert!(o.detail.contains("no_series"));
    }

    #[test]
    fn at_least_zero_is_existence() {
        let r = result_with(&[("present", 0.0)], &[]);
        assert!(eval_one(at_least("x", "present", 0.0), &r).passed);
        assert!(!eval_one(at_least("x", "absent", 0.0), &r).passed);
    }

    #[test]
    fn at_most_respects_tolerance() {
        let r = result_with(&[("m", 1.14)], &[]);
        assert!(eval_one(at_most("x", "m", 1.10).tol(0.05), &r).passed);
        assert!(!eval_one(at_most("x", "m", 1.10).tol(0.01), &r).passed);
    }

    #[test]
    fn monotone_directions() {
        let r = result_with(
            &[],
            &[
                ("up", &[1.0, 2.0, 3.0][..]),
                ("down", &[3.0, 2.0, 1.0][..]),
                ("bumpy_up", &[1.0, 2.0, 1.95, 3.0][..]),
            ],
        );
        assert!(eval_one(monotone_rising("x", "up"), &r).passed);
        assert!(!eval_one(monotone_rising("x", "down"), &r).passed);
        assert!(eval_one(monotone_falling("x", "down"), &r).passed);
        assert!(!eval_one(monotone_falling("x", "up"), &r).passed);
        // 2.0 -> 1.95 is a 2.5% dip, inside the 5% default tolerance.
        assert!(eval_one(monotone_rising("x", "bumpy_up"), &r).passed);
    }

    #[test]
    fn trend_compares_halves() {
        let r = result_with(&[], &[("grows", &[1.0, 1.0, 5.0, 5.0][..])]);
        assert!(eval_one(trend_rising("x", "grows"), &r).passed);
        let r = result_with(&[], &[("shrinks", &[5.0, 5.0, 1.0, 1.0][..])]);
        assert!(!eval_one(trend_rising("x", "shrinks"), &r).passed);
    }

    #[test]
    fn crossover_absent_checks_pointwise() {
        let r = result_with(
            &[],
            &[
                ("hi", &[2.0, 3.0, 4.0][..]),
                ("lo", &[1.0, 2.0, 3.0][..]),
                ("crossing", &[1.0, 5.0, 1.0][..]),
                ("short", &[1.0][..]),
            ],
        );
        assert!(eval_one(crossover_absent("x", "hi", "lo"), &r).passed);
        assert!(!eval_one(crossover_absent("x", "crossing", "hi"), &r).passed);
        let o = eval_one(crossover_absent("x", "hi", "short"), &r);
        assert!(!o.passed);
        assert!(o.detail.contains("length mismatch"));
    }

    #[test]
    fn fraction_below_counts() {
        let nine_wins = [1.5, 1.2, 1.3, 1.1, 2.0, 1.4, 1.6, 1.2, 1.05, 0.4];
        let r = result_with(&[], &[("ratios", &nine_wins[..])]);
        // One of ten below 1.0 → frac 0.1 ≤ 0.101.
        assert!(eval_one(fraction_below("x", "ratios", 1.0, 0.101).tol(0.0), &r).passed);
        // Zero tolerance for losses.
        assert!(!eval_one(fraction_below("x", "ratios", 1.0, 0.0).tol(0.0), &r).passed);
    }

    #[test]
    fn noise_widening_expands_tolerance() {
        // a/b = 0.85 fails at tol 0.05, but a 15% measured CI widens it.
        let mut r = result_with(&[("a", 85.0), ("b", 100.0)], &[]);
        assert!(!eval_one(ordering("x", "a", "b").tol(0.05), &r).passed);
        r.metric("rel_ci95/whatever", 0.15);
        assert!(eval_one(ordering("x", "a", "b").tol(0.05), &r).passed);
    }

    #[test]
    fn verdict_tiers() {
        let r = result_with(&[("a", 1.0), ("b", 2.0)], &[]);
        // Strict pass + advisory fail → ADVISORY.
        let oracle = Oracle {
            experiment: "test".into(),
            claim: "".into(),
            assertions: vec![
                ordering("strict ok", "b", "a"),
                ordering("advisory bad", "a", "b").advisory(),
            ],
        };
        let report = evaluate(&oracle, &r);
        assert_eq!(report.verdict(), "ADVISORY");
        assert_eq!(report.strict_failures(), 0);
        assert_eq!(report.advisory_failures(), 1);
        // Strict fail → FAIL.
        let oracle = Oracle {
            experiment: "test".into(),
            claim: "".into(),
            assertions: vec![ordering("strict bad", "a", "b")],
        };
        assert_eq!(evaluate(&oracle, &r).verdict(), "FAIL");
    }

    #[test]
    fn every_experiment_has_exactly_one_oracle() {
        let oracles = all_oracles();
        let experiments = crate::experiments::all_experiments();
        let experiment_ids: Vec<&str> = experiments.iter().map(|e| e.id.as_str()).collect();
        let oracle_ids: Vec<&str> = oracles.iter().map(|o| o.experiment.as_str()).collect();
        assert_eq!(
            oracle_ids, experiment_ids,
            "oracle registry must match the experiment registry exactly, in order"
        );
        for o in &oracles {
            assert!(
                !o.assertions.is_empty(),
                "{} has no assertions",
                o.experiment
            );
            assert!(
                o.assertions.iter().any(|a| a.tier == Tier::Strict),
                "{} has no strict assertion",
                o.experiment
            );
            assert!(!o.claim.is_empty(), "{} has no claim", o.experiment);
        }
    }
}
