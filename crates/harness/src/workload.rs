//! The trial driver: prefill to steady state, run the 50/50 workload,
//! collect every metric the figures need.

use crate::config::{Arrival, KeyDist, WorkloadCfg};
use epic_alloc::{build_allocator_with, AllocSnapshot};
use epic_ds::{build_tree, ConcurrentMap};
use epic_smr::{build_smr, SmrConfig, SmrSnapshot};
use epic_timeline::{Recorder, Series};
use epic_util::stats::SampleStats;
use epic_util::{Clock, XorShift64, Zipfian};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Everything measured in one trial.
pub struct TrialResult {
    /// Scheme label (e.g. `debra_af`).
    pub scheme: String,
    /// Tree name.
    pub tree: &'static str,
    /// Completed operations (inserts + deletes).
    pub ops: u64,
    /// Measured wall time.
    pub wall_ns: u64,
    /// Operations per second.
    pub throughput: f64,
    /// Scheme counters at end of measurement (before teardown drain).
    pub smr: SmrSnapshot,
    /// Allocator counters.
    pub alloc: AllocSnapshot,
    /// Peak memory in MiB (total chunk bytes).
    pub peak_mib: f64,
    /// Timeline recorder (if enabled).
    pub recorder: Option<Arc<Recorder>>,
    /// Per-epoch garbage series (if enabled).
    pub garbage: Option<Arc<Series>>,
}

impl TrialResult {
    /// `% free` over total thread-time (Tables 1, 2, 4).
    pub fn pct_free(&self, threads: usize) -> f64 {
        self.smr.pct_free(self.wall_ns, threads)
    }

    /// `% flush` over total thread-time (allocator-side, Table 1/2).
    pub fn pct_flush(&self, threads: usize) -> f64 {
        self.alloc.pct_flush(self.wall_ns, threads)
    }

    /// `% lock` over total thread-time (Table 1/2).
    pub fn pct_lock(&self, threads: usize) -> f64 {
        self.alloc.pct_lock(self.wall_ns, threads)
    }
}

/// Runs one trial of `cfg`. Panics on invariant violations (every trial
/// doubles as a correctness check).
pub fn run_trial(cfg: &WorkloadCfg) -> TrialResult {
    let n = cfg.threads;
    // Background freeing runs a dedicated reclaimer on tid == n.
    let alloc_tids = n + usize::from(cfg.free_mode == epic_smr::FreeMode::Background);
    let alloc = build_allocator_with(cfg.alloc_kind, alloc_tids, cfg.cost, cfg.tcache_cap);

    let recorder = if cfg.record_timeline {
        Arc::new(Recorder::new(n, 100_000))
    } else {
        Arc::new(Recorder::disabled(n))
    };
    let garbage = cfg
        .garbage_series
        .then(|| Arc::new(Series::new("garbage-per-epoch")));

    let mut smr_cfg = SmrConfig::new(n)
        .with_mode(cfg.free_mode)
        .with_bag_cap(cfg.bag_cap)
        .with_recorder(Arc::clone(&recorder))
        .with_free_call_recording(cfg.free_call_record_ns);
    smr_cfg.epoch_check_every = cfg.epoch_check_every;
    smr_cfg.token_check_every = cfg.token_check_every;
    // Backlog cap (defaults to a few bags' worth, see WorkloadCfg) — loose
    // enough that the relief valve rarely outruns the allocation-coupled
    // drain (which would cause tcache overflow), tight enough to bound
    // garbage (Fig. 4's "slightly larger amount of garbage on average").
    smr_cfg.af_backlog_cap = cfg.af_backlog_cap;
    if let Some(g) = &garbage {
        smr_cfg = smr_cfg.with_garbage_series(Arc::clone(g));
    }

    let smr = build_smr(cfg.smr_kind, Arc::clone(&alloc), smr_cfg);
    let scheme = smr.name().to_string();
    let tree = build_tree(cfg.tree, smr);

    if cfg.prefill {
        prefill(&tree, cfg);
        // Measurement starts from a stable size; prefill noise is dropped.
        tree.smr().reset_stats();
        tree.smr().allocator().reset_stats();
        recorder.clear();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let total_ops = Arc::new(AtomicU64::new(0));
    let clock = Clock::start();
    thread::scope(|scope| {
        for tid in 0..n {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let total_ops = Arc::clone(&total_ops);
            let key_range = cfg.key_range;
            let update_ratio = cfg.update_ratio;
            let stall = cfg.stall;
            let op_budget = cfg.op_budget;
            let seed = cfg.seed;
            let key_dist = cfg.key_dist;
            let arrival = cfg.arrival;
            let churn_every = cfg.churn_every_ops;
            scope.spawn(move || {
                // One registration per worker (re-done under churn): the
                // handle caches the scheme's per-thread hot state.
                let mut handle = tree.smr().register(tid);
                // seed = 0 reproduces the pre-scenario per-thread stream
                // bit for bit (XOR with 0 is the identity).
                let mut rng = XorShift64::new(seed ^ ((tid as u64 + 1) * 0x9E37_79B9 + 12345));
                let zipf = match key_dist {
                    KeyDist::Uniform => None,
                    KeyDist::Zipf { theta } => Some(Zipfian::new(key_range, theta)),
                };
                let mut ops = 0u64;
                let mut ops_since_churn = 0u64;
                let mut ops_in_burst = 0u64;
                let mut next_stall_ns =
                    stall.map(|(every_ms, _)| epic_util::now_ns() + every_ms * 1_000_000);
                while !stop.load(Ordering::Relaxed) {
                    // Fault injection: thread 0 parks *inside* an operation,
                    // holding its epoch announcement — the delayed-thread
                    // scenario that stalls grace periods.
                    if tid == 0 {
                        if let (Some((every_ms, for_ms)), Some(due)) = (stall, next_stall_ns) {
                            if epic_util::now_ns() >= due {
                                let stalled_op = handle.begin_op();
                                std::thread::sleep(Duration::from_millis(for_ms));
                                drop(stalled_op);
                                next_stall_ns = Some(epic_util::now_ns() + every_ms * 1_000_000);
                            }
                        }
                    }
                    // The paper's inner loop: coin flip, uniform key —
                    // or the scenario layer's skewed variant.
                    for _ in 0..64 {
                        let key = match &zipf {
                            None => rng.next_bounded(key_range),
                            Some(z) => z.next_key(&mut rng),
                        };
                        let uniform = (rng.next_u64() >> 11) as f64 / 9_007_199_254_740_992.0;
                        let is_update = update_ratio >= 1.0 || uniform < update_ratio;
                        if !is_update {
                            let _ = tree.get(&handle, key);
                        } else if rng.coin() {
                            tree.insert(&handle, key, key ^ 0xABCD);
                        } else {
                            tree.remove(&handle, key);
                        }
                        ops += 1;
                    }
                    ops_since_churn += 64;
                    ops_in_burst += 64;
                    // Handle churn: leave the workload for good (detach —
                    // permanent quiescence, ring removal) and come back as
                    // a fresh registration of the same tid. All the churn
                    // happens *between* operations; guards never outlive
                    // their handle.
                    if let Some(every) = churn_every {
                        if ops_since_churn >= every {
                            ops_since_churn = 0;
                            handle.detach();
                            handle = tree.smr().register(tid);
                        }
                    }
                    if op_budget.is_some_and(|budget| ops >= budget) {
                        break;
                    }
                    // Bursty arrival: duty-cycle on op counts (not timers)
                    // so budgeted trials stay deterministic — the idle gap
                    // changes wall-clock, never the op/retire stream.
                    if let Arrival::Bursty { on_ops, off_micros } = arrival {
                        if ops_in_burst >= on_ops {
                            ops_in_burst = 0;
                            thread::sleep(Duration::from_micros(off_micros));
                        }
                    }
                }
                handle.detach();
                total_ops.fetch_add(ops, Ordering::Relaxed);
            });
        }
        // Budgeted trials stop themselves; timed trials need the slicer.
        if cfg.op_budget.is_none() {
            thread::sleep(Duration::from_millis(cfg.millis));
            stop.store(true, Ordering::Relaxed);
        }
    });
    let wall_ns = clock.elapsed_ns();

    let ops = total_ops.load(Ordering::Relaxed);
    let smr_snap = tree.smr().stats();
    let alloc_snap = tree.smr().allocator().snapshot();
    let peak_mib = tree.smr().allocator().peak_bytes() as f64 / (1024.0 * 1024.0);

    TrialResult {
        scheme,
        tree: tree.ds_name(),
        ops,
        wall_ns,
        throughput: ops as f64 / (wall_ns as f64 / 1e9),
        smr: smr_snap,
        alloc: alloc_snap,
        peak_mib,
        recorder: cfg.record_timeline.then_some(recorder),
        garbage,
    }
}

/// Parallel prefill to `key_range / 2` keys — "the measured portion begins
/// once the size of the data structure stabilizes".
fn prefill(tree: &Arc<dyn ConcurrentMap>, cfg: &WorkloadCfg) {
    let target = cfg.key_range / 2;
    let inserted = Arc::new(AtomicU64::new(0));
    let n = cfg.threads;
    thread::scope(|scope| {
        for tid in 0..n {
            let tree = Arc::clone(tree);
            let inserted = Arc::clone(&inserted);
            let key_range = cfg.key_range;
            scope.spawn(move || {
                // Transient registration: dropping the handle (no detach)
                // releases the tid for the measured workers.
                let handle = tree.smr().register(tid);
                let mut rng = XorShift64::new((tid as u64 + 7) * 0x2545_F491 + 99);
                while inserted.load(Ordering::Relaxed) < target {
                    let key = rng.next_bounded(key_range);
                    if tree.insert(&handle, key, key ^ 0xABCD) {
                        inserted.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
}

/// Aggregated results over several trials of the same configuration
/// (mean / min / max, as the paper's error bars).
pub struct TrialSummary {
    /// Scheme label.
    pub scheme: String,
    /// Thread count.
    pub threads: usize,
    /// Throughput statistics across trials (ops/s): mean/min/max plus
    /// percentiles and a 95% CI half-width for noise-aware oracles.
    pub throughput: SampleStats,
    /// Peak memory statistics (MiB).
    pub peak_mib: SampleStats,
    /// The last trial's full result (for counter-style columns).
    pub last: TrialResult,
}

impl TrialSummary {
    /// Relative run-to-run noise on throughput (`ci95_halfwidth / mean`,
    /// 0 for single-trial runs). Oracles widen tolerances by this.
    pub fn throughput_rel_ci95(&self) -> f64 {
        self.throughput.rel_ci95()
    }
}

/// Runs `trials` trials of `cfg` and aggregates.
pub fn run_trials(cfg: &WorkloadCfg, trials: usize) -> TrialSummary {
    assert!(trials >= 1);
    let mut throughput = SampleStats::new();
    let mut peak = SampleStats::new();
    let mut last = None;
    for _ in 0..trials {
        let r = run_trial(cfg);
        throughput.push(r.throughput);
        peak.push(r.peak_mib);
        last = Some(r);
    }
    let last = last.expect("trials >= 1");
    TrialSummary {
        scheme: last.scheme.clone(),
        threads: cfg.threads,
        throughput,
        peak_mib: peak,
        last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_ds::TreeKind;
    use epic_smr::SmrKind;

    fn quick(tree: TreeKind, smr: SmrKind) -> WorkloadCfg {
        let mut cfg = WorkloadCfg::new(tree, smr, 2);
        cfg.millis = 30;
        cfg.key_range = 512;
        cfg.bag_cap = 64;
        cfg
    }

    #[test]
    fn trial_produces_consistent_numbers() {
        let r = run_trial(&quick(TreeKind::Ab, SmrKind::Debra));
        assert!(r.ops > 0, "no ops completed");
        assert!(r.throughput > 0.0);
        assert!(r.wall_ns >= 25_000_000, "trial ended early: {}", r.wall_ns);
        assert!(r.smr.retired > 0, "50/50 churn must retire nodes");
        assert!(r.peak_mib > 0.0);
        assert_eq!(r.tree, "abtree");
        assert_eq!(r.scheme, "debra");
    }

    #[test]
    fn af_label_and_freeing() {
        let r = run_trial(&quick(TreeKind::Ab, SmrKind::TokenPeriodic).amortized());
        assert_eq!(r.scheme, "token_af");
        assert!(r.smr.freed > 0, "AF must actually free: {:?}", r.smr);
    }

    #[test]
    fn timeline_and_garbage_capture() {
        let cfg = quick(TreeKind::Ab, SmrKind::Debra)
            .with_timeline()
            .with_garbage_series();
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().expect("recorder requested");
        let events = rec.all_events();
        assert!(
            !events.is_empty(),
            "timeline should capture batch frees / epochs"
        );
        let g = r.garbage.as_ref().expect("series requested");
        assert!(!g.is_empty(), "garbage series should have epoch samples");
    }

    #[test]
    fn summary_aggregates_trials() {
        let s = run_trials(&quick(TreeKind::Dgt, SmrKind::Rcu), 2);
        assert_eq!(s.throughput.count(), 2);
        assert!(s.throughput.mean() > 0.0);
        assert!(s.peak_mib.mean() > 0.0);
        assert_eq!(s.threads, 2);
    }

    #[test]
    fn summary_exposes_noise_stats() {
        let s = run_trials(&quick(TreeKind::Ab, SmrKind::Debra), 2);
        assert_eq!(s.throughput.samples().len(), 2);
        // Two trials => a CI half-width exists (possibly 0 if identical).
        assert!(s.throughput.ci95_halfwidth() >= 0.0);
        assert!(s.throughput_rel_ci95() >= 0.0);
        assert!(s.throughput.median() > 0.0);
    }

    #[test]
    fn op_budget_stops_at_budget() {
        let cfg = quick(TreeKind::Ab, SmrKind::Debra).with_op_budget(1024);
        let r = run_trial(&cfg);
        // Budget is enforced at 64-op granularity per thread.
        assert_eq!(r.ops, 1024 * cfg.threads as u64);
    }

    /// Two budgeted single-threaded trials with the same seed must agree
    /// counter-for-counter, so oracle CI verdicts are reproducible rather
    /// than time-sliced flaky.
    #[test]
    fn budgeted_single_thread_trial_is_deterministic() {
        let mk = || {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, 1).with_op_budget(4096);
            cfg.key_range = 512;
            cfg.bag_cap = 64;
            cfg
        };
        let a = run_trial(&mk());
        let b = run_trial(&mk());
        assert_eq!(a.ops, b.ops, "op counts diverged");
        assert_eq!(a.smr.retired, b.smr.retired, "retire counters diverged");
        assert_eq!(a.smr.freed, b.smr.freed, "free counters diverged");
        assert_eq!(a.smr.batches, b.smr.batches, "batch counts diverged");
        assert_eq!(a.smr.epochs, b.smr.epochs, "epoch counts diverged");
        assert_eq!(a.smr.garbage, b.smr.garbage, "garbage gauges diverged");
        assert_eq!(
            a.alloc.totals.allocs, b.alloc.totals.allocs,
            "allocator alloc counters diverged"
        );
        assert_eq!(
            a.alloc.totals.deallocs, b.alloc.totals.deallocs,
            "allocator dealloc counters diverged"
        );
    }

    #[test]
    fn zipf_trial_completes_and_retires() {
        let mut cfg = quick(TreeKind::Ab, SmrKind::Debra);
        cfg = cfg.with_key_dist(KeyDist::Zipf { theta: 0.9 });
        let r = run_trial(&cfg);
        assert!(r.ops > 0, "skewed trial must make progress");
        assert!(r.smr.retired > 0, "hot keys still churn nodes");
    }

    #[test]
    fn bursty_arrival_still_completes_budget() {
        let cfg = quick(TreeKind::Ab, SmrKind::Debra)
            .with_op_budget(1024)
            .with_arrival(Arrival::Bursty {
                on_ops: 256,
                off_micros: 50,
            });
        let r = run_trial(&cfg);
        // The duty cycle stretches wall-clock but never eats ops.
        assert_eq!(r.ops, 1024 * cfg.threads as u64);
    }

    #[test]
    fn churn_trial_detaches_and_reattaches() {
        let cfg = quick(TreeKind::Ab, SmrKind::Debra)
            .with_op_budget(2048)
            .with_churn(512);
        let r = run_trial(&cfg);
        // 4 detach/re-register cycles per thread, all mid-run, and the
        // budget still lands exactly.
        assert_eq!(r.ops, 2048 * cfg.threads as u64);
        assert!(r.smr.retired > 0);
    }

    /// The determinism contract that replay-from-provenance relies on
    /// must survive every scenario knob at once: skewed keys, churn and
    /// an explicit seed.
    #[test]
    fn budgeted_determinism_holds_under_scenario_knobs() {
        let mk = || {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, 1)
                .with_op_budget(4096)
                .with_seed(0xBADC_0FFE)
                .with_key_dist(KeyDist::Zipf { theta: 0.75 })
                .with_churn(1024);
            cfg.key_range = 512;
            cfg.bag_cap = 64;
            cfg
        };
        let a = run_trial(&mk());
        let b = run_trial(&mk());
        assert_eq!(a.ops, b.ops, "op counts diverged");
        assert_eq!(a.smr.retired, b.smr.retired, "retire counters diverged");
        assert_eq!(a.smr.freed, b.smr.freed, "free counters diverged");
        assert_eq!(
            a.alloc.totals.allocs, b.alloc.totals.allocs,
            "allocator alloc counters diverged"
        );
        assert_eq!(
            a.alloc.totals.deallocs, b.alloc.totals.deallocs,
            "allocator dealloc counters diverged"
        );
    }

    #[test]
    fn leak_scheme_grows_garbage() {
        let r = run_trial(&quick(TreeKind::Occ, SmrKind::None));
        assert_eq!(r.smr.freed, 0);
        assert!(r.smr.garbage > 0);
    }
}
