//! The `SHAPES.json` document model: schema `epic-shapes-v2`, with a
//! reader that still accepts v1.
//!
//! One document holds the oracle verdicts (and raw structured results)
//! of a set of experiments. Three producers share it:
//!
//! * serial `epic-run check` writes one document for everything it ran;
//! * each child of the process runner ([`crate::runner`]) writes a
//!   single-experiment document via `epic-run --one <id> --result-json`;
//! * `epic-run merge-shapes` (and the parallel runner's fan-in) merges
//!   any number of documents — v1 or v2 — into one.
//!
//! v2 extends v1 with per-experiment `duration_ms` and `attempts`, and a
//! top-level `runner: {shard, jobs}` provenance block (see DESIGN.md §8
//! for the field table). The reader defaults the new fields when handed
//! a v1 file, so old artifacts keep merging.

use crate::oracle::{AssertionOutcome, OracleReport, Tier};
use crate::report::{json_num, push_json_str, results_dir, ExperimentResult};
use epic_util::json::Json;

/// The previous schema tag (readable, never written anymore).
pub const SCHEMA_V1: &str = "epic-shapes-v1";
/// The current schema tag.
pub const SCHEMA_V2: &str = "epic-shapes-v2";

/// Where a document came from: which shard selection produced it and how
/// many worker slots ran it. `shard` is a provenance string — `"1/1"`
/// for an unsharded run, `"2/3"` for a shard, `"merge(3 inputs)"` after
/// a merge, `"job"` for a single child process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerMeta {
    /// Shard selector or provenance label.
    pub shard: String,
    /// Worker-slot count (`-j`) of the producing run.
    pub jobs: usize,
}

impl RunnerMeta {
    /// Meta for an in-process serial run over the full selection.
    pub fn serial() -> Self {
        RunnerMeta {
            shard: "1/1".to_string(),
            jobs: 1,
        }
    }
}

/// One experiment's entry in a shapes document.
#[derive(Debug, Clone)]
pub struct ShapeRecord {
    /// The oracle outcomes (id, claim, per-assertion results).
    pub report: OracleReport,
    /// Wall-clock of the experiment run (0 when unknown — v1 inputs).
    pub duration_ms: f64,
    /// Process-runner attempts that produced this record (1 = first try).
    pub attempts: u32,
    /// The raw [`ExperimentResult`] pre-serialized as a JSON value
    /// (`"null"` when the experiment never completed).
    pub result_json: String,
}

impl ShapeRecord {
    /// Builds a record from a live run.
    pub fn from_run(
        report: OracleReport,
        result: &ExperimentResult,
        duration_ms: f64,
        attempts: u32,
    ) -> Self {
        ShapeRecord {
            report,
            duration_ms,
            attempts,
            result_json: result.to_json(),
        }
    }
}

/// A full shapes document: records plus runner provenance.
#[derive(Debug, Clone)]
pub struct ShapesDoc {
    /// Per-experiment records.
    pub records: Vec<ShapeRecord>,
    /// Provenance of the producing run.
    pub runner: RunnerMeta,
}

impl ShapesDoc {
    /// Total failed strict assertions across all records.
    pub fn strict_failures(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.report.strict_failures())
            .sum()
    }

    /// Total failed advisory assertions across all records.
    pub fn advisory_failures(&self) -> usize {
        self.records
            .iter()
            .map(|r| r.report.advisory_failures())
            .sum()
    }

    /// The oracle reports, for verdict-table rendering.
    pub fn reports(&self) -> Vec<OracleReport> {
        self.records.iter().map(|r| r.report.clone()).collect()
    }

    /// Serializes to the v2 schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": ");
        push_json_str(&mut out, SCHEMA_V2);
        out.push_str(",\n  \"runner\": {\"shard\": ");
        push_json_str(&mut out, &self.runner.shard);
        out.push_str(&format!(
            ", \"jobs\": {}}},\n  \"experiments\": [\n",
            self.runner.jobs
        ));
        for (i, rec) in self.records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            let report = &rec.report;
            out.push_str("    {\n      \"id\": ");
            push_json_str(&mut out, &report.experiment);
            out.push_str(",\n      \"claim\": ");
            push_json_str(&mut out, &report.claim);
            out.push_str(",\n      \"verdict\": ");
            push_json_str(&mut out, report.verdict());
            out.push_str(&format!(
                ",\n      \"strict_failures\": {},\n      \"advisory_failures\": {},\n      \
                 \"duration_ms\": {},\n      \"attempts\": {},\n      \"assertions\": [\n",
                report.strict_failures(),
                report.advisory_failures(),
                json_num(rec.duration_ms),
                rec.attempts
            ));
            for (j, o) in report.outcomes.iter().enumerate() {
                if j > 0 {
                    out.push_str(",\n");
                }
                out.push_str("        {\"label\": ");
                push_json_str(&mut out, &o.label);
                out.push_str(", \"tier\": ");
                push_json_str(&mut out, o.tier.name());
                out.push_str(&format!(", \"passed\": {}, \"detail\": ", o.passed));
                push_json_str(&mut out, &o.detail);
                out.push('}');
            }
            out.push_str("\n      ],\n      \"result\": ");
            out.push_str(&rec.result_json);
            out.push_str("\n    }");
        }
        out.push_str(&format!(
            "\n  ],\n  \"total_strict_failures\": {}\n}}\n",
            self.strict_failures()
        ));
        out
    }

    /// Parses a v1 or v2 document. v1 inputs get `duration_ms = 0`,
    /// `attempts = 1`, and serial runner metadata.
    pub fn parse(text: &str) -> Result<ShapesDoc, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("shapes: missing \"schema\" field")?;
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 {
            return Err(format!("shapes: unsupported schema '{schema}'"));
        }
        let runner = match doc.get("runner") {
            Some(r) => RunnerMeta {
                shard: r
                    .get("shard")
                    .and_then(Json::as_str)
                    .unwrap_or("1/1")
                    .to_string(),
                jobs: r.get("jobs").and_then(Json::as_f64).unwrap_or(1.0) as usize,
            },
            None => RunnerMeta::serial(),
        };
        let experiments = doc
            .get("experiments")
            .and_then(Json::as_arr)
            .ok_or("shapes: missing \"experiments\" array")?;
        let mut records = Vec::with_capacity(experiments.len());
        for e in experiments {
            let id = e
                .get("id")
                .and_then(Json::as_str)
                .ok_or("shapes: experiment entry without an \"id\"")?
                .to_string();
            let claim = e
                .get("claim")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let mut outcomes = Vec::new();
            for a in e
                .get("assertions")
                .and_then(Json::as_arr)
                .unwrap_or_default()
            {
                outcomes.push(AssertionOutcome {
                    label: a
                        .get("label")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    tier: match a.get("tier").and_then(Json::as_str) {
                        Some("strict") | None => Tier::Strict,
                        Some("advisory") => Tier::Advisory,
                        Some(other) => {
                            return Err(format!(
                                "shapes: unknown assertion tier '{other}' in '{id}'"
                            ))
                        }
                    },
                    passed: a.get("passed").and_then(Json::as_bool).unwrap_or(false),
                    detail: a
                        .get("detail")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_string(),
                });
            }
            records.push(ShapeRecord {
                report: OracleReport {
                    experiment: id,
                    claim,
                    outcomes,
                },
                duration_ms: e.get("duration_ms").and_then(Json::as_f64).unwrap_or(0.0),
                attempts: e.get("attempts").and_then(Json::as_f64).unwrap_or(1.0) as u32,
                result_json: e.get("result").map_or("null".to_string(), Json::render),
            });
        }
        Ok(ShapesDoc { records, runner })
    }

    /// Merges documents into one. Records are re-ordered to experiment
    /// registry order (unknown ids go last, in encounter order); the same
    /// experiment appearing in two inputs is an error — shards must be
    /// disjoint, and re-merging an already-merged file with one of its
    /// inputs is always a mistake.
    pub fn merge(docs: Vec<ShapesDoc>) -> Result<ShapesDoc, String> {
        let inputs = docs.len();
        let jobs = docs.iter().map(|d| d.runner.jobs).max().unwrap_or(1);
        let mut records: Vec<ShapeRecord> = Vec::new();
        for doc in docs {
            for rec in doc.records {
                if let Some(dup) = records
                    .iter()
                    .find(|r| r.report.experiment == rec.report.experiment)
                {
                    return Err(format!(
                        "merge-shapes: experiment '{}' appears in more than one input",
                        dup.report.experiment
                    ));
                }
                records.push(rec);
            }
        }
        let order: std::collections::HashMap<String, usize> = crate::experiments::all_experiments()
            .into_iter()
            .enumerate()
            .map(|(i, e)| (e.id, i))
            .collect();
        records.sort_by_key(|r| {
            order
                .get(r.report.experiment.as_str())
                .copied()
                .unwrap_or(usize::MAX)
        });
        Ok(ShapesDoc {
            records,
            runner: RunnerMeta {
                shard: format!("merge({inputs} inputs)"),
                jobs,
            },
        })
    }

    /// Writes the document to `<results>/SHAPES.json`; returns the path
    /// (a failed write warns on stderr, matching the artifact writers).
    pub fn write_default(&self) -> std::path::PathBuf {
        let path = results_dir().join("SHAPES.json");
        if let Err(e) = std::fs::write(&path, self.to_json()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{evaluate, ordering, Oracle};

    fn demo_doc(id: &str, strict_pass: bool) -> ShapesDoc {
        let mut result = ExperimentResult::new(id);
        result.metric("a", 1.0);
        result.metric("b", 2.0);
        let (g, l) = if strict_pass { ("b", "a") } else { ("a", "b") };
        let oracle = Oracle {
            experiment: "x".into(),
            claim: "demo claim with \"quotes\"".into(),
            assertions: vec![
                ordering("strict one", g, l),
                ordering("advisory one", "a", "b").advisory(),
            ],
        };
        let mut report = evaluate(&oracle, &result);
        report.experiment = id.to_string();
        ShapesDoc {
            records: vec![ShapeRecord::from_run(report, &result, 123.5, 2)],
            runner: RunnerMeta {
                shard: "2/3".to_string(),
                jobs: 4,
            },
        }
    }

    #[test]
    fn v2_round_trips() {
        let doc = demo_doc("fig4_garbage", true);
        let text = doc.to_json();
        assert!(text.contains("\"schema\": \"epic-shapes-v2\""));
        assert!(text.contains("\"duration_ms\": 123.5"));
        assert!(text.contains("\"attempts\": 2"));
        assert!(text.contains("\"runner\": {\"shard\": \"2/3\", \"jobs\": 4}"));
        let back = ShapesDoc::parse(&text).expect("parse own output");
        assert_eq!(back.runner, doc.runner);
        assert_eq!(back.records.len(), 1);
        let rec = &back.records[0];
        assert_eq!(rec.report.experiment, "fig4_garbage");
        assert_eq!(rec.report.claim, "demo claim with \"quotes\"");
        assert_eq!(rec.duration_ms, 123.5);
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.report.strict_failures(), 0);
        assert_eq!(rec.report.advisory_failures(), 1);
        assert_eq!(rec.report.outcomes[0].tier, Tier::Strict);
        assert_eq!(rec.report.outcomes[1].tier, Tier::Advisory);
        // The raw result survives as JSON.
        assert!(rec.result_json.contains("\"a\""));
    }

    #[test]
    fn reader_accepts_v1() {
        // The exact layout PR 3's writer produced (no duration/attempts,
        // no runner block).
        let v1 = r#"{
  "schema": "epic-shapes-v1",
  "experiments": [
    {
      "id": "fig7_passfirst",
      "claim": "c",
      "verdict": "PASS",
      "strict_failures": 0,
      "advisory_failures": 0,
      "assertions": [
        {"label": "frees actually happen", "tier": "strict", "passed": true, "detail": "ok"}
      ],
      "result": {"id": "fig7_passfirst", "metrics": {"freed": 10.0}, "series": {}}
    }
  ],
  "total_strict_failures": 0
}"#;
        let doc = ShapesDoc::parse(v1).expect("v1 parses");
        assert_eq!(doc.runner, RunnerMeta::serial());
        let rec = &doc.records[0];
        assert_eq!(rec.duration_ms, 0.0);
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.report.verdict(), "PASS");
        assert!(rec.result_json.contains("\"freed\": 10.0"));
    }

    #[test]
    fn reader_rejects_unknown_schema_and_garbage() {
        assert!(ShapesDoc::parse("{}").is_err());
        assert!(
            ShapesDoc::parse("{\"schema\": \"epic-shapes-v99\", \"experiments\": []}").is_err()
        );
        assert!(ShapesDoc::parse("not json").is_err());
    }

    #[test]
    fn merge_combines_v1_and_v2_in_registry_order() {
        let v1 = ShapesDoc::parse(
            r#"{"schema": "epic-shapes-v1", "experiments": [
                {"id": "table4_token_variants", "claim": "", "assertions": [], "result": null}
            ]}"#,
        )
        .unwrap();
        let v2 = demo_doc("fig4_garbage", false);
        // Input order is reversed vs the registry (fig4 < table4).
        let merged = ShapesDoc::merge(vec![v1, v2]).expect("merge");
        let ids: Vec<&str> = merged
            .records
            .iter()
            .map(|r| r.report.experiment.as_str())
            .collect();
        assert_eq!(ids, ["fig4_garbage", "table4_token_variants"]);
        assert_eq!(merged.runner.shard, "merge(2 inputs)");
        assert_eq!(merged.runner.jobs, 4);
        assert_eq!(merged.strict_failures(), 1, "fig4's strict miss survives");
    }

    #[test]
    fn merge_rejects_duplicate_ids() {
        let a = demo_doc("fig4_garbage", true);
        let b = demo_doc("fig4_garbage", true);
        let err = ShapesDoc::merge(vec![a, b]).unwrap_err();
        assert!(err.contains("fig4_garbage"), "error names the dup: {err}");
    }

    #[test]
    fn unknown_ids_merge_after_registry_ids() {
        let known = demo_doc("table4_token_variants", true);
        let unknown = demo_doc("zz_not_in_registry", true);
        let merged = ShapesDoc::merge(vec![unknown, known]).unwrap();
        let ids: Vec<&str> = merged
            .records
            .iter()
            .map(|r| r.report.experiment.as_str())
            .collect();
        assert_eq!(ids, ["table4_token_variants", "zz_not_in_registry"]);
    }

    #[test]
    fn shapes_json_is_written_and_nan_safe() {
        let _guard = crate::report::env_lock();
        let dir = std::env::temp_dir().join("epic_shapes_test");
        std::env::set_var("EPIC_RESULTS", &dir);
        let mut result = ExperimentResult::new("test");
        result.metric("a", f64::NAN);
        result.metric("b", 2.0);
        let oracle = Oracle {
            experiment: "test".into(),
            claim: "quote \" and backslash \\".into(),
            assertions: vec![ordering("b over a", "b", "a")],
        };
        let report = evaluate(&oracle, &result);
        let doc = ShapesDoc {
            records: vec![ShapeRecord::from_run(report, &result, 1.0, 1)],
            runner: RunnerMeta::serial(),
        };
        let path = doc.write_default();
        let text = std::fs::read_to_string(&path).expect("SHAPES.json written");
        std::env::remove_var("EPIC_RESULTS");
        assert!(text.contains("\"schema\": \"epic-shapes-v2\""));
        assert!(text.contains("\"total_strict_failures\": 1"));
        // NaN metric values serialize as null; detail strings may contain
        // the word NaN but no bare token may leak.
        assert!(text.contains("\"a\": null"), "NaN value leaked: {text}");
        assert!(!text.contains(": NaN"), "bare NaN token leaked: {text}");
        assert!(text.contains("\\\""), "quotes must be escaped");
        // And the full file round-trips through the reader.
        ShapesDoc::parse(&text).expect("written file parses");
    }
}
