//! The process-isolated experiment job engine behind
//! `epic-run check -j N [--shard K/N]`.
//!
//! Experiments are embarrassingly parallel **across processes** but must
//! never share one: each assumes exclusive ownership of its worker
//! threads, the counting global allocator, and the `EPIC_*` environment.
//! So the engine schedules registry entries as *child processes* — the
//! binary re-invokes itself as `epic-run --one <id> --result-json <p>` —
//! with:
//!
//! * `jobs` concurrent worker slots, filled longest-processing-time
//!   first using the registry's [`Experiment::cost`] hints, so the
//!   heaviest sweeps start first and wall-clock approaches
//!   `max(shard)` instead of `sum(experiments)`;
//! * a per-job timeout and one retry after a crash (panic, signal,
//!   timeout) — a completed run that merely *fails its oracle* is a
//!   result, not a crash, and is never retried;
//! * live one-line progress, with child stdout/stderr captured to
//!   `<results>/jobs/<id>.log`;
//! * a deterministic merge: per-job documents combine in registry order
//!   no matter the completion order.
//!
//! Sharding ([`partition`]) splits the registry into `N` stable,
//! cost-balanced id sets so `N` CI jobs (or `N` big-box invocations) can
//! each run one shard and `epic-run merge-shapes` fans the results back
//! into one verdict table.

use crate::experiments::{all_experiments, Experiment};
use crate::oracle::{oracle_for, AssertionOutcome, OracleReport, Tier};
use crate::report::results_dir;
use crate::shapes::{RunnerMeta, ShapeRecord, ShapesDoc};
use std::collections::HashSet;
use std::fs::File;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// FNV-1a over the id bytes: the stable hash the shard partitioner
/// orders by. Not a quality hash — a *frozen* one: the shard an id lands
/// in must never depend on compiler, platform, or std internals.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Splits the full registry into `n` disjoint shards, returned in
/// registry order within each shard.
///
/// The assignment is a pure function of the id set and the static cost
/// hints: ids are ordered by (cost desc, FNV-1a hash, id) and dealt
/// serpentine-wise (`1..n`, `n..1`, ...) across the shards, so
///
/// * every id lands in exactly one shard,
/// * shard sizes differ by at most one and heavy experiments spread
///   evenly (the hash only tie-breaks equal costs),
/// * the same binary always produces the same shards — CI matrix jobs
///   and big-box invocations can compute them independently.
pub fn partition(n: usize) -> Vec<Vec<&'static str>> {
    assert!(n >= 1, "shard count must be >= 1");
    let mut entries = all_experiments();
    entries.sort_by(|a, b| {
        b.cost
            .cmp(&a.cost)
            .then(fnv1a(a.id).cmp(&fnv1a(b.id)))
            .then(a.id.cmp(b.id))
    });
    let mut shards = vec![Vec::new(); n];
    for (i, e) in entries.iter().enumerate() {
        let (round, pos) = (i / n, i % n);
        let s = if round % 2 == 0 { pos } else { n - 1 - pos };
        shards[s].push(e.id);
    }
    let order: std::collections::HashMap<&str, usize> = all_experiments()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id, i))
        .collect();
    for shard in &mut shards {
        shard.sort_by_key(|id| order[id]);
    }
    shards
}

/// The id set of shard `k` of `n` (`k` is 1-based, as on the CLI).
pub fn shard_members(k: usize, n: usize) -> HashSet<&'static str> {
    assert!(k >= 1 && k <= n, "shard index {k} out of 1..={n}");
    partition(n).swap_remove(k - 1).into_iter().collect()
}

/// Where per-job artifacts (result JSON + captured log) go.
fn jobs_dir() -> PathBuf {
    let dir = results_dir().join("jobs");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

struct RunningJob {
    entry: Experiment,
    attempt: u32,
    child: Child,
    started: Instant,
    json_path: PathBuf,
    log_path: PathBuf,
}

/// The record the engine synthesizes when an experiment process crashed
/// (or timed out) on both attempts: a single failed strict assertion, so
/// the merged verdict table reports `FAIL` instead of silently dropping
/// the experiment.
fn crash_record(id: &str, attempts: u32, reason: &str, log_path: &std::path::Path) -> ShapeRecord {
    let claim = oracle_for(id)
        .map(|o| o.claim.to_string())
        .unwrap_or_default();
    ShapeRecord {
        report: OracleReport {
            experiment: id.to_string(),
            claim,
            outcomes: vec![AssertionOutcome {
                label: "experiment process completed".to_string(),
                tier: Tier::Strict,
                passed: false,
                detail: format!("{reason} (see {})", log_path.display()),
            }],
        },
        duration_ms: 0.0,
        attempts,
        result_json: "null".to_string(),
    }
}

fn spawn_job(entry: Experiment, attempt: u32) -> std::io::Result<RunningJob> {
    let dir = jobs_dir();
    let json_path = dir.join(format!("{}.json", entry.id));
    let log_path = dir.join(format!("{}.log", entry.id));
    let _ = std::fs::remove_file(&json_path); // stale results must not count
    let log = File::create(&log_path)?;
    let child = Command::new(std::env::current_exe()?)
        .arg("--one")
        .arg(entry.id)
        .arg("--result-json")
        .arg(&json_path)
        .stdin(Stdio::null())
        .stdout(Stdio::from(log.try_clone()?))
        .stderr(Stdio::from(log))
        .spawn()?;
    Ok(RunningJob {
        entry,
        attempt,
        child,
        started: Instant::now(),
        json_path,
        log_path,
    })
}

/// How a finished child is classified.
enum JobOutcome {
    /// The child ran to completion and wrote a parseable result document
    /// (its oracle verdict may still be FAIL — that is a *result*).
    Completed(ShapeRecord),
    /// Panic, signal, unparseable/missing result, or timeout.
    Crashed(String),
}

/// `killed` means the *parent* killed the child at the timeout — a
/// child that beat the deadline on its own is classified purely by its
/// result file, however close to the limit it finished.
fn classify(job: &RunningJob, killed: bool, exit: Option<i32>) -> JobOutcome {
    if killed {
        return JobOutcome::Crashed(format!(
            "timed out after {:.0}s and was killed",
            job.started.elapsed().as_secs_f64()
        ));
    }
    match std::fs::read_to_string(&job.json_path)
        .map_err(|e| e.to_string())
        .and_then(|text| ShapesDoc::parse(&text))
    {
        Ok(doc) if doc.records.len() == 1 => {
            let mut rec = doc.records.into_iter().next().unwrap();
            rec.attempts = job.attempt;
            JobOutcome::Completed(rec)
        }
        Ok(doc) => JobOutcome::Crashed(format!(
            "child wrote {} records instead of 1",
            doc.records.len()
        )),
        Err(e) => match exit {
            Some(code) => JobOutcome::Crashed(format!("exit code {code}, no usable result: {e}")),
            None => JobOutcome::Crashed(format!("killed by signal, no usable result: {e}")),
        },
    }
}

/// Runs `selected` as child processes on `jobs` worker slots and merges
/// the per-job documents into one [`ShapesDoc`] (records in registry
/// order). `shard_label` is recorded as runner provenance. Only spawn
/// infrastructure errors are `Err` — experiment failures and crashes are
/// *records* in the returned document.
pub fn run_parallel(
    selected: &[Experiment],
    jobs: usize,
    timeout: Duration,
    shard_label: &str,
) -> Result<ShapesDoc, String> {
    let jobs = jobs.max(1);
    let total = selected.len();
    // LPT: heaviest first. `pop()` takes from the back, so sort ascending.
    let mut queue: Vec<(Experiment, u32)> = {
        let mut entries = selected.to_vec();
        entries.sort_by(|a, b| a.cost.cmp(&b.cost).then(a.id.cmp(b.id)));
        entries.into_iter().map(|e| (e, 1)).collect()
    };
    let mut running: Vec<RunningJob> = Vec::new();
    let mut records: Vec<ShapeRecord> = Vec::new();
    println!(
        "runner: {total} experiments on {jobs} worker slots (shard {shard_label}, timeout {}s, \
         logs under {})",
        timeout.as_secs(),
        jobs_dir().display()
    );
    while !queue.is_empty() || !running.is_empty() {
        while running.len() < jobs {
            let Some((entry, attempt)) = queue.pop() else {
                break;
            };
            let job = spawn_job(entry, attempt)
                .map_err(|e| format!("runner: could not spawn child for '{}': {e}", entry.id))?;
            println!(
                "[start] {} (cost {}, attempt {attempt})",
                entry.id, entry.cost
            );
            running.push(job);
        }
        let mut i = 0;
        while i < running.len() {
            let timed_out = running[i].started.elapsed() > timeout;
            // (exit, killed-by-us): a child that exited on its own is
            // never treated as timed out, even if observed past the
            // deadline — its result file decides.
            let exited = match running[i].child.try_wait() {
                Ok(Some(status)) => Some((status.code(), false)),
                Ok(None) if timed_out => {
                    let _ = running[i].child.kill();
                    let _ = running[i].child.wait();
                    Some((None, true))
                }
                Ok(None) => None,
                Err(_) => Some((None, false)),
            };
            let Some((exit, killed)) = exited else {
                i += 1;
                continue;
            };
            let job = running.swap_remove(i);
            let secs = job.started.elapsed().as_secs_f64();
            match classify(&job, killed, exit) {
                JobOutcome::Completed(rec) => {
                    println!(
                        "[{:>2}/{total}] {:<32} {:<8} ({secs:.1}s, attempt {})",
                        records.len() + 1,
                        job.entry.id,
                        rec.report.verdict(),
                        job.attempt
                    );
                    records.push(rec);
                }
                JobOutcome::Crashed(reason) if job.attempt == 1 => {
                    println!(
                        "[retry] {}: {reason} — retrying once (log: {})",
                        job.entry.id,
                        job.log_path.display()
                    );
                    queue.push((job.entry, 2));
                }
                JobOutcome::Crashed(reason) => {
                    println!(
                        "[{:>2}/{total}] {:<32} CRASHED  ({secs:.1}s, attempt {}): {reason}",
                        records.len() + 1,
                        job.entry.id,
                        job.attempt
                    );
                    records.push(crash_record(
                        job.entry.id,
                        job.attempt,
                        &reason,
                        &job.log_path,
                    ));
                }
            }
        }
        if !running.is_empty() {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    let order: std::collections::HashMap<&str, usize> = all_experiments()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.id, i))
        .collect();
    records.sort_by_key(|r| {
        order
            .get(r.report.experiment.as_str())
            .copied()
            .unwrap_or(usize::MAX)
    });
    Ok(ShapesDoc {
        records,
        runner: RunnerMeta {
            shard: shard_label.to_string(),
            jobs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_frozen() {
        // Reference values computed from the FNV-1a definition; if these
        // move, every existing shard assignment moves with them.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("fig4_garbage"), fnv1a("fig4_garbage"));
        assert_ne!(fnv1a("fig4_garbage"), fnv1a("fig4_garbagf"));
    }

    #[test]
    fn partition_covers_every_id_exactly_once() {
        let all: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for n in [1, 2, 3, 5, 31, 64] {
            let shards = partition(n);
            assert_eq!(shards.len(), n);
            let mut seen = HashSet::new();
            for shard in &shards {
                for id in shard {
                    assert!(seen.insert(*id), "{id} assigned to two shards (n={n})");
                }
            }
            assert_eq!(seen.len(), all.len(), "n={n} dropped ids");
        }
    }

    #[test]
    fn shard_1_of_1_is_the_full_registry_in_order() {
        let all: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        assert_eq!(partition(1), vec![all]);
    }

    #[test]
    fn shards_are_stable_and_balanced() {
        for n in [2, 3, 4] {
            let a = partition(n);
            let b = partition(n);
            assert_eq!(a, b, "partition must be deterministic (n={n})");
            let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shard sizes {sizes:?} (n={n})");
            // Cost balance: serpentine dealing keeps every shard within
            // ~one heavy experiment of the mean.
            let cost_of = |ids: &Vec<&str>| -> u64 {
                let reg = all_experiments();
                ids.iter()
                    .map(|id| u64::from(reg.iter().find(|e| e.id == *id).unwrap().cost))
                    .sum()
            };
            let costs: Vec<u64> = a.iter().map(cost_of).collect();
            let heaviest = u64::from(all_experiments().iter().map(|e| e.cost).max().unwrap());
            let (cmin, cmax) = (costs.iter().min().unwrap(), costs.iter().max().unwrap());
            assert!(
                cmax - cmin <= heaviest,
                "cost spread {costs:?} exceeds one heavy job (n={n})"
            );
        }
    }

    #[test]
    fn shard_members_matches_partition() {
        let shards = partition(3);
        for (i, shard) in shards.iter().enumerate() {
            let members = shard_members(i + 1, 3);
            assert_eq!(members, shard.iter().copied().collect::<HashSet<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_index_is_one_based() {
        let _ = shard_members(0, 3);
    }

    #[test]
    fn crash_record_fails_strict() {
        let rec = crash_record(
            "fig4_garbage",
            2,
            "boom",
            std::path::Path::new("/tmp/x.log"),
        );
        assert_eq!(rec.report.verdict(), "FAIL");
        assert_eq!(rec.attempts, 2);
        assert!(rec.report.outcomes[0].detail.contains("boom"));
        assert!(
            !rec.report.claim.is_empty(),
            "claim comes from the registered oracle"
        );
    }
}
