//! The process-pool core shared by `epic-run check -j N` and the
//! `epic-serve` daemon: LPT slot assignment from cost hints, per-job
//! timeout, crash classification, bounded retry, and an NDJSON-able
//! event stream.
//!
//! A [`Pool`] owns a pending queue and up to `slots` running child
//! processes. Each child is an `epic-run --one <id> --result-json <p>`
//! invocation of [`PoolCfg::program`] (the CLI passes its own binary,
//! the daemon the `epic-run` it was pointed at), with stdout/stderr
//! captured to `<dir>/<stem>.log`. The pool is deliberately
//! synchronous and non-blocking: callers drive it by calling
//! [`Pool::tick`] in their own loop (the CLI until [`Pool::is_idle`],
//! the daemon forever), collecting finished attempts and the
//! [`PoolEvent`] stream as plain data — the pool never calls back into
//! its owner.

use crate::shapes::ShapesDoc;
use epic_util::json::{push_str_literal, render_num, Json};
use std::fmt::Write as _;
use std::fs::File;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime};

pub use crate::shapes::ShapeRecord;

/// Static pool configuration.
#[derive(Debug, Clone)]
pub struct PoolCfg {
    /// Concurrent worker slots.
    pub slots: usize,
    /// Per-attempt wall-clock timeout; a child past it is killed and
    /// the attempt classified as crashed.
    pub timeout: Duration,
    /// Directory for per-attempt artifacts (`<stem>.json`, `<stem>.log`).
    pub dir: PathBuf,
    /// The `epic-run` binary to invoke as `--one` children.
    pub program: PathBuf,
}

/// One unit of work: run experiment `experiment` as a child process, up
/// to `max_attempts` times on crash.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The registry experiment id.
    pub experiment: String,
    /// LPT cost hint ([`crate::experiments::Experiment::cost`]).
    pub cost: u32,
    /// Artifact file stem (the CLI uses the experiment id; the daemon
    /// prefixes its queue job id so repeated submissions don't collide).
    pub stem: String,
    /// Extra environment for the child (the daemon forwards per-job
    /// `EPIC_*` overrides; children otherwise inherit the parent env).
    pub env: Vec<(String, String)>,
    /// Attempt budget: crashes before this many attempts re-queue.
    pub max_attempts: u32,
    /// Caller correlation id (the daemon's queue job id; the CLI uses 0).
    pub tag: u64,
}

impl JobSpec {
    /// The CLI's spec for a registry entry: stem = id, inherited env,
    /// the historical crash-retry budget of one retry.
    pub fn for_experiment(e: &crate::experiments::Experiment) -> JobSpec {
        JobSpec {
            experiment: e.id.to_string(),
            cost: e.cost,
            stem: e.id.to_string(),
            env: Vec::new(),
            max_attempts: 2,
            tag: 0,
        }
    }
}

/// How one finished attempt ended.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The child ran to completion and wrote a parseable single-record
    /// shapes document (its oracle verdict may still be FAIL — that is
    /// a *result*, never retried).
    Completed(Box<ShapeRecord>),
    /// Panic, signal, timeout, unparseable/missing result, or a spawn
    /// failure. `will_retry` reports whether the pool re-queued the job
    /// (attempt budget not yet exhausted).
    Crashed {
        /// Human-readable classification.
        reason: String,
        /// Whether the pool re-queued this job for another attempt.
        will_retry: bool,
    },
}

/// One finished attempt, as returned by [`Pool::tick`].
#[derive(Debug)]
pub struct AttemptEnd {
    /// The spec this attempt belonged to.
    pub spec: JobSpec,
    /// 1-based attempt number within the pool.
    pub attempt: u32,
    /// Wall-clock of the attempt.
    pub duration: Duration,
    /// Captured child output.
    pub log_path: PathBuf,
    /// Result JSON path the child was told to write.
    pub json_path: PathBuf,
    /// The classification.
    pub outcome: AttemptOutcome,
}

/// A running job that [`Pool::abort_all`] killed before it could
/// finish (graceful drain / shutdown). Deliberately *not* an
/// [`AttemptEnd`]: an aborted attempt consumes no retry budget — the
/// caller decides whether to re-queue (the daemon journals these as
/// crashed-with-retry-credit so a restart resumes them).
#[derive(Debug)]
pub struct AbortedAttempt {
    /// The spec of the killed job.
    pub spec: JobSpec,
    /// The attempt number that was in flight.
    pub attempt: u32,
    /// How long it had been running.
    pub duration: Duration,
}

/// Kinds of [`PoolEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The job entered the pending queue.
    Queued,
    /// An attempt's child process started.
    Started,
    /// An attempt finished (completed or crashed).
    Finished,
}

impl EventKind {
    /// The NDJSON tag.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Queued => "queued",
            EventKind::Started => "started",
            EventKind::Finished => "finished",
        }
    }
}

/// One progress record. The CLI streams these to `--events <path>` as
/// NDJSON; the daemon folds them into its queue journal and metrics —
/// both views report the same facts because both come from here.
///
/// Serialized schema (`epic-events-v1`, one object per line):
/// `event` (queued|started|finished), `experiment`, `tag`, `attempt`,
/// `ts_ms` (unix epoch milliseconds), and for `finished` only:
/// `outcome` (completed|crashed), `duration_ms`, `verdict`
/// (PASS|ADVISORY|FAIL, completed only), `will_retry` (crashed only).
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEvent {
    /// What happened.
    pub kind: EventKind,
    /// The experiment id.
    pub experiment: String,
    /// Caller correlation id (0 for the CLI).
    pub tag: u64,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Unix epoch milliseconds when the event was recorded.
    pub ts_ms: u64,
    /// `finished` only: wall-clock of the attempt.
    pub duration_ms: Option<f64>,
    /// `finished` only: `completed` or `crashed`.
    pub outcome: Option<String>,
    /// `finished` + completed only: the oracle verdict.
    pub verdict: Option<String>,
    /// `finished` + crashed only: whether the pool re-queued the job.
    pub will_retry: Option<bool>,
}

impl PoolEvent {
    fn new(kind: EventKind, spec: &JobSpec, attempt: u32) -> PoolEvent {
        PoolEvent {
            kind,
            experiment: spec.experiment.clone(),
            tag: spec.tag,
            attempt,
            ts_ms: unix_ms(),
            duration_ms: None,
            outcome: None,
            verdict: None,
            will_retry: None,
        }
    }

    /// One NDJSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"event\": ");
        push_str_literal(&mut out, self.kind.name());
        out.push_str(", \"experiment\": ");
        push_str_literal(&mut out, &self.experiment);
        let _ = write!(
            out,
            ", \"tag\": {}, \"attempt\": {}, \"ts_ms\": {}",
            self.tag, self.attempt, self.ts_ms
        );
        if let Some(d) = self.duration_ms {
            let _ = write!(out, ", \"duration_ms\": {}", render_num(d));
        }
        if let Some(o) = &self.outcome {
            out.push_str(", \"outcome\": ");
            push_str_literal(&mut out, o);
        }
        if let Some(v) = &self.verdict {
            out.push_str(", \"verdict\": ");
            push_str_literal(&mut out, v);
        }
        if let Some(w) = self.will_retry {
            let _ = write!(out, ", \"will_retry\": {w}");
        }
        out.push('}');
        out
    }

    /// Parses one NDJSON line (the round-trip partner of
    /// [`PoolEvent::to_json`]).
    pub fn parse(line: &str) -> Result<PoolEvent, String> {
        let v = Json::parse(line)?;
        let str_field = |key: &str| v.get(key).and_then(Json::as_str).map(str::to_string);
        let num_field = |key: &str| v.get(key).and_then(Json::as_f64);
        let kind = match str_field("event").as_deref() {
            Some("queued") => EventKind::Queued,
            Some("started") => EventKind::Started,
            Some("finished") => EventKind::Finished,
            other => return Err(format!("events: unknown event kind {other:?}")),
        };
        Ok(PoolEvent {
            kind,
            experiment: str_field("experiment").ok_or("events: missing experiment")?,
            tag: num_field("tag").ok_or("events: missing tag")? as u64,
            attempt: num_field("attempt").ok_or("events: missing attempt")? as u32,
            ts_ms: num_field("ts_ms").ok_or("events: missing ts_ms")? as u64,
            duration_ms: num_field("duration_ms"),
            outcome: str_field("outcome"),
            verdict: str_field("verdict"),
            will_retry: v.get("will_retry").and_then(Json::as_bool),
        })
    }
}

/// Milliseconds since the unix epoch (0 if the clock is before 1970).
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

struct Running {
    spec: JobSpec,
    attempt: u32,
    child: Child,
    started: Instant,
    json_path: PathBuf,
    log_path: PathBuf,
}

/// The pool itself. See the module docs for the driving protocol.
pub struct Pool {
    cfg: PoolCfg,
    /// Pending (spec, next-attempt) pairs, kept sorted ascending by
    /// (cost, id) so `pop()` takes the heaviest first (LPT). Retries are
    /// pushed to the back, i.e. run next — a crashed job's slot is
    /// already warm and its result is blocking the merge.
    pending: Vec<(JobSpec, u32)>,
    running: Vec<Running>,
    events: Vec<PoolEvent>,
}

impl Pool {
    /// An empty pool over `cfg` (slot count is clamped to >= 1).
    pub fn new(mut cfg: PoolCfg) -> Pool {
        cfg.slots = cfg.slots.max(1);
        Pool {
            cfg,
            pending: Vec::new(),
            running: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The configuration the pool runs under.
    pub fn cfg(&self) -> &PoolCfg {
        &self.cfg
    }

    /// Queues `spec` (emits a `queued` event). The LPT order is
    /// maintained across submissions.
    pub fn submit(&mut self, spec: JobSpec) {
        self.events
            .push(PoolEvent::new(EventKind::Queued, &spec, 1));
        self.pending.push((spec, 1));
        self.pending
            .sort_by(|(a, _), (b, _)| a.cost.cmp(&b.cost).then(a.experiment.cmp(&b.experiment)));
    }

    /// True when nothing is pending or running.
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.running.is_empty()
    }

    /// (pending, running, slots).
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.pending.len(), self.running.len(), self.cfg.slots)
    }

    /// Drains the buffered event stream.
    pub fn take_events(&mut self) -> Vec<PoolEvent> {
        std::mem::take(&mut self.events)
    }

    /// One scheduling step: fill free slots from the pending queue,
    /// reap finished/timed-out children, classify them, and re-queue
    /// crashes with remaining attempt budget. Returns the attempts that
    /// ended this tick. Never blocks; callers sleep between ticks.
    pub fn tick(&mut self) -> Vec<AttemptEnd> {
        let mut ended = Vec::new();
        while self.running.len() < self.cfg.slots {
            let Some((spec, attempt)) = self.pending.pop() else {
                break;
            };
            match self.spawn(&spec, attempt) {
                Ok(job) => {
                    self.events
                        .push(PoolEvent::new(EventKind::Started, &spec, attempt));
                    self.running.push(job);
                }
                Err(e) => {
                    // A spawn failure is an instant crash: same retry
                    // budget, no child to wait for.
                    let end = self.finish_crash(
                        spec,
                        attempt,
                        Duration::ZERO,
                        format!("could not spawn child: {e}"),
                    );
                    ended.push(end);
                }
            }
        }
        let mut i = 0;
        while i < self.running.len() {
            let timed_out = self.running[i].started.elapsed() > self.cfg.timeout;
            // (exit, killed-by-us): a child that exited on its own is
            // never treated as timed out, even if observed past the
            // deadline — its result file decides.
            let exited = match self.running[i].child.try_wait() {
                Ok(Some(status)) => Some((status.code(), false)),
                Ok(None) if timed_out => {
                    let _ = self.running[i].child.kill();
                    let _ = self.running[i].child.wait();
                    Some((None, true))
                }
                Ok(None) => None,
                Err(_) => Some((None, false)),
            };
            let Some((exit, killed)) = exited else {
                i += 1;
                continue;
            };
            let job = self.running.swap_remove(i);
            let duration = job.started.elapsed();
            match classify(&job, killed, exit) {
                Classified::Completed(rec) => {
                    let mut ev = PoolEvent::new(EventKind::Finished, &job.spec, job.attempt);
                    ev.duration_ms = Some(duration.as_secs_f64() * 1e3);
                    ev.outcome = Some("completed".to_string());
                    ev.verdict = Some(rec.report.verdict().to_string());
                    self.events.push(ev);
                    ended.push(AttemptEnd {
                        spec: job.spec,
                        attempt: job.attempt,
                        duration,
                        log_path: job.log_path,
                        json_path: job.json_path,
                        outcome: AttemptOutcome::Completed(Box::new(rec)),
                    });
                }
                Classified::Crashed(reason) => {
                    ended.push(self.finish_crash(job.spec, job.attempt, duration, reason));
                }
            }
        }
        ended
    }

    /// Records a crashed attempt: emits the `finished` event, re-queues
    /// when budget remains, and builds the [`AttemptEnd`].
    fn finish_crash(
        &mut self,
        spec: JobSpec,
        attempt: u32,
        duration: Duration,
        reason: String,
    ) -> AttemptEnd {
        let will_retry = attempt < spec.max_attempts;
        let mut ev = PoolEvent::new(EventKind::Finished, &spec, attempt);
        ev.duration_ms = Some(duration.as_secs_f64() * 1e3);
        ev.outcome = Some("crashed".to_string());
        ev.will_retry = Some(will_retry);
        self.events.push(ev);
        if will_retry {
            // Back of the LPT vec = popped next.
            self.pending.push((spec.clone(), attempt + 1));
        }
        let (json_path, log_path) = self.artifact_paths(&spec.stem);
        AttemptEnd {
            spec,
            attempt,
            duration,
            log_path,
            json_path,
            outcome: AttemptOutcome::Crashed { reason, will_retry },
        }
    }

    /// Kills every running child and empties the pending queue.
    /// Aborted attempts consume **no** retry budget — see
    /// [`AbortedAttempt`]. Pending (never-started) jobs come back too,
    /// with `attempt` = the attempt they were queued for.
    pub fn abort_all(&mut self) -> Vec<AbortedAttempt> {
        let mut aborted = Vec::new();
        for mut job in self.running.drain(..) {
            let _ = job.child.kill();
            let _ = job.child.wait();
            aborted.push(AbortedAttempt {
                attempt: job.attempt,
                duration: job.started.elapsed(),
                spec: job.spec,
            });
        }
        for (spec, attempt) in self.pending.drain(..) {
            aborted.push(AbortedAttempt {
                spec,
                attempt,
                duration: Duration::ZERO,
            });
        }
        aborted
    }

    fn artifact_paths(&self, stem: &str) -> (PathBuf, PathBuf) {
        (
            self.cfg.dir.join(format!("{stem}.json")),
            self.cfg.dir.join(format!("{stem}.log")),
        )
    }

    fn spawn(&self, spec: &JobSpec, attempt: u32) -> std::io::Result<Running> {
        let (json_path, log_path) = self.artifact_paths(&spec.stem);
        let _ = std::fs::remove_file(&json_path); // stale results must not count
        let log = File::create(&log_path)?;
        let mut cmd = Command::new(&self.cfg.program);
        cmd.arg("--one")
            .arg(&spec.experiment)
            .arg("--result-json")
            .arg(&json_path)
            .stdin(Stdio::null())
            .stdout(Stdio::from(log.try_clone()?))
            .stderr(Stdio::from(log));
        for (k, v) in &spec.env {
            cmd.env(k, v);
        }
        let child = cmd.spawn()?;
        Ok(Running {
            spec: spec.clone(),
            attempt,
            child,
            started: Instant::now(),
            json_path,
            log_path,
        })
    }
}

enum Classified {
    Completed(ShapeRecord),
    Crashed(String),
}

/// `killed` means the pool killed the child at the timeout — a child
/// that beat the deadline on its own is classified purely by its result
/// file, however close to the limit it finished.
fn classify(job: &Running, killed: bool, exit: Option<i32>) -> Classified {
    if killed {
        return Classified::Crashed(format!(
            "timed out after {:.0}s and was killed",
            job.started.elapsed().as_secs_f64()
        ));
    }
    match std::fs::read_to_string(&job.json_path)
        .map_err(|e| e.to_string())
        .and_then(|text| ShapesDoc::parse(&text))
    {
        Ok(doc) if doc.records.len() == 1 => {
            let mut rec = doc.records.into_iter().next().unwrap();
            rec.attempts = job.attempt;
            Classified::Completed(rec)
        }
        Ok(doc) => Classified::Crashed(format!(
            "child wrote {} records instead of 1",
            doc.records.len()
        )),
        Err(e) => match exit {
            Some(code) => Classified::Crashed(format!("exit code {code}, no usable result: {e}")),
            None => Classified::Crashed(format!("killed by signal, no usable result: {e}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str, cost: u32) -> JobSpec {
        JobSpec {
            experiment: id.to_string(),
            cost,
            stem: id.to_string(),
            env: Vec::new(),
            max_attempts: 2,
            tag: 7,
        }
    }

    #[test]
    fn events_round_trip_through_json() {
        // One of each kind, optional fields exercised both ways — this
        // pins the `epic-events-v1` record schema.
        let mut queued = PoolEvent::new(EventKind::Queued, &spec("fig4_garbage", 5), 1);
        queued.ts_ms = 1_700_000_000_123;
        let mut started = PoolEvent::new(EventKind::Started, &spec("fig4_garbage", 5), 2);
        started.ts_ms = 1_700_000_000_456;
        let mut done = PoolEvent::new(EventKind::Finished, &spec("fig4_garbage", 5), 2);
        done.ts_ms = 1_700_000_001_000;
        done.duration_ms = Some(543.25);
        done.outcome = Some("completed".to_string());
        done.verdict = Some("PASS".to_string());
        let mut crashed = PoolEvent::new(EventKind::Finished, &spec("fig4_garbage", 5), 1);
        crashed.ts_ms = 1_700_000_002_000;
        crashed.duration_ms = Some(10.0);
        crashed.outcome = Some("crashed".to_string());
        crashed.will_retry = Some(true);
        for ev in [queued, started, done, crashed] {
            let line = ev.to_json();
            assert!(!line.contains('\n'), "NDJSON lines must be single-line");
            let back = PoolEvent::parse(&line)
                .unwrap_or_else(|e| panic!("round trip failed: {e}\n{line}"));
            assert_eq!(back, ev, "line: {line}");
        }
    }

    #[test]
    fn event_schema_field_names_are_pinned() {
        let mut ev = PoolEvent::new(EventKind::Finished, &spec("x", 1), 3);
        ev.ts_ms = 42;
        ev.duration_ms = Some(1.5);
        ev.outcome = Some("crashed".to_string());
        ev.will_retry = Some(false);
        assert_eq!(
            ev.to_json(),
            "{\"event\": \"finished\", \"experiment\": \"x\", \"tag\": 7, \"attempt\": 3, \
             \"ts_ms\": 42, \"duration_ms\": 1.5, \"outcome\": \"crashed\", \"will_retry\": false}"
        );
    }

    #[test]
    fn event_parse_rejects_garbage() {
        assert!(PoolEvent::parse("not json").is_err());
        assert!(PoolEvent::parse("{\"event\": \"warped\"}").is_err());
        assert!(
            PoolEvent::parse("{\"event\": \"queued\"}").is_err(),
            "missing fields"
        );
    }

    fn test_cfg(dir: &std::path::Path, program: &str) -> PoolCfg {
        PoolCfg {
            slots: 2,
            timeout: Duration::from_secs(30),
            dir: dir.to_path_buf(),
            program: PathBuf::from(program),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("epic_pool_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// A spawn failure (nonexistent program) burns one attempt, retries
    /// once, then reports a final crash — all through events.
    #[test]
    fn spawn_failure_consumes_retry_budget() {
        let dir = scratch("spawnfail");
        let mut pool = Pool::new(test_cfg(&dir, "/no/such/binary/epic-run"));
        pool.submit(spec("fig4_garbage", 1));
        let mut crashes = 0;
        for _ in 0..4 {
            for end in pool.tick() {
                match end.outcome {
                    AttemptOutcome::Crashed { will_retry, .. } => {
                        crashes += 1;
                        assert_eq!(will_retry, crashes == 1, "retry only on attempt 1");
                    }
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            if pool.is_idle() {
                break;
            }
        }
        assert_eq!(crashes, 2, "one attempt + one retry");
        assert!(pool.is_idle());
        let kinds: Vec<&str> = pool.take_events().iter().map(|e| e.kind.name()).collect();
        assert_eq!(kinds, ["queued", "finished", "finished"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// LPT: the heavier job starts first when slots are scarce.
    #[test]
    fn heaviest_pending_job_starts_first() {
        let dir = scratch("lpt");
        let mut cfg = test_cfg(&dir, "/no/such/binary/epic-run");
        cfg.slots = 1;
        let mut pool = Pool::new(cfg);
        pool.submit(spec("light", 1));
        pool.submit(spec("heavy", 50));
        pool.submit(spec("medium", 10));
        // Run the pool dry; spawn failures end attempts instantly, so the
        // first-finished order equals the start order.
        let mut first_ended: Vec<String> = Vec::new();
        while !pool.is_idle() {
            for end in pool.tick() {
                if end.attempt == 1 {
                    first_ended.push(end.spec.experiment);
                }
            }
        }
        // Retries interleave, so compare only the first occurrence order.
        assert_eq!(first_ended, ["heavy", "medium", "light"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `abort_all` returns running and pending jobs without consuming
    /// retry budget, and leaves the pool idle.
    #[test]
    fn abort_all_preserves_attempt_credit() {
        let dir = scratch("abort");
        // A stand-in child that ignores the --one args and runs long
        // enough to still be alive when aborted.
        let script = dir.join("sleeper.sh");
        std::fs::write(&script, "#!/bin/sh\nsleep 30\n").unwrap();
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            std::fs::set_permissions(&script, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        let mut cfg = test_cfg(&dir, script.to_str().unwrap());
        cfg.slots = 1;
        let mut pool = Pool::new(cfg);
        pool.submit(spec("running_job", 10));
        pool.submit(spec("pending_job", 1));
        let ended = pool.tick();
        assert!(ended.is_empty(), "sleep child must still be running");
        let (pending, running, _) = pool.counts();
        assert_eq!((pending, running), (1, 1));
        let mut aborted = pool.abort_all();
        aborted.sort_by(|a, b| a.spec.experiment.cmp(&b.spec.experiment));
        assert_eq!(aborted.len(), 2);
        assert_eq!(aborted[0].spec.experiment, "pending_job");
        assert_eq!(aborted[0].attempt, 1);
        assert_eq!(aborted[1].spec.experiment, "running_job");
        assert_eq!(aborted[1].attempt, 1, "aborts burn no attempt");
        assert!(pool.is_idle());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
