//! The process-isolated experiment job engine behind
//! `epic-run check -j N [--shard K/N]`.
//!
//! Experiments are embarrassingly parallel **across processes** but must
//! never share one: each assumes exclusive ownership of its worker
//! threads, the counting global allocator, and the `EPIC_*` environment.
//! So the engine schedules registry entries as *child processes* — the
//! binary re-invokes itself as `epic-run --one <id> --result-json <p>` —
//! through the [`pool`] module, which owns the mechanics shared with the
//! `epic-serve` daemon:
//!
//! * `jobs` concurrent worker slots, filled longest-processing-time
//!   first using the registry's [`Experiment::cost`] hints, so the
//!   heaviest sweeps start first and wall-clock approaches
//!   `max(shard)` instead of `sum(experiments)`;
//! * a per-job timeout and one retry after a crash (panic, signal,
//!   timeout) — a completed run that merely *fails its oracle* is a
//!   result, not a crash, and is never retried;
//! * live one-line progress, with child stdout/stderr captured under a
//!   per-run directory `<results>/jobs/run-<ts>-<pid>-<seq>/` (old run
//!   directories are swept, keeping the last `EPIC_JOB_LOG_KEEP`);
//! * an optional NDJSON progress stream (`--events <path>`) of
//!   [`pool::PoolEvent`] records — the same facts the daemon's `/jobs`
//!   view reports, because both come from the pool;
//! * a deterministic merge: per-job documents combine in registry order
//!   no matter the completion order.
//!
//! Sharding ([`partition`]) splits the registry into `N` stable,
//! cost-balanced id sets so `N` CI jobs (or `N` big-box invocations) can
//! each run one shard and `epic-run merge-shapes` fans the results back
//! into one verdict table.

pub mod pool;

use crate::experiments::{all_experiments, Experiment};
use crate::oracle::{oracle_for, AssertionOutcome, OracleReport, Tier};
use crate::report::results_dir;
use crate::shapes::{RunnerMeta, ShapeRecord, ShapesDoc};
use pool::{AttemptOutcome, JobSpec, Pool, PoolCfg};
use std::collections::HashSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// FNV-1a over the id bytes: the stable hash the shard partitioner
/// orders by. Not a quality hash — a *frozen* one: the shard an id lands
/// in must never depend on compiler, platform, or std internals.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Splits the full registry into `n` disjoint shards, returned in
/// registry order within each shard.
///
/// The assignment is a pure function of the id set and the static cost
/// hints: ids are ordered by (cost desc, FNV-1a hash, id) and dealt
/// serpentine-wise (`1..n`, `n..1`, ...) across the shards, so
///
/// * every id lands in exactly one shard,
/// * shard sizes differ by at most one and heavy experiments spread
///   evenly (the hash only tie-breaks equal costs),
/// * the same binary always produces the same shards — CI matrix jobs
///   and big-box invocations can compute them independently.
pub fn partition(n: usize) -> Vec<Vec<String>> {
    assert!(n >= 1, "shard count must be >= 1");
    let mut entries = all_experiments();
    entries.sort_by(|a, b| {
        b.cost
            .cmp(&a.cost)
            .then(fnv1a(&a.id).cmp(&fnv1a(&b.id)))
            .then(a.id.cmp(&b.id))
    });
    let mut shards = vec![Vec::new(); n];
    for (i, e) in entries.into_iter().enumerate() {
        let (round, pos) = (i / n, i % n);
        let s = if round % 2 == 0 { pos } else { n - 1 - pos };
        shards[s].push(e.id);
    }
    let order: std::collections::HashMap<String, usize> = all_experiments()
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e.id, i))
        .collect();
    for shard in &mut shards {
        shard.sort_by_key(|id| order[id.as_str()]);
    }
    shards
}

/// The id set of shard `k` of `n` (`k` is 1-based, as on the CLI).
pub fn shard_members(k: usize, n: usize) -> HashSet<String> {
    assert!(k >= 1 && k <= n, "shard index {k} out of 1..={n}");
    partition(n).swap_remove(k - 1).into_iter().collect()
}

/// Distinguishes run dirs created within one millisecond by one process
/// (tests spin pools up quickly).
static RUN_SEQ: AtomicU64 = AtomicU64::new(0);

/// Creates a fresh per-run artifact directory
/// `<results>/jobs/run-<unix-ms>-<pid>-<seq>/` and sweeps old run
/// directories, keeping the newest [`job_log_keep`] (the new one
/// included). Both `epic-run check -j N` and the `epic-serve` daemon
/// allocate their child logs here, so `results/jobs/` stays bounded
/// across runs instead of accreting logs forever.
pub fn new_run_dir() -> std::io::Result<PathBuf> {
    let root = results_dir().join("jobs");
    std::fs::create_dir_all(&root)?;
    let seq = RUN_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = root.join(format!(
        "run-{:013}-{}-{seq}",
        pool::unix_ms(),
        std::process::id()
    ));
    std::fs::create_dir_all(&dir)?;
    sweep_run_dirs(&root, job_log_keep());
    Ok(dir)
}

/// How many run directories to keep under `<results>/jobs/`
/// (`EPIC_JOB_LOG_KEEP`, default 10, minimum 1).
pub fn job_log_keep() -> usize {
    epic_util::topology::env_usize("EPIC_JOB_LOG_KEEP", 10).max(1)
}

/// Removes the oldest `run-*` directories under `root` beyond `keep`.
/// Age is the directory name itself — run dirs embed a zero-padded unix
/// millisecond timestamp, so the lexicographic order is the creation
/// order. Non-`run-*` entries (including the flat `<id>.log` files of
/// pre-PR-8 layouts) are left alone.
pub fn sweep_run_dirs(root: &Path, keep: usize) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut runs: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("run-"))
        })
        .collect();
    runs.sort();
    let n = runs.len();
    for old in runs.into_iter().take(n.saturating_sub(keep)) {
        if let Err(e) = std::fs::remove_dir_all(&old) {
            eprintln!(
                "warning: could not sweep old run dir {}: {e}",
                old.display()
            );
        }
    }
}

/// The record the engine synthesizes when an experiment process crashed
/// (or timed out) on both attempts: a single failed strict assertion, so
/// the merged verdict table reports `FAIL` instead of silently dropping
/// the experiment.
fn crash_record(id: &str, attempts: u32, reason: &str, log_path: &Path) -> ShapeRecord {
    let claim = oracle_for(id)
        .map(|o| o.claim.to_string())
        .unwrap_or_default();
    ShapeRecord {
        report: OracleReport {
            experiment: id.to_string(),
            claim,
            outcomes: vec![AssertionOutcome {
                label: "experiment process completed".to_string(),
                tier: Tier::Strict,
                passed: false,
                detail: format!("{reason} (see {})", log_path.display()),
            }],
        },
        duration_ms: 0.0,
        attempts,
        result_json: "null".to_string(),
    }
}

/// Runs `selected` as child processes on `jobs` worker slots and merges
/// the per-job documents into one [`ShapesDoc`] (records in registry
/// order). `shard_label` is recorded as runner provenance;
/// `events_path`, when set, receives the NDJSON progress stream. Only
/// run-dir/event-sink setup errors are `Err` — experiment failures and
/// crashes (including spawn failures) are *records* in the returned
/// document.
pub fn run_parallel(
    selected: &[Experiment],
    jobs: usize,
    timeout: Duration,
    shard_label: &str,
    events_path: Option<&Path>,
) -> Result<ShapesDoc, String> {
    let jobs = jobs.max(1);
    let total = selected.len();
    let run_dir = new_run_dir().map_err(|e| format!("runner: could not create run dir: {e}"))?;
    let mut events_sink = match events_path {
        Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p).map_err(
            |e| format!("runner: could not create events file {}: {e}", p.display()),
        )?)),
        None => None,
    };
    let program = std::env::current_exe()
        .map_err(|e| format!("runner: could not resolve own binary: {e}"))?;
    let mut pool = Pool::new(PoolCfg {
        slots: jobs,
        timeout,
        dir: run_dir.clone(),
        program,
    });
    println!(
        "runner: {total} experiments on {jobs} worker slots (shard {shard_label}, timeout {}s, \
         logs under {})",
        timeout.as_secs(),
        run_dir.display()
    );
    for e in selected {
        pool.submit(JobSpec::for_experiment(e));
    }
    let mut records: Vec<ShapeRecord> = Vec::new();
    loop {
        let ended = pool.tick();
        // Starts print from the event stream (the pool's own facts), and
        // every event goes to the NDJSON sink.
        for ev in pool.take_events() {
            if ev.kind == pool::EventKind::Started {
                println!("[start] {} (attempt {})", ev.experiment, ev.attempt);
            }
            if let Some(w) = events_sink.as_mut() {
                let _ = writeln!(w, "{}", ev.to_json());
            }
        }
        if let Some(w) = events_sink.as_mut() {
            let _ = w.flush();
        }
        for end in ended {
            let secs = end.duration.as_secs_f64();
            match end.outcome {
                AttemptOutcome::Completed(rec) => {
                    println!(
                        "[{:>2}/{total}] {:<32} {:<8} ({secs:.1}s, attempt {})",
                        records.len() + 1,
                        end.spec.experiment,
                        rec.report.verdict(),
                        end.attempt
                    );
                    records.push(*rec);
                }
                AttemptOutcome::Crashed { reason, will_retry } => {
                    if will_retry {
                        println!(
                            "[retry] {}: {reason} — retrying once (log: {})",
                            end.spec.experiment,
                            end.log_path.display()
                        );
                    } else {
                        println!(
                            "[{:>2}/{total}] {:<32} CRASHED  ({secs:.1}s, attempt {}): {reason}",
                            records.len() + 1,
                            end.spec.experiment,
                            end.attempt
                        );
                        records.push(crash_record(
                            &end.spec.experiment,
                            end.attempt,
                            &reason,
                            &end.log_path,
                        ));
                    }
                }
            }
        }
        if pool.is_idle() {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let order: std::collections::HashMap<String, usize> = all_experiments()
        .into_iter()
        .enumerate()
        .map(|(i, e)| (e.id, i))
        .collect();
    records.sort_by_key(|r| {
        order
            .get(r.report.experiment.as_str())
            .copied()
            .unwrap_or(usize::MAX)
    });
    Ok(ShapesDoc {
        records,
        runner: RunnerMeta {
            shard: shard_label.to_string(),
            jobs,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_frozen() {
        // Reference values computed from the FNV-1a definition; if these
        // move, every existing shard assignment moves with them.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a("fig4_garbage"), fnv1a("fig4_garbage"));
        assert_ne!(fnv1a("fig4_garbage"), fnv1a("fig4_garbagf"));
    }

    #[test]
    fn partition_covers_every_id_exactly_once() {
        let all: Vec<String> = all_experiments().into_iter().map(|e| e.id).collect();
        for n in [1, 2, 3, 5, 31, 64] {
            let shards = partition(n);
            assert_eq!(shards.len(), n);
            let mut seen = HashSet::new();
            for shard in &shards {
                for id in shard {
                    assert!(
                        seen.insert(id.clone()),
                        "{id} assigned to two shards (n={n})"
                    );
                }
            }
            assert_eq!(seen.len(), all.len(), "n={n} dropped ids");
        }
    }

    #[test]
    fn shard_1_of_1_is_the_full_registry_in_order() {
        let all: Vec<String> = all_experiments().into_iter().map(|e| e.id).collect();
        assert_eq!(partition(1), vec![all]);
    }

    #[test]
    fn shards_are_stable_and_balanced() {
        for n in [2, 3, 4] {
            let a = partition(n);
            let b = partition(n);
            assert_eq!(a, b, "partition must be deterministic (n={n})");
            let sizes: Vec<usize> = a.iter().map(Vec::len).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shard sizes {sizes:?} (n={n})");
            // Cost balance: serpentine dealing keeps every shard within
            // ~one heavy experiment of the mean.
            let cost_of = |ids: &Vec<String>| -> u64 {
                let reg = all_experiments();
                ids.iter()
                    .map(|id| u64::from(reg.iter().find(|e| &e.id == id).unwrap().cost))
                    .sum()
            };
            let costs: Vec<u64> = a.iter().map(cost_of).collect();
            let heaviest = u64::from(all_experiments().iter().map(|e| e.cost).max().unwrap());
            let (cmin, cmax) = (costs.iter().min().unwrap(), costs.iter().max().unwrap());
            assert!(
                cmax - cmin <= heaviest,
                "cost spread {costs:?} exceeds one heavy job (n={n})"
            );
        }
    }

    #[test]
    fn shard_members_matches_partition() {
        let shards = partition(3);
        for (i, shard) in shards.iter().enumerate() {
            let members = shard_members(i + 1, 3);
            assert_eq!(members, shard.iter().cloned().collect::<HashSet<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_index_is_one_based() {
        let _ = shard_members(0, 3);
    }

    #[test]
    fn crash_record_fails_strict() {
        let rec = crash_record(
            "fig4_garbage",
            2,
            "boom",
            std::path::Path::new("/tmp/x.log"),
        );
        assert_eq!(rec.report.verdict(), "FAIL");
        assert_eq!(rec.attempts, 2);
        assert!(rec.report.outcomes[0].detail.contains("boom"));
        assert!(
            !rec.report.claim.is_empty(),
            "claim comes from the registered oracle"
        );
    }

    #[test]
    fn sweep_keeps_newest_run_dirs_and_ignores_strays() {
        let root = std::env::temp_dir().join(format!("epic_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        for ts in 1..=5u64 {
            let dir = root.join(format!("run-{ts:013}-1-0"));
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join("x.log"), "log").unwrap();
        }
        // Strays: a flat pre-PR-8 log file and an unrelated directory.
        std::fs::write(root.join("fig4_garbage.log"), "old layout").unwrap();
        std::fs::create_dir_all(root.join("not_a_run")).unwrap();
        sweep_run_dirs(&root, 2);
        let mut left: Vec<String> = std::fs::read_dir(&root)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(
            left,
            [
                "fig4_garbage.log",
                "not_a_run",
                "run-0000000000004-1-0",
                "run-0000000000005-1-0"
            ]
        );
        // keep >= count is a no-op.
        sweep_run_dirs(&root, 10);
        assert_eq!(std::fs::read_dir(&root).unwrap().count(), 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn new_run_dirs_are_unique_and_swept() {
        let scratch = std::env::temp_dir().join(format!("epic_rundir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        // results_dir honors EPIC_RESULTS; serialize with the other env
        // tests in this crate.
        let _guard = crate::report::env_lock();
        std::env::set_var("EPIC_RESULTS", &scratch);
        std::env::set_var("EPIC_JOB_LOG_KEEP", "3");
        let dirs: Vec<PathBuf> = (0..5).map(|_| new_run_dir().unwrap()).collect();
        std::env::remove_var("EPIC_JOB_LOG_KEEP");
        std::env::remove_var("EPIC_RESULTS");
        let unique: HashSet<&PathBuf> = dirs.iter().collect();
        assert_eq!(unique.len(), dirs.len(), "run dirs must be unique");
        let root = scratch.join("jobs");
        let survivors = std::fs::read_dir(&root).unwrap().count();
        assert_eq!(survivors, 3, "sweep must keep exactly EPIC_JOB_LOG_KEEP");
        // The newest dir (the one a runner would use) survives its own sweep.
        assert!(dirs.last().unwrap().exists());
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
