//! # epic-harness — the paper's evaluation methodology as a library
//!
//! Reproduces the experimental setup of §3/§5:
//!
//! > "For each thread count n, three trials were performed. In each trial,
//! > n threads access the same data structure, and for five seconds,
//! > repeatedly: flip a coin to decide whether to insert or delete a key,
//! > and perform the resulting operation on a uniform random key in a
//! > fixed key range. [...] the measured portion begins once the size of
//! > the data structure stabilizes."
//!
//! Scaled to this machine (see DESIGN.md §2): thread counts sweep to 2×
//! the logical CPUs, durations and key ranges default small, and
//! everything scales up through environment variables:
//!
//! | variable | meaning | default |
//! |---|---|---|
//! | `EPIC_MILLIS` | measured milliseconds per trial | 200 |
//! | `EPIC_TRIALS` | trials per data point | 1 |
//! | `EPIC_KEYRANGE` | key range (steady-state size = half) | 16384 |
//! | `EPIC_THREADS` | comma-separated thread counts for sweeps | powers of 2 up to 2×CPUs |
//! | `EPIC_BAG_CAP` | limbo-bag capacity (paper: 32768) | 4096 |
//! | `EPIC_RESULTS` | artifact output directory | `results/` |
//! | `EPIC_RUNBOOK` | scenario runbook file generating `sc_*` experiments | unset |
//! | `EPIC_JOB_TIMEOUT_SECS` | per-child timeout for `epic-run check -j N` | 600 |
//! | `EPIC_JOB_LOG_KEEP` | run directories kept under `results/jobs/` | 10 |
//! | `EPIC_QUEUE_COMPACT_LINES` | `epic-serve` queue-journal compaction threshold | 4096 |
//!
//! The authoritative reference for *every* `EPIC_*` variable (including
//! the module-specific ones not listed here) is the README's
//! "Environment reference" table, pinned by the `env_reference`
//! integration test.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod benchdiff;
pub mod config;
pub mod experiments;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod shapes;
pub mod workload;

pub use config::{Arrival, ExperimentScale, KeyDist, WorkloadCfg};
pub use report::{results_dir, ExperimentResult, Table};
pub use scenario::{Cell, Runbook, ThreadSpec};
pub use shapes::{RunnerMeta, ShapeRecord, ShapesDoc};
pub use workload::{run_trial, run_trials, TrialResult, TrialSummary};
