//! CLI entry point: run paper experiments by id.
//!
//! ```text
//! epic-run list              # show all experiment ids
//! epic-run fig11a_experiment1
//! epic-run all               # the full evaluation
//! EPIC_MILLIS=5000 EPIC_TRIALS=3 epic-run fig1_scaling   # paper-scale
//! ```

use epic_harness::experiments::{all_experiments, run_by_name};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("experiments (pass an id, or 'all'):");
            for (id, _) in all_experiments() {
                println!("  {id}");
            }
        }
        Some("all") => {
            for (id, f) in all_experiments() {
                println!("\n##### {id} #####");
                f();
            }
        }
        Some(name) => {
            if !run_by_name(name) {
                eprintln!("unknown experiment '{name}'; try 'list'");
                std::process::exit(2);
            }
        }
    }
}
