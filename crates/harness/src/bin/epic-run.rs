//! CLI entry point: run paper experiments by id, check them against the
//! paper-shape oracles — serially or as parallel child processes — and
//! merge sharded results.
//!
//! ```text
//! epic-run list [--shard K/N]        # id + cost + origin (optionally one shard)
//! epic-run list --json               # machine-readable registry (ids, costs,
//!                                    #   origins, seeds, provenance hashes)
//! epic-run list --origin runbook     # only runbook-generated scenario cells
//! epic-run fig11a_experiment1        # run one experiment in-process
//! epic-run all                       # the full evaluation, serial
//! epic-run check                     # run everything + evaluate every oracle
//! epic-run check table3_allocators fig11b_experiment2
//! epic-run check all -j 4            # process-isolated, 4 worker slots
//! epic-run check all --shard 2/3 -j 4
//! epic-run check all -j 4 --events results/events.ndjson  # NDJSON progress
//! epic-run merge-shapes a.json b.json c.json   # fan shards back in
//! epic-run replay <hash> [--against results/SHAPES.json]  # re-run by provenance
//! epic-run bench-diff results/BENCH_handle_baseline.json \
//!          results/BENCH_handle.json --max-regress 15%
//! EPIC_RUNBOOK=runbooks/smoke.json epic-run check all -j 2  # scenario sweep
//! EPIC_MILLIS=5000 EPIC_TRIALS=3 epic-run check all -j $(nproc)  # paper-scale
//! ```
//!
//! `check` prints a PASS/FAIL/ADVISORY verdict table, writes
//! `results/SHAPES.json` (`epic-shapes-v2`), and exits non-zero iff a
//! *strict* assertion failed (advisory misses are reported but never
//! fatal — see DESIGN.md §6). With `-j N` the experiments run as child
//! processes (`--one` self-invocations) under the DESIGN.md §8 job
//! engine; `epic-run <id>` stays serial and in-process, so
//! single-experiment debugging is unchanged.

use epic_harness::experiments::{
    all_experiments, experiment_by_name, run_by_name, Experiment, ExperimentRun, Origin,
};
use epic_harness::oracle::{evaluate, oracle_for, render_verdict_table};
use epic_harness::scenario;
use epic_harness::shapes::{RunnerMeta, ShapeRecord, ShapesDoc};
use epic_harness::{benchdiff, runner};
use std::time::{Duration, Instant};

fn main() {
    // A broken EPIC_RUNBOOK is a hard startup error for every subcommand:
    // silently running without the generated cells would make a sharded
    // `check` pass while skipping the scenarios the caller asked for.
    if let Err(e) = scenario::load_active_runbook() {
        eprintln!("epic-run: {e}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest: Vec<&str> = args.iter().skip(1).map(String::as_str).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => std::process::exit(run_list(&rest)),
        Some("all") => {
            for e in all_experiments() {
                println!("\n##### {} #####", e.id);
                e.execute();
            }
        }
        Some("check") => std::process::exit(run_check(&rest)),
        Some("merge-shapes") => std::process::exit(run_merge(&rest)),
        Some("bench-diff") => std::process::exit(run_bench_diff(&rest)),
        Some("replay") => std::process::exit(run_replay(&rest)),
        Some("--one") => std::process::exit(run_one(&rest)),
        Some(name) => {
            if run_by_name(name).is_none() {
                unknown_experiment(name);
                std::process::exit(2);
            }
        }
    }
}

/// Prints the bad id plus every valid one — `check`, `--one`, and the
/// bare-id form all fail through here.
fn unknown_experiment(name: &str) {
    eprintln!("unknown experiment '{name}'; valid ids:");
    for e in all_experiments() {
        eprintln!("  {}", e.id);
    }
}

/// Parses `K/N` (1-based shard index).
fn parse_shard(s: &str) -> Result<(usize, usize), String> {
    let err = || format!("bad --shard '{s}' (expected K/N with 1 <= K <= N)");
    let (k, n) = s.split_once('/').ok_or_else(err)?;
    let (k, n) = (
        k.trim().parse::<usize>().map_err(|_| err())?,
        n.trim().parse::<usize>().map_err(|_| err())?,
    );
    if k == 0 || n == 0 || k > n {
        return Err(err());
    }
    Ok((k, n))
}

/// Options shared by `list` and `check` (`--json` is list-only).
struct CheckOpts {
    ids: Vec<String>,
    jobs: usize,
    shard: Option<(usize, usize)>,
    timeout: Duration,
    events: Option<std::path::PathBuf>,
    json: bool,
    origin: Option<String>,
}

fn parse_check_opts(rest: &[&str]) -> Result<CheckOpts, String> {
    let default_timeout = epic_util::topology::env_u64("EPIC_JOB_TIMEOUT_SECS", 600);
    let mut opts = CheckOpts {
        ids: Vec::new(),
        jobs: 1,
        shard: None,
        timeout: Duration::from_secs(default_timeout),
        events: None,
        json: false,
        origin: None,
    };
    let mut it = rest.iter();
    while let Some(&arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&str, String> {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg {
            "-j" | "--jobs" => {
                let v = value_of(arg)?;
                opts.jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|j| *j >= 1)
                    .ok_or_else(|| format!("bad {arg} '{v}' (expected a count >= 1)"))?;
            }
            "--shard" => opts.shard = Some(parse_shard(value_of(arg)?)?),
            "--events" => opts.events = Some(std::path::PathBuf::from(value_of(arg)?)),
            "--timeout-secs" => {
                let v = value_of(arg)?;
                opts.timeout = Duration::from_secs(
                    v.parse::<u64>()
                        .map_err(|_| format!("bad --timeout-secs '{v}'"))?,
                );
            }
            "--json" => opts.json = true,
            "--origin" => {
                let v = value_of(arg)?;
                if v != "builtin" && v != "runbook" {
                    return Err(format!(
                        "bad --origin '{v}' (expected 'builtin' or 'runbook')"
                    ));
                }
                opts.origin = Some(v.to_string());
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            id => opts.ids.push(id.to_string()),
        }
    }
    Ok(opts)
}

/// Resolves ids (empty / `all` = full registry, repeats collapse to the
/// first occurrence), applies the shard filter. `Err` carries the exit
/// code (2, after diagnostics).
fn select(opts: &CheckOpts) -> Result<Vec<Experiment>, i32> {
    let registry = all_experiments();
    let mut selected = if opts.ids.is_empty() || opts.ids.iter().any(|s| s == "all") {
        registry
    } else {
        let mut picked: Vec<Experiment> = Vec::new();
        for want in &opts.ids {
            match experiment_by_name(want) {
                // Dedup: the job engine keys per-child artifacts by id,
                // and merge rejects duplicate records.
                Some(e) if picked.iter().any(|p| p.id == e.id) => {}
                Some(e) => picked.push(e),
                None => {
                    unknown_experiment(want);
                    return Err(2);
                }
            }
        }
        picked
    };
    if let Some((k, n)) = opts.shard {
        let members = runner::shard_members(k, n);
        selected.retain(|e| members.contains(&e.id));
    }
    if let Some(origin) = opts.origin.as_deref() {
        selected.retain(|e| match &e.origin {
            Origin::Builtin => origin == "builtin",
            Origin::Runbook { .. } => origin == "runbook",
        });
    }
    Ok(selected)
}

fn run_list(rest: &[&str]) -> i32 {
    let opts = match parse_check_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let selected = match select(&opts) {
        Ok(s) => s,
        Err(code) => return code,
    };
    if opts.json {
        println!("{}", registry_json(&selected));
        return 0;
    }
    match opts.shard {
        Some((k, n)) => println!("experiments in shard {k}/{n}:"),
        None => println!("experiments (pass an id, 'all', or 'check [id...|all]'):"),
    }
    let width = selected.iter().map(|e| e.id.len()).max().unwrap_or(0);
    for e in selected {
        println!(
            "  {:<width$}  cost {:>3}  {}",
            e.id,
            e.cost,
            e.origin.label()
        );
    }
    0
}

/// The selection as a JSON array: id, cost, origin, and the provenance
/// hash each entry would stamp if run right now; scenario cells also
/// carry their derived seed. Every field is an id-safe/hex token, so the
/// literal formatting below needs no escaping. Two processes with the
/// same runbook, toolchain, git rev, and `EPIC_*` environment must
/// produce byte-identical output (pinned by the `scenario_cli` test).
fn registry_json(selected: &[Experiment]) -> String {
    let mut out = String::from("[");
    for (i, e) in selected.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"id\": \"{}\", \"cost\": {}, \"origin\": \"{}\", \"provenance\": \"{}\"",
            e.id,
            e.cost,
            e.origin.label(),
            scenario::provenance_hash(e)
        ));
        if let ExperimentRun::Scenario(cell) = &e.run {
            out.push_str(&format!(", \"seed\": {}", cell.seed));
        }
        out.push('}');
    }
    out.push_str("\n]");
    out
}

/// Runs the selected experiments (in-process when `-j 1`, as child
/// processes otherwise), evaluates their oracles, prints the verdict
/// table, writes `SHAPES.json`. Returns the process exit code:
/// 0 (all strict assertions hold), 1 (strict failure), 2 (bad usage).
fn run_check(rest: &[&str]) -> i32 {
    let opts = match parse_check_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if opts.json {
        eprintln!("--json only applies to `epic-run list`");
        return 2;
    }
    let selected = match select(&opts) {
        Ok(s) => s,
        Err(code) => return code,
    };
    // A `check` that runs nothing must not report green: a typo'd
    // shard/id combination would silently pass the CI oracle gate.
    if selected.is_empty() {
        eprintln!(
            "check: the selection is empty (ids {:?}, shard {:?}) — refusing to pass a run \
             that exercised nothing; use `epic-run list --shard K/N` to inspect shards",
            opts.ids, opts.shard
        );
        return 2;
    }
    let shard_label = match opts.shard {
        Some((k, n)) => format!("{k}/{n}"),
        None => "1/1".to_string(),
    };
    let doc = if opts.jobs <= 1 {
        match check_serial(&selected, &shard_label, opts.events.as_deref()) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    } else {
        match runner::run_parallel(
            &selected,
            opts.jobs,
            opts.timeout,
            &shard_label,
            opts.events.as_deref(),
        ) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    };
    finish_check(&doc)
}

/// The serial in-process path: identical to the pre-engine behavior
/// (live per-assertion traces), plus per-experiment timing. When
/// `events_path` is set, the same `epic-events-v1` NDJSON stream the
/// parallel engine produces is emitted (attempt is always 1 — the
/// serial path never retries).
fn check_serial(
    selected: &[Experiment],
    shard_label: &str,
    events_path: Option<&std::path::Path>,
) -> Result<ShapesDoc, String> {
    use epic_harness::runner::pool::{unix_ms, EventKind, PoolEvent};
    use std::io::Write as _;
    let mut events_sink = match events_path {
        Some(p) => Some(std::io::BufWriter::new(std::fs::File::create(p).map_err(
            |e| format!("check: could not create events file {}: {e}", p.display()),
        )?)),
        None => None,
    };
    let mut emit = |ev: PoolEvent| {
        if let Some(w) = events_sink.as_mut() {
            let _ = writeln!(w, "{}", ev.to_json());
            let _ = w.flush();
        }
    };
    for e in selected {
        emit(PoolEvent {
            kind: EventKind::Queued,
            experiment: e.id.to_string(),
            tag: 0,
            attempt: 1,
            ts_ms: unix_ms(),
            duration_ms: None,
            outcome: None,
            verdict: None,
            will_retry: None,
        });
    }
    let mut records = Vec::new();
    for e in selected {
        println!("\n##### check {} #####", e.id);
        let oracle = oracle_for(&e.id)
            .unwrap_or_else(|| panic!("experiment '{}' has no registered oracle", e.id));
        emit(PoolEvent {
            kind: EventKind::Started,
            experiment: e.id.to_string(),
            tag: 0,
            attempt: 1,
            ts_ms: unix_ms(),
            duration_ms: None,
            outcome: None,
            verdict: None,
            will_retry: None,
        });
        let started = Instant::now();
        let result = e.execute();
        let duration_ms = started.elapsed().as_secs_f64() * 1e3;
        let report = evaluate(&oracle, &result);
        for o in &report.outcomes {
            let mark = if o.passed { "ok  " } else { "MISS" };
            println!("  [{mark}] ({}) {} — {}", o.tier.name(), o.label, o.detail);
        }
        emit(PoolEvent {
            kind: EventKind::Finished,
            experiment: e.id.to_string(),
            tag: 0,
            attempt: 1,
            ts_ms: unix_ms(),
            duration_ms: Some(duration_ms),
            outcome: Some("completed".to_string()),
            verdict: Some(report.verdict().to_string()),
            will_retry: None,
        });
        records.push(ShapeRecord::from_run(report, &result, duration_ms, 1));
    }
    Ok(ShapesDoc {
        records,
        runner: RunnerMeta {
            shard: shard_label.to_string(),
            jobs: 1,
        },
    })
}

/// Shared tail of `check` and `merge-shapes`: verdict table, SHAPES.json,
/// summary line, exit code.
fn finish_check(doc: &ShapesDoc) -> i32 {
    println!("\n{}", render_verdict_table(&doc.reports()));
    let path = doc.write_default();
    println!("wrote {}", path.display());
    let strict_failures = doc.strict_failures();
    println!(
        "check: {} experiments, {strict_failures} strict failures, {} advisory misses",
        doc.records.len(),
        doc.advisory_failures()
    );
    i32::from(strict_failures > 0)
}

/// The internal child mode: run exactly one experiment in-process and
/// write a single-record shapes document to `--result-json`. Exit code
/// 0/1 mirrors the oracle verdict; 2 is bad usage; 3 means the result
/// could not be written (the parent treats that as a crash).
fn run_one(rest: &[&str]) -> i32 {
    let (id, json_path) = match rest {
        [id, "--result-json", path] => (*id, *path),
        _ => {
            eprintln!("usage: epic-run --one <id> --result-json <path>");
            return 2;
        }
    };
    let Some(e) = experiment_by_name(id) else {
        unknown_experiment(id);
        return 2;
    };
    let oracle =
        oracle_for(id).unwrap_or_else(|| panic!("experiment '{id}' has no registered oracle"));
    let started = Instant::now();
    let result = e.execute();
    let duration_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = evaluate(&oracle, &result);
    for o in &report.outcomes {
        let mark = if o.passed { "ok  " } else { "MISS" };
        println!("  [{mark}] ({}) {} — {}", o.tier.name(), o.label, o.detail);
    }
    let strict_failures = report.strict_failures();
    let doc = ShapesDoc {
        records: vec![ShapeRecord::from_run(report, &result, duration_ms, 1)],
        runner: RunnerMeta {
            shard: "job".to_string(),
            jobs: 1,
        },
    };
    if let Err(err) = std::fs::write(json_path, doc.to_json()) {
        eprintln!("--one {id}: could not write {json_path}: {err}");
        return 3;
    }
    i32::from(strict_failures > 0)
}

/// `merge-shapes <files...>`: combine shard documents (v1 or v2) into
/// one verdict table + `results/SHAPES.json` with a single exit code.
fn run_merge(rest: &[&str]) -> i32 {
    if rest.is_empty() {
        eprintln!("usage: epic-run merge-shapes <shapes.json...>");
        return 2;
    }
    let mut docs = Vec::new();
    for path in rest {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("merge-shapes: cannot read {path}: {e}");
                return 2;
            }
        };
        match ShapesDoc::parse(&text) {
            Ok(doc) => {
                println!(
                    "merge-shapes: {path}: {} experiments (shard {}, jobs {})",
                    doc.records.len(),
                    doc.runner.shard,
                    doc.runner.jobs
                );
                docs.push(doc);
            }
            Err(e) => {
                eprintln!("merge-shapes: {path}: {e}");
                return 2;
            }
        }
    }
    match ShapesDoc::merge(docs) {
        Ok(merged) => finish_check(&merged),
        Err(e) => {
            eprintln!("{e}");
            2
        }
    }
}

/// `replay <hash> [--against <SHAPES.json>]`: find the registry entry
/// whose provenance hash matches, re-run it, and confirm the fresh run
/// stamps the same hash. With `--against`, also diff the deterministic
/// single-thread counters (`det/*` metrics) against the recorded row.
/// Exit 0 = identical, 1 = mismatch, 2 = hash not found / bad usage.
fn run_replay(rest: &[&str]) -> i32 {
    let (hash, against) = match rest {
        [hash] => (*hash, None),
        [hash, "--against", path] => (*hash, Some(*path)),
        _ => {
            eprintln!("usage: epic-run replay <provenance-hash> [--against <SHAPES.json>]");
            return 2;
        }
    };
    let registry = all_experiments();
    let Some(e) = registry
        .iter()
        .find(|e| scenario::provenance_hash(e) == hash)
    else {
        eprintln!(
            "replay: no registry entry reproduces provenance hash '{hash}'.\n\
             The hash covers the experiment id, runbook content, toolchain, git revision,\n\
             and EPIC_* overrides — recreate that environment (same checkout, same\n\
             EPIC_RUNBOOK file, same EPIC_* variables) and retry. `epic-run list --json`\n\
             shows the hash every current entry would stamp."
        );
        return 2;
    };
    println!(
        "replay: {} (origin {}, provenance {hash})",
        e.id,
        e.origin.label()
    );
    let result = e.execute();
    let fresh = result.provenance.clone().unwrap_or_default();
    if fresh != hash {
        eprintln!("replay: re-run stamped {fresh}, expected {hash} — environment drifted");
        return 1;
    }
    let det: Vec<(&String, &f64)> = result
        .metrics()
        .iter()
        .filter(|(k, _)| k.starts_with("det/"))
        .collect();
    for (k, v) in &det {
        println!("  {k} = {v}");
    }
    let Some(path) = against else {
        println!("replay: {} reproduced provenance {hash}", e.id);
        return 0;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("replay: cannot read {path}: {err}");
            return 2;
        }
    };
    let doc = match ShapesDoc::parse(&text) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("replay: {path}: {err}");
            return 2;
        }
    };
    let recorded = doc.records.iter().find_map(|r| {
        let v = epic_util::json::Json::parse(&r.result_json).ok()?;
        (v.get("provenance").and_then(epic_util::json::Json::as_str) == Some(hash)).then_some(v)
    });
    let Some(recorded) = recorded else {
        eprintln!("replay: no record in {path} carries provenance {hash}");
        return 2;
    };
    let mut mismatches = 0;
    for (k, v) in &det {
        let old = recorded
            .get("metrics")
            .and_then(|m| m.get(k))
            .and_then(epic_util::json::Json::as_f64);
        if old != Some(**v) {
            eprintln!("replay: {k}: recorded {old:?}, re-run {v}");
            mismatches += 1;
        }
    }
    if mismatches > 0 {
        eprintln!("replay: {mismatches} deterministic counter(s) diverged");
        return 1;
    }
    println!(
        "replay: {} matches {path} — {} det/* counters identical, same provenance",
        e.id,
        det.len()
    );
    0
}

/// `bench-diff <baseline.json> <current.json> [--max-regress P%]`.
fn run_bench_diff(rest: &[&str]) -> i32 {
    let (base_path, cur_path, max_regress) = match rest {
        [b, c] => (*b, *c, 0.15),
        [b, c, "--max-regress", p] => match benchdiff::parse_max_regress(p) {
            Ok(frac) => (*b, *c, frac),
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        },
        _ => {
            eprintln!(
                "usage: epic-run bench-diff <baseline.json> <current.json> [--max-regress 15%]"
            );
            return 2;
        }
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| format!("bench-diff: cannot read {path}: {e}"))
    };
    let result = read(base_path)
        .and_then(|base| read(cur_path).map(|cur| (base, cur)))
        .and_then(|(base, cur)| benchdiff::diff(&base, &cur, max_regress));
    let d = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    println!("{}", d.render(max_regress));
    let regressions = d.regressions();
    if regressions.is_empty() {
        println!(
            "bench-diff: {} metrics compared, no regressions ({base_path} -> {cur_path})",
            d.rows.len()
        );
        0
    } else {
        eprintln!("bench-diff: {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        1
    }
}
