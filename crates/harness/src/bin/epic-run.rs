//! CLI entry point: run paper experiments by id, or check them against
//! the paper-shape oracles.
//!
//! ```text
//! epic-run list              # show all experiment ids
//! epic-run fig11a_experiment1
//! epic-run all               # the full evaluation
//! epic-run check             # run everything + evaluate every oracle
//! epic-run check table3_allocators fig11b_experiment2
//! EPIC_MILLIS=5000 EPIC_TRIALS=3 epic-run check all      # paper-scale
//! ```
//!
//! `check` prints a PASS/FAIL/ADVISORY verdict table, writes
//! `results/SHAPES.json`, and exits non-zero iff a *strict* assertion
//! failed (advisory misses are reported but never fatal — see
//! DESIGN.md §6).

use epic_harness::experiments::{all_experiments, run_by_name};
use epic_harness::oracle::{evaluate, oracle_for, render_verdict_table, write_shapes_json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("experiments (pass an id, 'all', or 'check [id...|all]'):");
            for (id, _) in all_experiments() {
                println!("  {id}");
            }
        }
        Some("all") => {
            for (id, f) in all_experiments() {
                println!("\n##### {id} #####");
                f();
            }
        }
        Some("check") => {
            let rest: Vec<&str> = args[1..].iter().map(String::as_str).collect();
            std::process::exit(run_check(&rest));
        }
        Some(name) => {
            if run_by_name(name).is_none() {
                eprintln!("unknown experiment '{name}'; try 'list'");
                std::process::exit(2);
            }
        }
    }
}

/// Runs the selected experiments, evaluates their oracles, prints the
/// verdict table, writes `SHAPES.json`. Returns the process exit code:
/// 0 (all strict assertions hold), 1 (strict failure), 2 (bad id).
fn run_check(ids: &[&str]) -> i32 {
    let registry = all_experiments();
    let selected: Vec<(&str, epic_harness::experiments::ExperimentFn)> =
        if ids.is_empty() || ids.contains(&"all") {
            registry
        } else {
            let mut picked = Vec::new();
            for want in ids {
                match registry.iter().find(|(id, _)| id == want) {
                    Some(&(id, f)) => picked.push((id, f)),
                    None => {
                        eprintln!("unknown experiment '{want}'; try 'list'");
                        return 2;
                    }
                }
            }
            picked
        };

    let mut runs = Vec::new();
    for (id, f) in selected {
        println!("\n##### check {id} #####");
        let oracle =
            oracle_for(id).unwrap_or_else(|| panic!("experiment '{id}' has no registered oracle"));
        let result = f();
        let report = evaluate(&oracle, &result);
        for o in &report.outcomes {
            let mark = if o.passed { "ok  " } else { "MISS" };
            println!("  [{mark}] ({}) {} — {}", o.tier.name(), o.label, o.detail);
        }
        runs.push((report, result));
    }

    let reports: Vec<_> = runs.iter().map(|(r, _)| r.clone()).collect();
    println!("\n{}", render_verdict_table(&reports));
    let path = write_shapes_json(&runs);
    println!("wrote {}", path.display());

    let strict_failures: usize = reports.iter().map(|r| r.strict_failures()).sum();
    let advisory_failures: usize = reports.iter().map(|r| r.advisory_failures()).sum();
    println!(
        "check: {} experiments, {strict_failures} strict failures, {advisory_failures} advisory \
         misses",
        reports.len()
    );
    i32::from(strict_failures > 0)
}
