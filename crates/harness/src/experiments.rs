//! The experiment registry: one function per paper table/figure (plus the
//! ablations DESIGN.md §5 calls out). Each function prints the same
//! rows/series the paper reports, writes CSV/SVG artifacts under
//! [`crate::results_dir`], and returns a structured [`ExperimentResult`]
//! (named scalar metrics + named series) that the oracle layer
//! ([`crate::oracle`]) checks against the paper's shapes.
//!
//! Metric-name conventions (stable keys — oracles depend on them):
//! `mops/...` throughputs in Mops/s, `pct_*` percentages,
//! `af_ratio/<x>` AF-over-ORIG throughput ratios, `rows/<table id>`
//! grid-completeness counts from [`Table::emit_into`],
//! `timeline/<label>/batchfree_*` captured render statistics, and
//! `garbage/<label>/*` per-epoch garbage-series statistics.

use crate::config::{ExperimentScale, WorkloadCfg};
use crate::report::{fmt_count, fmt_mops, results_dir, ExperimentResult, Table};
use crate::workload::{run_trial, run_trials};

use epic_alloc::{AllocatorKind, MachinePreset};
use epic_ds::TreeKind;
use epic_smr::{FreeMode, SmrKind};
use epic_timeline::{
    event_stats, render_ascii, render_svg, visible_events, EventKind, RenderOptions,
};

/// The Experiment-1 field (Fig. 11a / Fig. 14): the paper's ten schemes
/// plus the two headline AF variants plus the leaky baseline.
fn experiment1_field() -> Vec<(SmrKind, FreeMode)> {
    let mut field = vec![
        (SmrKind::TokenPeriodic, FreeMode::amortized()),
        (SmrKind::Debra, FreeMode::amortized()),
    ];
    for kind in SmrKind::EXPERIMENT2 {
        field.push((kind, FreeMode::Batch));
    }
    field.push((SmrKind::None, FreeMode::Batch));
    field
}

/// Writes the SVG/CSV artifacts and the terminal preview for a recorded
/// timeline, and captures what the render *shows* (batch-free box count
/// and durations) as `timeline/<label>/batchfree_*` metrics. Returns
/// those batch-free stats so callers needing them don't rescan the
/// recorder (`None` when no timeline was recorded).
fn save_timeline(
    result: &crate::TrialResult,
    out: &mut ExperimentResult,
    id: &str,
    label: &str,
    min_duration_ns: u64,
) -> Option<epic_timeline::EventStats> {
    let rec = result.recorder.as_ref()?;
    let opts = RenderOptions {
        title: format!("{id} {label} ({} threads)", result.scheme),
        min_duration_ns,
        ..Default::default()
    };
    let dir = results_dir();
    let _ = std::fs::write(
        dir.join(format!("{id}_{label}.svg")),
        render_svg(rec, &opts),
    );
    let _ = rec.write_csv(&dir.join(format!("{id}_{label}.csv")));
    let bf = event_stats(rec, EventKind::BatchFree, min_duration_ns);
    out.metric(format!("timeline/{label}/batchfree_count"), bf.count as f64);
    out.metric(
        format!("timeline/{label}/batchfree_total_ns"),
        bf.total_ns as f64,
    );
    out.metric(
        format!("timeline/{label}/batchfree_mean_ns"),
        bf.mean_ns as f64,
    );
    out.metric(
        format!("timeline/{label}/batchfree_max_ns"),
        bf.max_ns as f64,
    );
    // Terminal preview: a compact ASCII cut.
    let ascii = render_ascii(
        rec,
        &RenderOptions {
            width: 100,
            max_rows: 8,
            min_duration_ns,
            ..Default::default()
        },
    );
    println!("timeline {id}/{label}:\n{ascii}");
    Some(bf)
}

/// Writes the garbage-per-epoch CSV/sparkline and captures the series
/// shape (`garbage/<label>/{epochs,mean,max,peaks}` + the y values).
fn save_garbage_series(
    result: &crate::TrialResult,
    out: &mut ExperimentResult,
    id: &str,
    label: &str,
) {
    let Some(series) = &result.garbage else {
        return;
    };
    let _ = series.write_csv(&results_dir().join(format!("{id}_{label}_garbage.csv")));
    println!(
        "garbage/epoch {id}/{label}: {} epochs, mean {:.0}, max {:.0}, peaks {}  {}",
        series.len(),
        series.mean_y(),
        series.max_y(),
        series.peak_count(),
        series.sparkline(60)
    );
    out.metric(format!("garbage/{label}/epochs"), series.len() as f64);
    out.metric(format!("garbage/{label}/mean"), series.mean_y());
    out.metric(format!("garbage/{label}/max"), series.max_y());
    out.metric(format!("garbage/{label}/peaks"), series.peak_count() as f64);
    out.set_series(format!("garbage/{label}"), series.sorted_ys());
}

/// Fig. 1a–d: throughput and peak memory for OCCtree vs ABtree, DEBRA vs
/// leaking, across the thread sweep (jemalloc model).
pub fn fig1_scaling() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig1_scaling");
    let mut t = Table::new(
        "fig1_scaling",
        "Fig.1: OCCtree vs ABtree, DEBRA vs leak — throughput + peak memory (Je)",
        &["tree", "smr", "threads", "Mops/s", "min", "max", "peak MiB"],
    );
    for tree in [TreeKind::Occ, TreeKind::Ab] {
        for smr in [SmrKind::Debra, SmrKind::None] {
            for &n in &scale.sweep {
                let cfg = WorkloadCfg::new(tree, smr, n);
                let s = run_trials(&cfg, scale.trials);
                let key = format!("{}/{}", tree.name(), s.scheme);
                out.push(format!("mops_by_threads/{key}"), s.throughput.mean() / 1e6);
                out.push(format!("peak_mib_by_threads/{key}"), s.peak_mib.mean());
                if n == scale.max_threads {
                    out.metric(format!("mops/{key}/max_t"), s.throughput.mean() / 1e6);
                    out.metric(format!("peak_mib/{key}/max_t"), s.peak_mib.mean());
                    out.metric(format!("rel_ci95/{key}"), s.throughput_rel_ci95());
                }
                t.row(vec![
                    tree.name().into(),
                    s.scheme.clone(),
                    n.to_string(),
                    fmt_mops(s.throughput.mean()),
                    fmt_mops(s.throughput.min()),
                    fmt_mops(s.throughput.max()),
                    format!("{:.1}", s.peak_mib.mean()),
                ]);
            }
        }
    }
    t.emit_into(&mut out);
    println!(
        "paper shape: ABtree+debra flattens at high thread counts while OCCtree keeps scaling; \
         leaking closes the gap but explodes ABtree memory.\n"
    );
    out
}

/// Table 1: jemalloc free overhead (ops/s, epochs, %free, %flush, %lock)
/// as thread count grows. ABtree + DEBRA batch.
pub fn table1_je_overhead() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("table1_je_overhead");
    let mut t = Table::new(
        "table1_je_overhead",
        "Table 1: JEmalloc free overhead vs threads (ABtree, DEBRA batch)",
        &["threads", "ops/s", "epochs", "% free", "% flush", "% lock"],
    );
    let mut points = vec![1, scale.mid_threads, scale.max_threads];
    points.dedup();
    let last = *points.last().unwrap();
    for n in points {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        let r = run_trial(&cfg);
        out.push("pct_free_by_threads", r.pct_free(n));
        out.push("pct_flush_by_threads", r.pct_flush(n));
        out.push("pct_lock_by_threads", r.pct_lock(n));
        out.push("epochs_by_threads", r.smr.epochs as f64);
        let label = if n == 1 {
            Some("min_t")
        } else if n == last {
            Some("max_t")
        } else {
            None
        };
        if let Some(label) = label {
            out.metric(format!("pct_free/{label}"), r.pct_free(n));
            out.metric(format!("pct_flush/{label}"), r.pct_flush(n));
            out.metric(format!("pct_lock/{label}"), r.pct_lock(n));
            out.metric(format!("epochs/{label}"), r.smr.epochs as f64);
            out.metric(format!("mops/{label}"), r.throughput / 1e6);
        }
        t.row(vec![
            n.to_string(),
            fmt_mops(r.throughput),
            r.smr.epochs.to_string(),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_flush(n)),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "paper shape: %free/%flush/%lock all rise steeply with threads while epoch count \
         collapses (48t: 11.5/9.9/4.9 -> 192t: 59.5/58.8/39.8).\n"
    );
    out
}

/// Fig. 2: timeline graphs of batch frees at moderate vs maximum thread
/// counts.
pub fn fig2_timeline_batch() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig2_timeline_batch");
    for (label, n) in [("mid", scale.mid_threads), ("max", scale.max_threads)] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_timeline();
        let r = run_trial(&cfg);
        let bf = save_timeline(&r, &mut out, "fig2", label, 0).unwrap_or_default();
        println!(
            "fig2/{label}: {n} threads, {} batch-free events, mean {:.2} ms, max {:.2} ms",
            bf.count,
            bf.mean_ns as f64 / 1e6,
            bf.max_ns as f64 / 1e6
        );
    }
    println!("paper shape: reclamation events are disproportionately longer at the higher thread count.\n");
    out
}

/// Fig. 3: timelines of *individual free calls*, batch vs amortized.
pub fn fig3_timeline_af() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig3_timeline_af");
    let n = scale.max_threads;
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_free_calls(10_000);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().unwrap();
        let long_calls = visible_events(rec, EventKind::FreeCall, 100_000);
        out.metric(format!("visible/{label}"), long_calls.len() as f64);
        out.metric(format!("free_p50_ns/{label}"), r.smr.free_p50_ns as f64);
        out.metric(format!("free_p99_ns/{label}"), r.smr.free_p99_ns as f64);
        out.metric(format!("free_max_ns/{label}"), r.smr.free_max_ns as f64);
        println!(
            "fig3/{label}: {} free calls ≥ 0.1 ms recorded (scheme {}); latency p50 {} ns, \
             p99 {} ns, max {:.2} ms",
            long_calls.len(),
            r.scheme,
            r.smr.free_p50_ns,
            r.smr.free_p99_ns,
            r.smr.free_max_ns as f64 / 1e6,
        );
        save_timeline(&r, &mut out, "fig3", label, 10_000);
    }
    println!(
        "paper shape: batch free shows many more high-latency free calls than amortized free.\n"
    );
    out
}

/// Table 2: amortized vs batch free — ops/s, objects freed, %free, %flush,
/// %lock at max threads (ABtree, DEBRA, Je).
pub fn table2_af_counters() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("table2_af_counters");
    let n = scale.max_threads;
    let mut t = Table::new(
        "table2_af_counters",
        "Table 2: amortized vs batch free (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "ops/s",
            "freed",
            "% free",
            "% flush",
            "% lock",
            "pipe allocs",
        ],
    );
    for (label, key, amortize) in [("JE batch", "batch", false), ("JE amort.", "af", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        out.metric(format!("mops/{key}"), r.throughput / 1e6);
        out.metric(format!("freed/{key}"), r.smr.freed as f64);
        out.metric(format!("pct_free/{key}"), r.pct_free(n));
        out.metric(format!("pct_flush/{key}"), r.pct_flush(n));
        out.metric(format!("pct_lock/{key}"), r.pct_lock(n));
        out.metric(
            format!("pipe_allocs/{key}"),
            r.smr.retire_path_allocs as f64,
        );
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_flush(n)),
            format!("{:.1}", r.pct_lock(n)),
            // Heap allocations the retire pipeline performed on itself —
            // measurement overhead, 0 in steady state by design.
            fmt_count(r.smr.retire_path_allocs),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "paper shape: amortized frees MORE objects in LESS time (43.4M->111.3M ops/s, \
         %lock 39.8->5.5).\n"
    );
    out
}

/// Fig. 4: garbage per epoch, batch vs amortized (smoothing effect).
pub fn fig4_garbage() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig4_garbage");
    let n = scale.max_threads;
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_garbage_series();
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        save_garbage_series(&r, &mut out, "fig4", label);
    }
    println!(
        "paper shape: amortized freeing has far fewer peaks with only slightly higher mean garbage.\n"
    );
    out
}

/// Table 3: the three allocator models × batch/amortized (DEBRA, ABtree).
pub fn table3_allocators() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("table3_allocators");
    let n = scale.max_threads;
    let mut t = Table::new(
        "table3_allocators",
        "Table 3: JE/TC/MI x batch/amortized (ABtree, DEBRA, max threads)",
        &["approach", "ops/s", "freed", "% free", "remote frees"],
    );
    for alloc in AllocatorKind::ALL {
        let mut batch_mops = 0.0f64;
        for (mode_label, key, amortize) in [("batch", "batch", false), ("amort.", "af", true)] {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_alloc(alloc);
            if amortize {
                cfg = cfg.amortized();
            }
            let r = run_trial(&cfg);
            let mops = r.throughput / 1e6;
            out.metric(format!("mops/{}/{key}", alloc.name()), mops);
            out.metric(format!("freed/{}/{key}", alloc.name()), r.smr.freed as f64);
            out.metric(format!("pct_free/{}/{key}", alloc.name()), r.pct_free(n));
            if amortize {
                out.metric(
                    format!("af_ratio/{}", alloc.name()),
                    mops / batch_mops.max(1e-9),
                );
            } else {
                batch_mops = mops;
            }
            t.row(vec![
                format!("{} {}", alloc.name().to_uppercase(), mode_label),
                fmt_mops(r.throughput),
                fmt_count(r.smr.freed),
                format!("{:.1}", r.pct_free(n)),
                fmt_count(r.alloc.totals.remote_freed),
            ]);
        }
    }
    t.emit_into(&mut out);
    println!(
        "paper shape: AF speeds up JE (2.6x) and TC (3.25x) but NOT MI (slightly worse) — \
         per-page free lists sidestep the RBF problem.\n"
    );
    out
}

fn token_figure(
    id: &str,
    kind: SmrKind,
    mode: FreeMode,
    with_perf_table: bool,
) -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new(id);
    let n = scale.max_threads;
    // Timeline + garbage at max threads.
    let cfg = WorkloadCfg::new(TreeKind::Ab, kind, n)
        .with_mode(mode)
        .with_timeline()
        .with_garbage_series();
    let r = run_trial(&cfg);
    out.metric("mops", r.throughput / 1e6);
    out.metric("freed", r.smr.freed as f64);
    out.metric("retired", r.smr.retired as f64);
    out.metric("epochs", r.smr.epochs as f64);
    out.metric("peak_garbage", r.smr.peak_garbage as f64);
    out.metric("final_garbage", r.smr.garbage as f64);
    println!(
        "{id}: scheme {} -> {:.1}M ops/s, freed {}, garbage peak {}",
        r.scheme,
        r.throughput / 1e6,
        fmt_count(r.smr.freed),
        fmt_count(r.smr.peak_garbage)
    );
    save_timeline(&r, &mut out, id, "timeline", 0);
    save_garbage_series(&r, &mut out, id, "series");

    if with_perf_table {
        let mut t = Table::new(
            &format!("{id}_perf"),
            "performance + peak memory across threads",
            &["threads", "Mops/s", "peak MiB"],
        );
        for &threads in &scale.sweep {
            let cfg = WorkloadCfg::new(TreeKind::Ab, kind, threads).with_mode(mode);
            let s = run_trials(&cfg, scale.trials);
            out.push("mops_by_threads", s.throughput.mean() / 1e6);
            out.push("peak_mib_by_threads", s.peak_mib.mean());
            if threads == scale.max_threads {
                out.metric("mops/max_t", s.throughput.mean() / 1e6);
                out.metric("peak_mib/max_t", s.peak_mib.mean());
            }
            t.row(vec![
                threads.to_string(),
                fmt_mops(s.throughput.mean()),
                format!("{:.1}", s.peak_mib.mean()),
            ]);
        }
        t.emit_into(&mut out);
    }
    out
}

/// Fig. 5 + Fig. 6: Naive Token-EBR — perf/memory sweep, timeline, garbage
/// pile-up.
pub fn fig5_6_naive_token() -> ExperimentResult {
    let out = token_figure(
        "fig5_6_naive_token",
        SmrKind::TokenNaive,
        FreeMode::Batch,
        true,
    );
    println!("paper shape: high apparent throughput but terrible reclamation (garbage pile-up; serialized frees).\n");
    out
}

/// Fig. 7: Pass-first Token-EBR.
pub fn fig7_passfirst() -> ExperimentResult {
    let out = token_figure(
        "fig7_passfirst",
        SmrKind::TokenPassFirst,
        FreeMode::Batch,
        false,
    );
    println!("paper shape: concurrent freeing now, but batch lengths still grow over time.\n");
    out
}

/// Fig. 8: Periodic Token-EBR.
pub fn fig8_periodic() -> ExperimentResult {
    let out = token_figure(
        "fig8_periodic",
        SmrKind::TokenPeriodic,
        FreeMode::Batch,
        false,
    );
    println!("paper shape: lower peak memory than pass-first, but long free calls still stall the token.\n");
    out
}

/// Fig. 9 + Fig. 10: Amortized-free Token-EBR.
pub fn fig9_10_token_af() -> ExperimentResult {
    let out = token_figure(
        "fig9_10_token_af",
        SmrKind::TokenPeriodic,
        FreeMode::amortized(),
        true,
    );
    println!("paper shape: garbage pile-up gone, epoch count way up, best perf + memory of the variants.\n");
    out
}

/// Table 4: the four Token-EBR variants (ops/s, %free, freed).
pub fn table4_token_variants() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("table4_token_variants");
    let n = scale.max_threads;
    let mut t = Table::new(
        "table4_token_variants",
        "Table 4: Token-EBR variants (ABtree, Je, max threads)",
        &["algorithm", "ops/s", "% free", "freed", "epochs"],
    );
    let variants: [(&str, &str, SmrKind, FreeMode); 4] = [
        ("Naive", "naive", SmrKind::TokenNaive, FreeMode::Batch),
        (
            "Pass-first",
            "passfirst",
            SmrKind::TokenPassFirst,
            FreeMode::Batch,
        ),
        (
            "Periodic",
            "periodic",
            SmrKind::TokenPeriodic,
            FreeMode::Batch,
        ),
        (
            "Amortized",
            "amortized",
            SmrKind::TokenPeriodic,
            FreeMode::amortized(),
        ),
    ];
    for (label, key, kind, mode) in variants {
        let cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
        let r = run_trial(&cfg);
        out.metric(format!("mops/{key}"), r.throughput / 1e6);
        out.metric(format!("pct_free/{key}"), r.pct_free(n));
        out.metric(format!("freed/{key}"), r.smr.freed as f64);
        out.metric(format!("retired/{key}"), r.smr.retired as f64);
        out.metric(format!("epochs/{key}"), r.smr.epochs as f64);
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_free(n)),
            fmt_count(r.smr.freed),
            r.smr.epochs.to_string(),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "paper shape: Naive frees almost nothing; Pass-first/Periodic free lots but slowly; \
         Amortized frees the most AND is fastest (73.7/52.4/54.4/123.7 Mops in the paper).\n"
    );
    out
}

fn experiment1_table(id: &str, title: &str, tree: TreeKind) -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new(id);
    let mut t = Table::new(id, title, &["scheme", "threads", "Mops/s", "min", "max"]);
    for (kind, mode) in experiment1_field() {
        for &n in &scale.sweep {
            let cfg = WorkloadCfg::new(tree, kind, n).with_mode(mode);
            let s = run_trials(&cfg, scale.trials);
            out.push(
                format!("mops_by_threads/{}", s.scheme),
                s.throughput.mean() / 1e6,
            );
            if n == scale.max_threads {
                out.metric(
                    format!("mops/{}/max_t", s.scheme),
                    s.throughput.mean() / 1e6,
                );
                out.metric(format!("rel_ci95/{}", s.scheme), s.throughput_rel_ci95());
            }
            t.row(vec![
                s.scheme.clone(),
                n.to_string(),
                fmt_mops(s.throughput.mean()),
                fmt_mops(s.throughput.min()),
                fmt_mops(s.throughput.max()),
            ]);
        }
    }
    t.emit_into(&mut out);
    out
}

/// Fig. 11a (Experiment 1): token_af and debra_af vs the whole field
/// across threads, ABtree.
pub fn fig11a_experiment1() -> ExperimentResult {
    let out = experiment1_table(
        "fig11a_experiment1",
        "Fig.11a/Exp.1: token_af + debra_af vs the field (ABtree, Je)",
        TreeKind::Ab,
    );
    println!(
        "paper shape: token_af on top (~1.7x next best nbr+; 7-9x hp/he) and both AF schemes \
         beat the leaky baseline.\n"
    );
    out
}

fn orig_vs_af_table(id: &str, title: &str, tree: TreeKind, sweep: bool) -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new(id);
    let threads: Vec<usize> = if sweep {
        scale.sweep.clone()
    } else {
        vec![scale.max_threads]
    };
    let last = *threads.last().unwrap();
    let mut t = Table::new(
        id,
        title,
        &["scheme", "threads", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"],
    );
    for kind in SmrKind::EXPERIMENT2 {
        for &n in &threads {
            let orig = run_trials(&WorkloadCfg::new(tree, kind, n), scale.trials);
            let af = run_trials(&WorkloadCfg::new(tree, kind, n).amortized(), scale.trials);
            let ratio = af.throughput.mean() / orig.throughput.mean().max(1.0);
            let name = kind.base_name();
            if sweep {
                out.push(
                    format!("orig_by_threads/{name}"),
                    orig.throughput.mean() / 1e6,
                );
                out.push(format!("af_by_threads/{name}"), af.throughput.mean() / 1e6);
                out.push(format!("af_ratio_by_threads/{name}"), ratio);
            }
            if n == last {
                out.metric(format!("orig_mops/{name}"), orig.throughput.mean() / 1e6);
                out.metric(format!("af_mops/{name}"), af.throughput.mean() / 1e6);
                out.metric(format!("af_ratio/{name}"), ratio);
                out.metric(
                    format!("rel_ci95/{name}"),
                    orig.throughput_rel_ci95().max(af.throughput_rel_ci95()),
                );
                out.push("af_ratio_field", ratio);
            }
            t.row(vec![
                name.into(),
                n.to_string(),
                fmt_mops(orig.throughput.mean()),
                fmt_mops(af.throughput.mean()),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    t.emit_into(&mut out);
    out
}

/// Fig. 11b (Experiment 2): ORIG vs AF for all ten schemes at max threads.
pub fn fig11b_experiment2() -> ExperimentResult {
    let out = orig_vs_af_table(
        "fig11b_experiment2",
        "Fig.11b/Exp.2: ORIG vs AF per scheme (ABtree, Je, max threads)",
        TreeKind::Ab,
        false,
    );
    println!(
        "paper shape: AF wins for 9/10 schemes (up to 2.3x); he does not improve, hp/wfe only \
         ~1.2x (their per-read sync dominates).\n"
    );
    out
}

/// Fig. 12 (Appendix C): ORIG vs AF across the thread sweep, ABtree.
pub fn fig12_orig_vs_af_sweep() -> ExperimentResult {
    orig_vs_af_table(
        "fig12_orig_vs_af_sweep",
        "Fig.12/App.C: ORIG vs AF across threads (ABtree, Je)",
        TreeKind::Ab,
        true,
    )
}

/// Fig. 13 (Appendix D): ORIG vs AF across the thread sweep, DGT tree
/// (deletes free TWO nodes, so AF drains two per op — the §7 tuning).
pub fn fig13_dgt_orig_vs_af() -> ExperimentResult {
    orig_vs_af_table(
        "fig13_dgt_orig_vs_af",
        "Fig.13/App.D: ORIG vs AF across threads (DGT tree, Je)",
        TreeKind::Dgt,
        true,
    )
}

/// Fig. 14 (Appendix D): Experiment 1 on the DGT tree.
pub fn fig14_dgt_experiment1() -> ExperimentResult {
    experiment1_table(
        "fig14_dgt_experiment1",
        "Fig.14/App.D: token_af vs the field (DGT tree, Je)",
        TreeKind::Dgt,
    )
}

/// Fig. 15/16 (Appendix E): machine presets — re-run the headline
/// comparison with the cost-model parameters of the paper's other
/// testbeds.
pub fn fig15_16_machine_presets() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig15_16_machine_presets");
    let n = scale.max_threads;
    let mut t = Table::new(
        "fig15_16_machine_presets",
        "Fig.15/16/App.E: machine presets (ABtree, max threads)",
        &["machine", "scheme", "Mops/s", "% lock"],
    );
    for preset in [
        MachinePreset::Intel4x192,
        MachinePreset::Intel4x144,
        MachinePreset::Amd2x256,
    ] {
        for (kind, mode) in [
            (SmrKind::TokenPeriodic, FreeMode::amortized()),
            (SmrKind::Debra, FreeMode::amortized()),
            (SmrKind::Debra, FreeMode::Batch),
            (SmrKind::None, FreeMode::Batch),
        ] {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
            cfg.cost = preset.cost_model();
            let r = run_trial(&cfg);
            out.metric(
                format!("mops/{}/{}", preset.name(), r.scheme),
                r.throughput / 1e6,
            );
            out.metric(
                format!("pct_lock/{}/{}", preset.name(), r.scheme),
                r.pct_lock(n),
            );
            t.row(vec![
                preset.name().into(),
                r.scheme.clone(),
                fmt_mops(r.throughput),
                format!("{:.1}", r.pct_lock(n)),
            ]);
        }
    }
    t.emit_into(&mut out);
    println!("paper shape: the AF ranking is machine-independent; only magnitudes shift.\n");
    out
}

/// Fig. 17 (Appendix F): the visible (≥ 0.1 ms) free calls, batch vs AF.
pub fn fig17_visible_frees() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig17_visible_frees");
    let n = scale.max_threads;
    let mut t = Table::new(
        "fig17_visible_frees",
        "Fig.17/App.F: free calls >= 0.1ms (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "free calls >=0.1ms",
            "longest (ms)",
            "total visible (ms)",
            "p50 ns",
            "p99 ns",
        ],
    );
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_free_calls(10_000);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().unwrap();
        let visible = visible_events(rec, EventKind::FreeCall, 100_000);
        let longest = visible.iter().map(|e| e.duration_ns()).max().unwrap_or(0);
        let total: u64 = visible.iter().map(|e| e.duration_ns()).sum();
        out.metric(format!("visible/{label}"), visible.len() as f64);
        out.metric(
            format!("visible_frac/{label}"),
            visible.len() as f64 / (r.smr.freed.max(1)) as f64,
        );
        out.metric(format!("longest_ms/{label}"), longest as f64 / 1e6);
        out.metric(format!("total_visible_ms/{label}"), total as f64 / 1e6);
        out.metric(format!("free_p50_ns/{label}"), r.smr.free_p50_ns as f64);
        out.metric(format!("free_p99_ns/{label}"), r.smr.free_p99_ns as f64);
        t.row(vec![
            label.into(),
            visible.len().to_string(),
            format!("{:.2}", longest as f64 / 1e6),
            format!("{:.2}", total as f64 / 1e6),
            r.smr.free_p50_ns.to_string(),
            r.smr.free_p99_ns.to_string(),
        ]);
        save_timeline(&r, &mut out, "fig17", label, 100_000);
    }
    t.emit_into(&mut out);
    println!("paper shape: only a tiny fraction of calls are visible, and far fewer under AF.\n");
    out
}

/// Figs. 18–29 (Appendix G): DEBRA timelines for each allocator model at
/// several thread counts.
pub fn fig18_29_allocator_timelines() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("fig18_29_allocator_timelines");
    let mut points = vec![1, 2, scale.mid_threads, scale.max_threads];
    points.dedup();
    let last = *points.last().unwrap();
    for alloc in AllocatorKind::ALL {
        for &n in &points {
            let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n)
                .with_alloc(alloc)
                .with_timeline()
                .with_garbage_series();
            let r = run_trial(&cfg);
            let label = format!("{}_{}t", alloc.name(), n);
            let bf = save_timeline(&r, &mut out, "fig18_29", &label, 0).unwrap_or_default();
            out.push(
                format!("batchfree_ns_by_threads/{}", alloc.name()),
                bf.total_ns as f64,
            );
            if n == 1 {
                out.metric(
                    format!("batchfree_ns/{}/min_t", alloc.name()),
                    bf.total_ns as f64,
                );
            }
            if n == last {
                out.metric(
                    format!("batchfree_ns/{}/max_t", alloc.name()),
                    bf.total_ns as f64,
                );
                out.metric(
                    format!("batchfree_max_ns/{}/max_t", alloc.name()),
                    bf.max_ns as f64,
                );
            }
            save_garbage_series(&r, &mut out, "fig18_29", &label);
        }
    }
    out.metric("thread_points", points.len() as f64);
    println!("paper shape: je/tc timelines fill with long batch frees as threads grow; mi stays clean.\n");
    out
}

/// Ablation: AF drain rate (objects freed per operation) on the DGT tree,
/// which frees 2 nodes per delete — §7 predicts k=2 is the sweet spot.
pub fn ablation_af_drain_rate() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_af_drain_rate");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_af_drain_rate",
        "Ablation: AF objects-freed-per-op k (DGT tree, token, Je, max threads)",
        &["k", "Mops/s", "final garbage", "peak garbage"],
    );
    for k in [1usize, 2, 4, 8] {
        let cfg = WorkloadCfg::new(TreeKind::Dgt, SmrKind::TokenPeriodic, n)
            .with_mode(FreeMode::Amortized { per_op: k });
        let r = run_trial(&cfg);
        out.metric(format!("mops/k{k}"), r.throughput / 1e6);
        out.metric(format!("final_garbage/k{k}"), r.smr.garbage as f64);
        out.metric(format!("peak_garbage/k{k}"), r.smr.peak_garbage as f64);
        out.push("final_garbage_by_k", r.smr.garbage as f64);
        t.row(vec![
            k.to_string(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.garbage),
            fmt_count(r.smr.peak_garbage),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: k=1 lets garbage grow (2 frees/delete needed); k>=2 bounds it.\n");
    out
}

/// Ablation: thread-cache capacity in the Je model.
pub fn ablation_tcache_cap() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_tcache_cap");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_tcache_cap",
        "Ablation: Je thread-cache capacity (ABtree, DEBRA batch, max threads)",
        &["tcache cap", "Mops/s", "flushes", "% lock"],
    );
    for cap in [50usize, 200, 800] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        cfg.tcache_cap = Some(cap);
        let r = run_trial(&cfg);
        out.metric(format!("mops/cap{cap}"), r.throughput / 1e6);
        out.metric(format!("flushes/cap{cap}"), r.alloc.totals.flushes as f64);
        out.metric(format!("pct_lock/cap{cap}"), r.pct_lock(n));
        out.push("flushes_by_cap", r.alloc.totals.flushes as f64);
        t.row(vec![
            cap.to_string(),
            fmt_mops(r.throughput),
            fmt_count(r.alloc.totals.flushes),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: bigger caches absorb more of each batch -> fewer flushes.\n");
    out
}

/// Ablation: arena count (the jemalloc 4×ncpu choice).
pub fn ablation_arena_count() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_arena_count");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_arena_count",
        "Ablation: Je arenas-per-cpu (ABtree, DEBRA batch, max threads)",
        &["arenas/cpu", "arenas", "Mops/s", "% lock"],
    );
    for per_cpu in [1usize, 4, 16] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        cfg.cost.arenas_per_cpu = per_cpu;
        let arenas = cfg.cost.num_arenas();
        let r = run_trial(&cfg);
        out.metric(format!("mops/per_cpu{per_cpu}"), r.throughput / 1e6);
        out.metric(format!("pct_lock/per_cpu{per_cpu}"), r.pct_lock(n));
        out.push("pct_lock_by_arenas", r.pct_lock(n));
        t.row(vec![
            per_cpu.to_string(),
            arenas.to_string(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: fewer arenas -> more flush collisions -> more lock waiting.\n");
    out
}

/// Ablation: Periodic Token-EBR's check interval (paper: 100).
pub fn ablation_token_check_period() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_token_check_period");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_token_check_period",
        "Ablation: token check interval (ABtree, token batch, max threads)",
        &["check every", "Mops/s", "epochs", "peak garbage"],
    );
    for k in [10usize, 100, 1000] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::TokenPeriodic, n);
        cfg.token_check_every = k;
        let r = run_trial(&cfg);
        out.metric(format!("mops/every{k}"), r.throughput / 1e6);
        out.metric(format!("epochs/every{k}"), r.smr.epochs as f64);
        out.metric(format!("peak_garbage/every{k}"), r.smr.peak_garbage as f64);
        out.push("epochs_by_period", r.smr.epochs as f64);
        t.row(vec![
            k.to_string(),
            fmt_mops(r.throughput),
            r.smr.epochs.to_string(),
            fmt_count(r.smr.peak_garbage),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: smaller intervals keep the token moving through long frees.\n");
    out
}

/// Ablation: limbo-bag capacity (paper fixes 32 K for Experiment 2).
pub fn ablation_bag_cap() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_bag_cap");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_bag_cap",
        "Ablation: limbo bag capacity (ABtree, nbr+, Je, max threads)",
        &["bag cap", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"],
    );
    for cap in [512usize, 2048, 8192, 32_768] {
        let mut orig_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::NbrPlus, n);
        orig_cfg.bag_cap = cap;
        let mut af_cfg = orig_cfg.clone().amortized();
        af_cfg.bag_cap = cap;
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        let ratio = af.throughput / orig.throughput.max(1.0);
        out.metric(format!("orig_mops/cap{cap}"), orig.throughput / 1e6);
        out.metric(format!("af_mops/cap{cap}"), af.throughput / 1e6);
        out.metric(format!("af_ratio/cap{cap}"), ratio);
        out.push("af_ratio_by_cap", ratio);
        t.row(vec![
            cap.to_string(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{ratio:.2}x"),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: bigger batches hurt ORIG more, widening the AF advantage.\n");
    out
}

/// Ablation: background-thread freeing (Mitake et al., rebutted in §6) —
/// moving batch frees to a dedicated reclaimer thread does not remove the
/// RBF problem, it relocates it.
pub fn ablation_background_free() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_background_free");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_background_free",
        "Ablation: batch vs background-thread vs amortized freeing (ABtree, DEBRA, Je)",
        &[
            "approach",
            "Mops/s",
            "freed",
            "flushes",
            "remote frees",
            "backlog at end",
        ],
    );
    for (key, mode) in [
        ("batch", FreeMode::Batch),
        ("background", FreeMode::Background),
        ("af", FreeMode::amortized()),
    ] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_mode(mode);
        let r = run_trial(&cfg);
        out.metric(format!("mops/{key}"), r.throughput / 1e6);
        out.metric(format!("freed/{key}"), r.smr.freed as f64);
        out.metric(format!("flushes/{key}"), r.alloc.totals.flushes as f64);
        out.metric(format!("remote/{key}"), r.alloc.totals.remote_freed as f64);
        out.metric(format!("backlog/{key}"), r.smr.garbage as f64);
        t.row(vec![
            r.scheme.clone(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            fmt_count(r.alloc.totals.flushes),
            fmt_count(r.alloc.totals.remote_freed),
            fmt_count(r.smr.garbage),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "expectation (§6): the background reclaimer still batch-frees through its own\n\
         thread cache, so flushes and remote frees stay high — \"batch freeing is,\n\
         itself, the problem\" — while AF removes them.\n"
    );
    out
}

/// Ablation: a delayed thread (parked inside an operation) — the classic
/// EBR weakness (§3.1 cites [35, 37]). Compares how schemes' garbage and
/// throughput respond when thread 0 stalls 20 ms out of every 60 ms.
pub fn ablation_stalled_thread() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_stalled_thread");
    let n = scale.max_threads.max(2);
    let mut t = Table::new(
        "ablation_stalled_thread",
        "Ablation: delayed thread (20ms stall every 60ms) vs clean run (ABtree, Je)",
        &[
            "scheme",
            "clean Mops/s",
            "stalled Mops/s",
            "clean peak garbage",
            "stalled peak garbage",
        ],
    );
    for (kind, mode) in [
        (SmrKind::Debra, FreeMode::Batch),
        (SmrKind::Qsbr, FreeMode::Batch),
        (SmrKind::Rcu, FreeMode::Batch),
        (SmrKind::TokenPeriodic, FreeMode::amortized()),
        (SmrKind::He, FreeMode::Batch),
        (SmrKind::NbrPlus, FreeMode::Batch),
    ] {
        let clean = run_trial(&WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode));
        let mut stalled_cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
        stalled_cfg.stall = Some((60, 20));
        let stalled = run_trial(&stalled_cfg);
        let name = clean.scheme.clone();
        out.metric(format!("clean_mops/{name}"), clean.throughput / 1e6);
        out.metric(format!("stalled_mops/{name}"), stalled.throughput / 1e6);
        out.metric(
            format!("clean_peak_garbage/{name}"),
            clean.smr.peak_garbage as f64,
        );
        out.metric(
            format!("stalled_peak_garbage/{name}"),
            stalled.smr.peak_garbage as f64,
        );
        out.metric(
            format!("garbage_ratio/{name}"),
            stalled.smr.peak_garbage as f64 / (clean.smr.peak_garbage.max(1)) as f64,
        );
        t.row(vec![
            name,
            fmt_mops(clean.throughput),
            fmt_mops(stalled.throughput),
            fmt_count(clean.smr.peak_garbage),
            fmt_count(stalled.smr.peak_garbage),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "expectation: epoch/token schemes' garbage balloons while the staller holds its\n\
         announcement; era-based schemes only pin objects whose lifetimes cover the\n\
         stalled reservation. (Our cooperative NBR cannot interrupt a sleeping thread —\n\
         a documented cost of the signal substitution, see DESIGN.md.)\n"
    );
    out
}

/// Ablation: object pooling vs amortized free vs batch free — the §3.3 /
/// footnote-4 road not taken. Pooling serves allocations straight from the
/// freeable list, avoiding the allocator almost entirely; the paper
/// deliberately declines it ("we want to show that we can make interaction
/// with the allocator fast — not avoid it"). This bench quantifies what
/// that choice costs: pooling's throughput vs AF's, and how little it
/// touches the allocator.
pub fn ablation_pooled() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_pooled");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_pooled",
        "Ablation: batch vs amortized vs pooled freeing (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "Mops/s",
            "freed",
            "pool hits",
            "allocator allocs",
            "flushes",
        ],
    );
    for (key, mode) in [
        ("batch", FreeMode::Batch),
        ("af", FreeMode::amortized()),
        ("pooled", FreeMode::Pooled),
    ] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_mode(mode);
        let r = run_trial(&cfg);
        out.metric(format!("mops/{key}"), r.throughput / 1e6);
        out.metric(format!("freed/{key}"), r.smr.freed as f64);
        out.metric(format!("pool_hits/{key}"), r.smr.pool_hits as f64);
        out.metric(format!("allocs/{key}"), r.alloc.totals.allocs as f64);
        out.metric(format!("flushes/{key}"), r.alloc.totals.flushes as f64);
        t.row(vec![
            r.scheme.clone(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            fmt_count(r.smr.pool_hits),
            fmt_count(r.alloc.totals.allocs),
            fmt_count(r.alloc.totals.flushes),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "expectation (fn. 4): pooling also sidesteps the RBF problem (VBR's trick) with\n\
         near-zero allocator traffic; AF gets comparable throughput while keeping the\n\
         allocator in the loop — the paper's point.\n"
    );
    out
}

/// Ablation: the allocator-side fix (footnote 3's future work) — an
/// incremental-flush jemalloc variant that returns a small quantum per
/// overflow instead of 3/4 of the bin. Under *batch* freeing it should
/// recover much of amortized freeing's benefit without touching the SMR
/// scheme.
pub fn ablation_allocator_fix() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_allocator_fix");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_allocator_fix",
        "Ablation: incremental-flush jemalloc (ABtree, DEBRA, max threads)",
        &[
            "config",
            "Mops/s",
            "% free",
            "% lock",
            "flushes",
            "objs/flush",
        ],
    );
    for (label, key, alloc, amortize) in [
        ("je batch", "je_batch", AllocatorKind::Je, false),
        (
            "je_incr batch",
            "je_incr_batch",
            AllocatorKind::JeIncr,
            false,
        ),
        ("je amortized", "je_af", AllocatorKind::Je, true),
    ] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_alloc(alloc);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let per_flush =
            r.alloc.totals.flushed_objects as f64 / r.alloc.totals.flushes.max(1) as f64;
        out.metric(format!("mops/{key}"), r.throughput / 1e6);
        out.metric(format!("pct_free/{key}"), r.pct_free(n));
        out.metric(format!("pct_lock/{key}"), r.pct_lock(n));
        out.metric(format!("flushes/{key}"), r.alloc.totals.flushes as f64);
        out.metric(format!("objs_per_flush/{key}"), per_flush);
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_lock(n)),
            fmt_count(r.alloc.totals.flushes),
            format!("{per_flush:.1}"),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "expectation (fn. 3): je_incr's tiny flushes shrink lock holds, recovering much of\n\
         AF's benefit at the allocator layer — the paper's proposed future work, built.\n"
    );
    out
}

/// Ablation: data-structure generality — ORIG vs AF on all four maps
/// (including the Harris–Michael list, which is not in the paper's
/// evaluation). The RBF problem is a property of the free path, not the
/// data structure, so AF should help wherever garbage volume is high.
pub fn ablation_ds_generality() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_ds_generality");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_ds_generality",
        "Ablation: ORIG vs AF per data structure (DEBRA, Je, max threads)",
        &[
            "structure",
            "ORIG Mops/s",
            "AF Mops/s",
            "AF/ORIG",
            "ORIG % free",
        ],
    );
    for tree in TreeKind::ALL {
        let mut orig_cfg = WorkloadCfg::new(tree, SmrKind::Debra, n);
        // An O(n)-traversal list needs a small key range to churn at all.
        if tree == TreeKind::Hm {
            orig_cfg.key_range = orig_cfg.key_range.min(512);
        }
        let af_cfg = orig_cfg.clone().amortized();
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        let ratio = af.throughput / orig.throughput.max(1.0);
        out.metric(format!("orig_mops/{}", tree.name()), orig.throughput / 1e6);
        out.metric(format!("af_mops/{}", tree.name()), af.throughput / 1e6);
        out.metric(format!("af_ratio/{}", tree.name()), ratio);
        out.metric(format!("orig_pct_free/{}", tree.name()), orig.pct_free(n));
        t.row(vec![
            tree.name().into(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{ratio:.2}x"),
            format!("{:.1}", orig.pct_free(n)),
        ]);
    }
    t.emit_into(&mut out);
    println!(
        "expectation: AF's advantage tracks garbage volume — biggest for the ABtree\n\
         (large nodes), smallest for the list (tiny garbage rate per op).\n"
    );
    out
}

/// Ablation: update ratio — the RBF problem scales with garbage
/// generation, so read-heavier mixes shrink the batch-vs-AF gap.
pub fn ablation_update_ratio() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("ablation_update_ratio");
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_update_ratio",
        "Ablation: update fraction of the workload (ABtree, DEBRA, Je, max threads)",
        &[
            "updates %",
            "ORIG Mops/s",
            "AF Mops/s",
            "AF/ORIG",
            "ORIG % free",
        ],
    );
    for pct in [100u32, 50, 10] {
        let ratio_f = pct as f64 / 100.0;
        let mut orig_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        orig_cfg.update_ratio = ratio_f;
        let mut af_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).amortized();
        af_cfg.update_ratio = ratio_f;
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        let ratio = af.throughput / orig.throughput.max(1.0);
        out.metric(format!("orig_mops/u{pct}"), orig.throughput / 1e6);
        out.metric(format!("af_mops/u{pct}"), af.throughput / 1e6);
        out.metric(format!("af_ratio/u{pct}"), ratio);
        out.metric(format!("orig_pct_free/u{pct}"), orig.pct_free(n));
        out.push("af_ratio_by_updates", ratio);
        out.push("orig_pct_free_by_updates", orig.pct_free(n));
        t.row(vec![
            pct.to_string(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{ratio:.2}x"),
            format!("{:.1}", orig.pct_free(n)),
        ]);
    }
    t.emit_into(&mut out);
    println!("expectation: the AF advantage shrinks as updates (and hence garbage) thin out.\n");
    out
}

/// The adaptive batch-free controller ("the paper as a product"): the
/// `_adapt` variant against the best *static* configuration it is supposed
/// to discover on its own.
///
/// Two grids. (1) The Fig. 12 shape: token and nbr+ across the thread
/// sweep, where the static candidates at each point are the two fixed
/// modes the paper compares (batch and af) — the controller must track
/// whichever wins without being told which. (2) The bag-cap ablation
/// grid: static AF at each cap vs one adaptive run that starts from the
/// default cap and must find its own operating point.
pub fn adaptive_tracking() -> ExperimentResult {
    let scale = ExperimentScale::detect();
    let mut out = ExperimentResult::new("adaptive_tracking");
    let mut t = Table::new(
        "adaptive_tracking",
        "Adaptive controller vs best static configuration (ABtree, Je)",
        &[
            "scheme",
            "threads",
            "best static Mops/s",
            "ADAPT Mops/s",
            "ADAPT/best",
        ],
    );
    for kind in [SmrKind::TokenPeriodic, SmrKind::NbrPlus] {
        let name = kind.base_name();
        let last = scale.max_threads;
        for &n in &scale.sweep {
            let orig = run_trials(&WorkloadCfg::new(TreeKind::Ab, kind, n), scale.trials);
            let af = run_trials(
                &WorkloadCfg::new(TreeKind::Ab, kind, n).amortized(),
                scale.trials,
            );
            let adapt = run_trials(
                &WorkloadCfg::new(TreeKind::Ab, kind, n).adaptive(),
                scale.trials,
            );
            let best = orig.throughput.mean().max(af.throughput.mean());
            let ratio = adapt.throughput.mean() / best.max(1.0);
            out.push(
                format!("adapt_by_threads/{name}"),
                adapt.throughput.mean() / 1e6,
            );
            out.push(format!("best_static_by_threads/{name}"), best / 1e6);
            out.push(format!("adapt_ratio_by_threads/{name}"), ratio);
            if n == last {
                out.metric(format!("adapt_mops/{name}"), adapt.throughput.mean() / 1e6);
                out.metric(format!("best_static_mops/{name}"), best / 1e6);
                out.metric(format!("adapt_ratio/{name}"), ratio);
                out.metric(
                    format!("rel_ci95/{name}"),
                    adapt
                        .throughput_rel_ci95()
                        .max(orig.throughput_rel_ci95())
                        .max(af.throughput_rel_ci95()),
                );
                out.push("adapt_ratio_field", ratio);
            }
            t.row(vec![
                format!("{name}_adapt"),
                n.to_string(),
                fmt_mops(best),
                fmt_mops(adapt.throughput.mean()),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    // The ablation grid: same caps as `ablation_bag_cap` minus one point
    // to keep the shard cost sane.
    let n = scale.max_threads;
    let mut best_static = 0.0f64;
    let mut worst_static = f64::INFINITY;
    for cap in [512usize, 8192, 32_768] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::NbrPlus, n).amortized();
        cfg.bag_cap = cap;
        let r = run_trial(&cfg);
        out.metric(format!("static_mops/cap{cap}"), r.throughput / 1e6);
        best_static = best_static.max(r.throughput);
        worst_static = worst_static.min(r.throughput);
        t.row(vec![
            format!("nbr+_af cap={cap}"),
            n.to_string(),
            fmt_mops(r.throughput),
            "-".into(),
            "-".into(),
        ]);
    }
    let adapt = run_trial(&WorkloadCfg::new(TreeKind::Ab, SmrKind::NbrPlus, n).adaptive());
    let cap_ratio = adapt.throughput / best_static.max(1.0);
    out.metric("adapt_grid_mops", adapt.throughput / 1e6);
    out.metric("worst_static_mops", worst_static / 1e6);
    out.metric("adapt_vs_best_cap_ratio", cap_ratio);
    // The PR 2 invariant must hold for the new variant too: the adaptive
    // retire path performs no steady-state heap allocations (small
    // per-thread constant = first-borrow scratch only).
    out.metric(
        "adapt_retire_path_allocs",
        adapt.smr.retire_path_allocs as f64,
    );
    out.metric("adapt_peak_garbage", adapt.smr.peak_garbage as f64);
    t.row(vec![
        "nbr+_adapt".into(),
        n.to_string(),
        fmt_mops(best_static),
        fmt_mops(adapt.throughput),
        format!("{cap_ratio:.2}x"),
    ]);
    t.emit_into(&mut out);
    println!(
        "expectation: _adapt tracks the best static configuration on both grids without \
         per-workload hand-tuning (the paper's 'no fixed knob is right everywhere' as a \
         product).\n"
    );
    out
}

/// An experiment entry point: runs, prints, returns the structured
/// result.
pub type ExperimentFn = fn() -> ExperimentResult;

/// How a registry entry runs: a hand-coded paper experiment, or a
/// runbook-generated scenario cell (see [`crate::scenario`]).
#[derive(Clone)]
pub enum ExperimentRun {
    /// A hand-coded experiment function (the paper tables/figures).
    Builtin(ExperimentFn),
    /// A scenario cell generated from the active `EPIC_RUNBOOK`.
    Scenario(Box<crate::scenario::Cell>),
}

/// Where a registry entry came from — `epic-run list` prints it, and
/// `--origin` filters on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Origin {
    /// Compiled into the harness (paper order).
    Builtin,
    /// Generated from a runbook file named by `EPIC_RUNBOOK`.
    Runbook {
        /// The runbook's `name` field.
        runbook: String,
    },
}

impl Origin {
    /// Display label: `"builtin"` or `"runbook:<name>"`.
    pub fn label(&self) -> String {
        match self {
            Origin::Builtin => "builtin".to_string(),
            Origin::Runbook { runbook } => format!("runbook:{runbook}"),
        }
    }
}

/// One registry entry: the experiment's stable id, its entry point, a
/// relative cost hint for schedulers, and its origin.
#[derive(Clone)]
pub struct Experiment {
    /// The stable experiment id (what `epic-run` accepts).
    pub id: String,
    /// The entry point.
    pub run: ExperimentRun,
    /// Relative cost hint: roughly how many timed trial slices the
    /// experiment runs at default scale (sweep length ≈ 5). The process
    /// runner ([`crate::runner`]) uses it for LPT slot assignment, and
    /// the shard partitioner balances shards by it. Only the *ordering*
    /// matters; the units are deliberately coarse.
    pub cost: u32,
    /// Builtin or runbook-generated.
    pub origin: Origin,
}

impl Experiment {
    /// Runs the experiment and stamps the result with its provenance
    /// hash — the single execution path for builtins and scenario cells
    /// alike, so every `SHAPES.json` row is replayable from its hash
    /// (see [`crate::scenario::provenance_hash`]).
    pub fn execute(&self) -> ExperimentResult {
        let mut result = match &self.run {
            ExperimentRun::Builtin(f) => f(),
            ExperimentRun::Scenario(cell) => crate::scenario::run_cell(cell),
        };
        result.provenance = Some(crate::scenario::provenance_hash(self));
        result
    }
}

/// Every experiment: the builtins in paper order, then any cells
/// generated from the active `EPIC_RUNBOOK` (in runbook order).
pub fn all_experiments() -> Vec<Experiment> {
    fn e(id: &'static str, run: ExperimentFn, cost: u32) -> Experiment {
        Experiment {
            id: id.to_string(),
            run: ExperimentRun::Builtin(run),
            cost,
            origin: Origin::Builtin,
        }
    }
    let mut all = vec![
        e("fig1_scaling", fig1_scaling, 20),
        e("table1_je_overhead", table1_je_overhead, 3),
        e("fig2_timeline_batch", fig2_timeline_batch, 2),
        e("fig3_timeline_af", fig3_timeline_af, 2),
        e("table2_af_counters", table2_af_counters, 2),
        e("fig4_garbage", fig4_garbage, 2),
        e("table3_allocators", table3_allocators, 6),
        e("fig5_6_naive_token", fig5_6_naive_token, 6),
        e("fig7_passfirst", fig7_passfirst, 1),
        e("fig8_periodic", fig8_periodic, 1),
        e("fig9_10_token_af", fig9_10_token_af, 6),
        e("table4_token_variants", table4_token_variants, 4),
        e("fig11a_experiment1", fig11a_experiment1, 65),
        e("fig11b_experiment2", fig11b_experiment2, 20),
        e("fig12_orig_vs_af_sweep", fig12_orig_vs_af_sweep, 100),
        e("fig13_dgt_orig_vs_af", fig13_dgt_orig_vs_af, 100),
        e("fig14_dgt_experiment1", fig14_dgt_experiment1, 65),
        e("fig15_16_machine_presets", fig15_16_machine_presets, 12),
        e("fig17_visible_frees", fig17_visible_frees, 2),
        e(
            "fig18_29_allocator_timelines",
            fig18_29_allocator_timelines,
            12,
        ),
        e("ablation_af_drain_rate", ablation_af_drain_rate, 4),
        e("ablation_tcache_cap", ablation_tcache_cap, 3),
        e("ablation_arena_count", ablation_arena_count, 3),
        e(
            "ablation_token_check_period",
            ablation_token_check_period,
            3,
        ),
        e("ablation_bag_cap", ablation_bag_cap, 8),
        e("ablation_background_free", ablation_background_free, 3),
        e("ablation_stalled_thread", ablation_stalled_thread, 12),
        e("ablation_update_ratio", ablation_update_ratio, 6),
        e("ablation_pooled", ablation_pooled, 3),
        e("ablation_allocator_fix", ablation_allocator_fix, 3),
        e("ablation_ds_generality", ablation_ds_generality, 8),
        e("adaptive_tracking", adaptive_tracking, 35),
    ];
    all.extend(crate::scenario::generated_experiments());
    all
}

/// Looks up one registry entry by id.
pub fn experiment_by_name(name: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == name)
}

/// Runs one experiment by id; `None` if the id is unknown.
pub fn run_by_name(name: &str) -> Option<ExperimentResult> {
    experiment_by_name(name).map(|e| e.execute())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert!(all.len() >= 25, "expected the full experiment index");
        let ids: std::collections::HashSet<_> = all.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids.len(), all.len(), "duplicate experiment ids");
        assert!(run_by_name("nonexistent_experiment").is_none());
        assert!(experiment_by_name("fig4_garbage").is_some());
        // Builtins carry the builtin origin label.
        assert!(all
            .iter()
            .filter(|e| matches!(e.run, ExperimentRun::Builtin(_)))
            .all(|e| e.origin == Origin::Builtin && e.origin.label() == "builtin"));
    }

    #[test]
    fn cost_hints_are_positive_and_rank_the_heavy_sweeps_on_top() {
        let all = all_experiments();
        assert!(
            all.iter().all(|e| e.cost > 0),
            "zero-cost entries break LPT"
        );
        let cost = |id: &str| all.iter().find(|e| e.id == id).unwrap().cost;
        // The two ORIG-vs-AF full sweeps are the heaviest jobs; any
        // single-trial timeline figure must rank below them.
        assert!(cost("fig12_orig_vs_af_sweep") > cost("fig4_garbage"));
        assert!(cost("fig13_dgt_orig_vs_af") > cost("table4_token_variants"));
    }
}
