//! The experiment registry: one function per paper table/figure (plus the
//! ablations DESIGN.md §5 calls out). Each function prints the same
//! rows/series the paper reports and writes CSV/SVG artifacts under
//! [`crate::results_dir`].

use crate::config::{ExperimentScale, WorkloadCfg};
use crate::report::{fmt_count, fmt_mops, results_dir, Table};
use crate::workload::{run_trial, run_trials};

use epic_alloc::{AllocatorKind, MachinePreset};
use epic_ds::TreeKind;
use epic_smr::{FreeMode, SmrKind};
use epic_timeline::{render_ascii, render_svg, visible_events, EventKind, RenderOptions};

/// The Experiment-1 field (Fig. 11a / Fig. 14): the paper's ten schemes
/// plus the two headline AF variants plus the leaky baseline.
fn experiment1_field() -> Vec<(SmrKind, FreeMode)> {
    let mut field = vec![
        (SmrKind::TokenPeriodic, FreeMode::amortized()),
        (SmrKind::Debra, FreeMode::amortized()),
    ];
    for kind in SmrKind::EXPERIMENT2 {
        field.push((kind, FreeMode::Batch));
    }
    field.push((SmrKind::None, FreeMode::Batch));
    field
}

fn save_timeline(result: &crate::TrialResult, id: &str, label: &str, min_duration_ns: u64) {
    let Some(rec) = &result.recorder else { return };
    let opts = RenderOptions {
        title: format!("{id} {label} ({} threads)", result.scheme),
        min_duration_ns,
        ..Default::default()
    };
    let dir = results_dir();
    let _ = std::fs::write(
        dir.join(format!("{id}_{label}.svg")),
        render_svg(rec, &opts),
    );
    let _ = rec.write_csv(&dir.join(format!("{id}_{label}.csv")));
    // Terminal preview: a compact ASCII cut.
    let ascii = render_ascii(
        rec,
        &RenderOptions {
            width: 100,
            max_rows: 8,
            min_duration_ns,
            ..Default::default()
        },
    );
    println!("timeline {id}/{label}:\n{ascii}");
}

fn save_garbage_series(result: &crate::TrialResult, id: &str, label: &str) {
    let Some(series) = &result.garbage else {
        return;
    };
    let _ = series.write_csv(&results_dir().join(format!("{id}_{label}_garbage.csv")));
    println!(
        "garbage/epoch {id}/{label}: {} epochs, mean {:.0}, max {:.0}, peaks {}  {}",
        series.len(),
        series.mean_y(),
        series.max_y(),
        series.peak_count(),
        series.sparkline(60)
    );
}

/// Fig. 1a–d: throughput and peak memory for OCCtree vs ABtree, DEBRA vs
/// leaking, across the thread sweep (jemalloc model).
pub fn fig1_scaling() {
    let scale = ExperimentScale::detect();
    let mut t = Table::new(
        "fig1_scaling",
        "Fig.1: OCCtree vs ABtree, DEBRA vs leak — throughput + peak memory (Je)",
        &["tree", "smr", "threads", "Mops/s", "min", "max", "peak MiB"],
    );
    for tree in [TreeKind::Occ, TreeKind::Ab] {
        for smr in [SmrKind::Debra, SmrKind::None] {
            for &n in &scale.sweep {
                let cfg = WorkloadCfg::new(tree, smr, n);
                let s = run_trials(&cfg, scale.trials);
                t.row(vec![
                    tree.name().into(),
                    s.scheme.clone(),
                    n.to_string(),
                    fmt_mops(s.throughput.mean()),
                    fmt_mops(s.throughput.min()),
                    fmt_mops(s.throughput.max()),
                    format!("{:.1}", s.peak_mib.mean()),
                ]);
            }
        }
    }
    t.emit();
    println!(
        "paper shape: ABtree+debra flattens at high thread counts while OCCtree keeps scaling; \
         leaking closes the gap but explodes ABtree memory.\n"
    );
}

/// Table 1: jemalloc free overhead (ops/s, epochs, %free, %flush, %lock)
/// as thread count grows. ABtree + DEBRA batch.
pub fn table1_je_overhead() {
    let scale = ExperimentScale::detect();
    let mut t = Table::new(
        "table1_je_overhead",
        "Table 1: JEmalloc free overhead vs threads (ABtree, DEBRA batch)",
        &["threads", "ops/s", "epochs", "% free", "% flush", "% lock"],
    );
    let mut points = vec![1, scale.mid_threads, scale.max_threads];
    points.dedup();
    for n in points {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        let r = run_trial(&cfg);
        t.row(vec![
            n.to_string(),
            fmt_mops(r.throughput),
            r.smr.epochs.to_string(),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_flush(n)),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit();
    println!(
        "paper shape: %free/%flush/%lock all rise steeply with threads while epoch count \
         collapses (48t: 11.5/9.9/4.9 -> 192t: 59.5/58.8/39.8).\n"
    );
}

/// Fig. 2: timeline graphs of batch frees at moderate vs maximum thread
/// counts.
pub fn fig2_timeline_batch() {
    let scale = ExperimentScale::detect();
    for (label, n) in [("mid", scale.mid_threads), ("max", scale.max_threads)] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_timeline();
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().unwrap();
        let batches = visible_events(rec, EventKind::BatchFree, 0);
        let mean_ns = if batches.is_empty() {
            0
        } else {
            batches.iter().map(|e| e.duration_ns()).sum::<u64>() / batches.len() as u64
        };
        let max_ns = batches.iter().map(|e| e.duration_ns()).max().unwrap_or(0);
        println!(
            "fig2/{label}: {n} threads, {} batch-free events, mean {:.2} ms, max {:.2} ms",
            batches.len(),
            mean_ns as f64 / 1e6,
            max_ns as f64 / 1e6
        );
        save_timeline(&r, "fig2", label, 0);
    }
    println!("paper shape: reclamation events are disproportionately longer at the higher thread count.\n");
}

/// Fig. 3: timelines of *individual free calls*, batch vs amortized.
pub fn fig3_timeline_af() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_free_calls(10_000);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().unwrap();
        let long_calls = visible_events(rec, EventKind::FreeCall, 100_000);
        println!(
            "fig3/{label}: {} free calls ≥ 0.1 ms recorded (scheme {}); latency p50 {} ns, \
             p99 {} ns, max {:.2} ms",
            long_calls.len(),
            r.scheme,
            r.smr.free_p50_ns,
            r.smr.free_p99_ns,
            r.smr.free_max_ns as f64 / 1e6,
        );
        save_timeline(&r, "fig3", label, 10_000);
    }
    println!(
        "paper shape: batch free shows many more high-latency free calls than amortized free.\n"
    );
}

/// Table 2: amortized vs batch free — ops/s, objects freed, %free, %flush,
/// %lock at max threads (ABtree, DEBRA, Je).
pub fn table2_af_counters() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "table2_af_counters",
        "Table 2: amortized vs batch free (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "ops/s",
            "freed",
            "% free",
            "% flush",
            "% lock",
            "pipe allocs",
        ],
    );
    for (label, amortize) in [("JE batch", false), ("JE amort.", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_flush(n)),
            format!("{:.1}", r.pct_lock(n)),
            // Heap allocations the retire pipeline performed on itself —
            // measurement overhead, 0 in steady state by design.
            fmt_count(r.smr.retire_path_allocs),
        ]);
    }
    t.emit();
    println!(
        "paper shape: amortized frees MORE objects in LESS time (43.4M->111.3M ops/s, \
         %lock 39.8->5.5).\n"
    );
}

/// Fig. 4: garbage per epoch, batch vs amortized (smoothing effect).
pub fn fig4_garbage() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_garbage_series();
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        save_garbage_series(&r, "fig4", label);
    }
    println!(
        "paper shape: amortized freeing has far fewer peaks with only slightly higher mean garbage.\n"
    );
}

/// Table 3: the three allocator models × batch/amortized (DEBRA, ABtree).
pub fn table3_allocators() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "table3_allocators",
        "Table 3: JE/TC/MI x batch/amortized (ABtree, DEBRA, max threads)",
        &["approach", "ops/s", "freed", "% free", "remote frees"],
    );
    for alloc in AllocatorKind::ALL {
        for (mode_label, amortize) in [("batch", false), ("amort.", true)] {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_alloc(alloc);
            if amortize {
                cfg = cfg.amortized();
            }
            let r = run_trial(&cfg);
            t.row(vec![
                format!("{} {}", alloc.name().to_uppercase(), mode_label),
                fmt_mops(r.throughput),
                fmt_count(r.smr.freed),
                format!("{:.1}", r.pct_free(n)),
                fmt_count(r.alloc.totals.remote_freed),
            ]);
        }
    }
    t.emit();
    println!(
        "paper shape: AF speeds up JE (2.6x) and TC (3.25x) but NOT MI (slightly worse) — \
         per-page free lists sidestep the RBF problem.\n"
    );
}

fn token_figure(id: &str, kind: SmrKind, mode: FreeMode, with_perf_table: bool) {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    // Timeline + garbage at max threads.
    let cfg = WorkloadCfg::new(TreeKind::Ab, kind, n)
        .with_mode(mode)
        .with_timeline()
        .with_garbage_series();
    let r = run_trial(&cfg);
    println!(
        "{id}: scheme {} -> {:.1}M ops/s, freed {}, garbage peak {}",
        r.scheme,
        r.throughput / 1e6,
        fmt_count(r.smr.freed),
        fmt_count(r.smr.peak_garbage)
    );
    save_timeline(&r, id, "timeline", 0);
    save_garbage_series(&r, id, "series");

    if with_perf_table {
        let mut t = Table::new(
            &format!("{id}_perf"),
            "performance + peak memory across threads",
            &["threads", "Mops/s", "peak MiB"],
        );
        for &threads in &scale.sweep {
            let cfg = WorkloadCfg::new(TreeKind::Ab, kind, threads).with_mode(mode);
            let s = run_trials(&cfg, scale.trials);
            t.row(vec![
                threads.to_string(),
                fmt_mops(s.throughput.mean()),
                format!("{:.1}", s.peak_mib.mean()),
            ]);
        }
        t.emit();
    }
}

/// Fig. 5 + Fig. 6: Naive Token-EBR — perf/memory sweep, timeline, garbage
/// pile-up.
pub fn fig5_6_naive_token() {
    token_figure(
        "fig5_6_naive_token",
        SmrKind::TokenNaive,
        FreeMode::Batch,
        true,
    );
    println!("paper shape: high apparent throughput but terrible reclamation (garbage pile-up; serialized frees).\n");
}

/// Fig. 7: Pass-first Token-EBR.
pub fn fig7_passfirst() {
    token_figure(
        "fig7_passfirst",
        SmrKind::TokenPassFirst,
        FreeMode::Batch,
        false,
    );
    println!("paper shape: concurrent freeing now, but batch lengths still grow over time.\n");
}

/// Fig. 8: Periodic Token-EBR.
pub fn fig8_periodic() {
    token_figure(
        "fig8_periodic",
        SmrKind::TokenPeriodic,
        FreeMode::Batch,
        false,
    );
    println!("paper shape: lower peak memory than pass-first, but long free calls still stall the token.\n");
}

/// Fig. 9 + Fig. 10: Amortized-free Token-EBR.
pub fn fig9_10_token_af() {
    token_figure(
        "fig9_10_token_af",
        SmrKind::TokenPeriodic,
        FreeMode::amortized(),
        true,
    );
    println!("paper shape: garbage pile-up gone, epoch count way up, best perf + memory of the variants.\n");
}

/// Table 4: the four Token-EBR variants (ops/s, %free, freed).
pub fn table4_token_variants() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "table4_token_variants",
        "Table 4: Token-EBR variants (ABtree, Je, max threads)",
        &["algorithm", "ops/s", "% free", "freed", "epochs"],
    );
    let variants: [(&str, SmrKind, FreeMode); 4] = [
        ("Naive", SmrKind::TokenNaive, FreeMode::Batch),
        ("Pass-first", SmrKind::TokenPassFirst, FreeMode::Batch),
        ("Periodic", SmrKind::TokenPeriodic, FreeMode::Batch),
        ("Amortized", SmrKind::TokenPeriodic, FreeMode::amortized()),
    ];
    for (label, kind, mode) in variants {
        let cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
        let r = run_trial(&cfg);
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_free(n)),
            fmt_count(r.smr.freed),
            r.smr.epochs.to_string(),
        ]);
    }
    t.emit();
    println!(
        "paper shape: Naive frees almost nothing; Pass-first/Periodic free lots but slowly; \
         Amortized frees the most AND is fastest (73.7/52.4/54.4/123.7 Mops in the paper).\n"
    );
}

fn experiment1_table(id: &str, title: &str, tree: TreeKind) {
    let scale = ExperimentScale::detect();
    let mut t = Table::new(id, title, &["scheme", "threads", "Mops/s", "min", "max"]);
    for (kind, mode) in experiment1_field() {
        for &n in &scale.sweep {
            let cfg = WorkloadCfg::new(tree, kind, n).with_mode(mode);
            let s = run_trials(&cfg, scale.trials);
            t.row(vec![
                s.scheme.clone(),
                n.to_string(),
                fmt_mops(s.throughput.mean()),
                fmt_mops(s.throughput.min()),
                fmt_mops(s.throughput.max()),
            ]);
        }
    }
    t.emit();
}

/// Fig. 11a (Experiment 1): token_af and debra_af vs the whole field
/// across threads, ABtree.
pub fn fig11a_experiment1() {
    experiment1_table(
        "fig11a_experiment1",
        "Fig.11a/Exp.1: token_af + debra_af vs the field (ABtree, Je)",
        TreeKind::Ab,
    );
    println!(
        "paper shape: token_af on top (~1.7x next best nbr+; 7-9x hp/he) and both AF schemes \
         beat the leaky baseline.\n"
    );
}

fn orig_vs_af_table(id: &str, title: &str, tree: TreeKind, sweep: bool) {
    let scale = ExperimentScale::detect();
    let threads: Vec<usize> = if sweep {
        scale.sweep.clone()
    } else {
        vec![scale.max_threads]
    };
    let mut t = Table::new(
        id,
        title,
        &["scheme", "threads", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"],
    );
    for kind in SmrKind::EXPERIMENT2 {
        for &n in &threads {
            let orig = run_trials(&WorkloadCfg::new(tree, kind, n), scale.trials);
            let af = run_trials(&WorkloadCfg::new(tree, kind, n).amortized(), scale.trials);
            let ratio = af.throughput.mean() / orig.throughput.mean().max(1.0);
            t.row(vec![
                kind.base_name().into(),
                n.to_string(),
                fmt_mops(orig.throughput.mean()),
                fmt_mops(af.throughput.mean()),
                format!("{ratio:.2}x"),
            ]);
        }
    }
    t.emit();
}

/// Fig. 11b (Experiment 2): ORIG vs AF for all ten schemes at max threads.
pub fn fig11b_experiment2() {
    orig_vs_af_table(
        "fig11b_experiment2",
        "Fig.11b/Exp.2: ORIG vs AF per scheme (ABtree, Je, max threads)",
        TreeKind::Ab,
        false,
    );
    println!(
        "paper shape: AF wins for 9/10 schemes (up to 2.3x); he does not improve, hp/wfe only \
         ~1.2x (their per-read sync dominates).\n"
    );
}

/// Fig. 12 (Appendix C): ORIG vs AF across the thread sweep, ABtree.
pub fn fig12_orig_vs_af_sweep() {
    orig_vs_af_table(
        "fig12_orig_vs_af_sweep",
        "Fig.12/App.C: ORIG vs AF across threads (ABtree, Je)",
        TreeKind::Ab,
        true,
    );
}

/// Fig. 13 (Appendix D): ORIG vs AF across the thread sweep, DGT tree
/// (deletes free TWO nodes, so AF drains two per op — the §7 tuning).
pub fn fig13_dgt_orig_vs_af() {
    orig_vs_af_table(
        "fig13_dgt_orig_vs_af",
        "Fig.13/App.D: ORIG vs AF across threads (DGT tree, Je)",
        TreeKind::Dgt,
        true,
    );
}

/// Fig. 14 (Appendix D): Experiment 1 on the DGT tree.
pub fn fig14_dgt_experiment1() {
    experiment1_table(
        "fig14_dgt_experiment1",
        "Fig.14/App.D: token_af vs the field (DGT tree, Je)",
        TreeKind::Dgt,
    );
}

/// Fig. 15/16 (Appendix E): machine presets — re-run the headline
/// comparison with the cost-model parameters of the paper's other
/// testbeds.
pub fn fig15_16_machine_presets() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "fig15_16_machine_presets",
        "Fig.15/16/App.E: machine presets (ABtree, max threads)",
        &["machine", "scheme", "Mops/s", "% lock"],
    );
    for preset in [
        MachinePreset::Intel4x192,
        MachinePreset::Intel4x144,
        MachinePreset::Amd2x256,
    ] {
        for (kind, mode) in [
            (SmrKind::TokenPeriodic, FreeMode::amortized()),
            (SmrKind::Debra, FreeMode::amortized()),
            (SmrKind::Debra, FreeMode::Batch),
            (SmrKind::None, FreeMode::Batch),
        ] {
            let mut cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
            cfg.cost = preset.cost_model();
            let r = run_trial(&cfg);
            t.row(vec![
                preset.name().into(),
                r.scheme.clone(),
                fmt_mops(r.throughput),
                format!("{:.1}", r.pct_lock(n)),
            ]);
        }
    }
    t.emit();
    println!("paper shape: the AF ranking is machine-independent; only magnitudes shift.\n");
}

/// Fig. 17 (Appendix F): the visible (≥ 0.1 ms) free calls, batch vs AF.
pub fn fig17_visible_frees() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "fig17_visible_frees",
        "Fig.17/App.F: free calls >= 0.1ms (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "free calls >=0.1ms",
            "longest (ms)",
            "total visible (ms)",
            "p50 ns",
            "p99 ns",
        ],
    );
    for (label, amortize) in [("batch", false), ("amortized", true)] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_free_calls(10_000);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let rec = r.recorder.as_ref().unwrap();
        let visible = visible_events(rec, EventKind::FreeCall, 100_000);
        let longest = visible.iter().map(|e| e.duration_ns()).max().unwrap_or(0);
        let total: u64 = visible.iter().map(|e| e.duration_ns()).sum();
        t.row(vec![
            label.into(),
            visible.len().to_string(),
            format!("{:.2}", longest as f64 / 1e6),
            format!("{:.2}", total as f64 / 1e6),
            r.smr.free_p50_ns.to_string(),
            r.smr.free_p99_ns.to_string(),
        ]);
        save_timeline(&r, "fig17", label, 100_000);
    }
    t.emit();
    println!("paper shape: only a tiny fraction of calls are visible, and far fewer under AF.\n");
}

/// Figs. 18–29 (Appendix G): DEBRA timelines for each allocator model at
/// several thread counts.
pub fn fig18_29_allocator_timelines() {
    let scale = ExperimentScale::detect();
    let mut points = vec![1, 2, scale.mid_threads, scale.max_threads];
    points.dedup();
    for alloc in AllocatorKind::ALL {
        for &n in &points {
            let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n)
                .with_alloc(alloc)
                .with_timeline()
                .with_garbage_series();
            let r = run_trial(&cfg);
            let label = format!("{}_{}t", alloc.name(), n);
            save_timeline(&r, "fig18_29", &label, 0);
            save_garbage_series(&r, "fig18_29", &label);
        }
    }
    println!("paper shape: je/tc timelines fill with long batch frees as threads grow; mi stays clean.\n");
}

/// Ablation: AF drain rate (objects freed per operation) on the DGT tree,
/// which frees 2 nodes per delete — §7 predicts k=2 is the sweet spot.
pub fn ablation_af_drain_rate() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_af_drain_rate",
        "Ablation: AF objects-freed-per-op k (DGT tree, token, Je, max threads)",
        &["k", "Mops/s", "final garbage", "peak garbage"],
    );
    for k in [1usize, 2, 4, 8] {
        let cfg = WorkloadCfg::new(TreeKind::Dgt, SmrKind::TokenPeriodic, n)
            .with_mode(FreeMode::Amortized { per_op: k });
        let r = run_trial(&cfg);
        t.row(vec![
            k.to_string(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.garbage),
            fmt_count(r.smr.peak_garbage),
        ]);
    }
    t.emit();
    println!("expectation: k=1 lets garbage grow (2 frees/delete needed); k>=2 bounds it.\n");
}

/// Ablation: thread-cache capacity in the Je model.
pub fn ablation_tcache_cap() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_tcache_cap",
        "Ablation: Je thread-cache capacity (ABtree, DEBRA batch, max threads)",
        &["tcache cap", "Mops/s", "flushes", "% lock"],
    );
    for cap in [50usize, 200, 800] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        cfg.tcache_cap = Some(cap);
        let r = run_trial(&cfg);
        t.row(vec![
            cap.to_string(),
            fmt_mops(r.throughput),
            fmt_count(r.alloc.totals.flushes),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit();
    println!("expectation: bigger caches absorb more of each batch -> fewer flushes.\n");
}

/// Ablation: arena count (the jemalloc 4×ncpu choice).
pub fn ablation_arena_count() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_arena_count",
        "Ablation: Je arenas-per-cpu (ABtree, DEBRA batch, max threads)",
        &["arenas/cpu", "arenas", "Mops/s", "% lock"],
    );
    for per_cpu in [1usize, 4, 16] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        cfg.cost.arenas_per_cpu = per_cpu;
        let arenas = cfg.cost.num_arenas();
        let r = run_trial(&cfg);
        t.row(vec![
            per_cpu.to_string(),
            arenas.to_string(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_lock(n)),
        ]);
    }
    t.emit();
    println!("expectation: fewer arenas -> more flush collisions -> more lock waiting.\n");
}

/// Ablation: Periodic Token-EBR's check interval (paper: 100).
pub fn ablation_token_check_period() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_token_check_period",
        "Ablation: token check interval (ABtree, token batch, max threads)",
        &["check every", "Mops/s", "epochs", "peak garbage"],
    );
    for k in [10usize, 100, 1000] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::TokenPeriodic, n);
        cfg.token_check_every = k;
        let r = run_trial(&cfg);
        t.row(vec![
            k.to_string(),
            fmt_mops(r.throughput),
            r.smr.epochs.to_string(),
            fmt_count(r.smr.peak_garbage),
        ]);
    }
    t.emit();
    println!("expectation: smaller intervals keep the token moving through long frees.\n");
}

/// Ablation: limbo-bag capacity (paper fixes 32 K for Experiment 2).
pub fn ablation_bag_cap() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_bag_cap",
        "Ablation: limbo bag capacity (ABtree, nbr+, Je, max threads)",
        &["bag cap", "ORIG Mops/s", "AF Mops/s", "AF/ORIG"],
    );
    for cap in [512usize, 2048, 8192, 32_768] {
        let mut orig_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::NbrPlus, n);
        orig_cfg.bag_cap = cap;
        let mut af_cfg = orig_cfg.clone().amortized();
        af_cfg.bag_cap = cap;
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        t.row(vec![
            cap.to_string(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{:.2}x", af.throughput / orig.throughput.max(1.0)),
        ]);
    }
    t.emit();
    println!("expectation: bigger batches hurt ORIG more, widening the AF advantage.\n");
}

/// Ablation: background-thread freeing (Mitake et al., rebutted in §6) —
/// moving batch frees to a dedicated reclaimer thread does not remove the
/// RBF problem, it relocates it.
pub fn ablation_background_free() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_background_free",
        "Ablation: batch vs background-thread vs amortized freeing (ABtree, DEBRA, Je)",
        &[
            "approach",
            "Mops/s",
            "freed",
            "flushes",
            "remote frees",
            "backlog at end",
        ],
    );
    for mode in [FreeMode::Batch, FreeMode::Background, FreeMode::amortized()] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_mode(mode);
        let r = run_trial(&cfg);
        t.row(vec![
            r.scheme.clone(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            fmt_count(r.alloc.totals.flushes),
            fmt_count(r.alloc.totals.remote_freed),
            fmt_count(r.smr.garbage),
        ]);
    }
    t.emit();
    println!(
        "expectation (§6): the background reclaimer still batch-frees through its own\n\
         thread cache, so flushes and remote frees stay high — \"batch freeing is,\n\
         itself, the problem\" — while AF removes them.\n"
    );
}

/// Ablation: a delayed thread (parked inside an operation) — the classic
/// EBR weakness (§3.1 cites [35, 37]). Compares how schemes' garbage and
/// throughput respond when thread 0 stalls 20 ms out of every 60 ms.
pub fn ablation_stalled_thread() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads.max(2);
    let mut t = Table::new(
        "ablation_stalled_thread",
        "Ablation: delayed thread (20ms stall every 60ms) vs clean run (ABtree, Je)",
        &[
            "scheme",
            "clean Mops/s",
            "stalled Mops/s",
            "clean peak garbage",
            "stalled peak garbage",
        ],
    );
    for (kind, mode) in [
        (SmrKind::Debra, FreeMode::Batch),
        (SmrKind::Qsbr, FreeMode::Batch),
        (SmrKind::Rcu, FreeMode::Batch),
        (SmrKind::TokenPeriodic, FreeMode::amortized()),
        (SmrKind::He, FreeMode::Batch),
        (SmrKind::NbrPlus, FreeMode::Batch),
    ] {
        let clean = run_trial(&WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode));
        let mut stalled_cfg = WorkloadCfg::new(TreeKind::Ab, kind, n).with_mode(mode);
        stalled_cfg.stall = Some((60, 20));
        let stalled = run_trial(&stalled_cfg);
        t.row(vec![
            clean.scheme.clone(),
            fmt_mops(clean.throughput),
            fmt_mops(stalled.throughput),
            fmt_count(clean.smr.peak_garbage),
            fmt_count(stalled.smr.peak_garbage),
        ]);
    }
    t.emit();
    println!(
        "expectation: epoch/token schemes' garbage balloons while the staller holds its\n\
         announcement; era-based schemes only pin objects whose lifetimes cover the\n\
         stalled reservation. (Our cooperative NBR cannot interrupt a sleeping thread —\n\
         a documented cost of the signal substitution, see DESIGN.md.)\n"
    );
}

/// Ablation: object pooling vs amortized free vs batch free — the §3.3 /
/// footnote-4 road not taken. Pooling serves allocations straight from the
/// freeable list, avoiding the allocator almost entirely; the paper
/// deliberately declines it ("we want to show that we can make interaction
/// with the allocator fast — not avoid it"). This bench quantifies what
/// that choice costs: pooling's throughput vs AF's, and how little it
/// touches the allocator.
pub fn ablation_pooled() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_pooled",
        "Ablation: batch vs amortized vs pooled freeing (ABtree, DEBRA, Je, max threads)",
        &[
            "approach",
            "Mops/s",
            "freed",
            "pool hits",
            "allocator allocs",
            "flushes",
        ],
    );
    for mode in [FreeMode::Batch, FreeMode::amortized(), FreeMode::Pooled] {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_mode(mode);
        let r = run_trial(&cfg);
        t.row(vec![
            r.scheme.clone(),
            fmt_mops(r.throughput),
            fmt_count(r.smr.freed),
            fmt_count(r.smr.pool_hits),
            fmt_count(r.alloc.totals.allocs),
            fmt_count(r.alloc.totals.flushes),
        ]);
    }
    t.emit();
    println!(
        "expectation (fn. 4): pooling also sidesteps the RBF problem (VBR's trick) with\n\
         near-zero allocator traffic; AF gets comparable throughput while keeping the\n\
         allocator in the loop — the paper's point.\n"
    );
}

/// Ablation: the allocator-side fix (footnote 3's future work) — an
/// incremental-flush jemalloc variant that returns a small quantum per
/// overflow instead of 3/4 of the bin. Under *batch* freeing it should
/// recover much of amortized freeing's benefit without touching the SMR
/// scheme.
pub fn ablation_allocator_fix() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_allocator_fix",
        "Ablation: incremental-flush jemalloc (ABtree, DEBRA, max threads)",
        &[
            "config",
            "Mops/s",
            "% free",
            "% lock",
            "flushes",
            "objs/flush",
        ],
    );
    for (label, alloc, amortize) in [
        ("je batch", AllocatorKind::Je, false),
        ("je_incr batch", AllocatorKind::JeIncr, false),
        ("je amortized", AllocatorKind::Je, true),
    ] {
        let mut cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).with_alloc(alloc);
        if amortize {
            cfg = cfg.amortized();
        }
        let r = run_trial(&cfg);
        let per_flush =
            r.alloc.totals.flushed_objects as f64 / r.alloc.totals.flushes.max(1) as f64;
        t.row(vec![
            label.into(),
            fmt_mops(r.throughput),
            format!("{:.1}", r.pct_free(n)),
            format!("{:.1}", r.pct_lock(n)),
            fmt_count(r.alloc.totals.flushes),
            format!("{per_flush:.1}"),
        ]);
    }
    t.emit();
    println!(
        "expectation (fn. 3): je_incr's tiny flushes shrink lock holds, recovering much of\n\
         AF's benefit at the allocator layer — the paper's proposed future work, built.\n"
    );
}

/// Ablation: data-structure generality — ORIG vs AF on all four maps
/// (including the Harris–Michael list, which is not in the paper's
/// evaluation). The RBF problem is a property of the free path, not the
/// data structure, so AF should help wherever garbage volume is high.
pub fn ablation_ds_generality() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_ds_generality",
        "Ablation: ORIG vs AF per data structure (DEBRA, Je, max threads)",
        &[
            "structure",
            "ORIG Mops/s",
            "AF Mops/s",
            "AF/ORIG",
            "ORIG % free",
        ],
    );
    for tree in TreeKind::ALL {
        let mut orig_cfg = WorkloadCfg::new(tree, SmrKind::Debra, n);
        // An O(n)-traversal list needs a small key range to churn at all.
        if tree == TreeKind::Hm {
            orig_cfg.key_range = orig_cfg.key_range.min(512);
        }
        let af_cfg = orig_cfg.clone().amortized();
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        t.row(vec![
            tree.name().into(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{:.2}x", af.throughput / orig.throughput.max(1.0)),
            format!("{:.1}", orig.pct_free(n)),
        ]);
    }
    t.emit();
    println!(
        "expectation: AF's advantage tracks garbage volume — biggest for the ABtree\n\
         (large nodes), smallest for the list (tiny garbage rate per op).\n"
    );
}

/// Ablation: update ratio — the RBF problem scales with garbage
/// generation, so read-heavier mixes shrink the batch-vs-AF gap.
pub fn ablation_update_ratio() {
    let scale = ExperimentScale::detect();
    let n = scale.max_threads;
    let mut t = Table::new(
        "ablation_update_ratio",
        "Ablation: update fraction of the workload (ABtree, DEBRA, Je, max threads)",
        &[
            "updates %",
            "ORIG Mops/s",
            "AF Mops/s",
            "AF/ORIG",
            "ORIG % free",
        ],
    );
    for pct in [100u32, 50, 10] {
        let ratio = pct as f64 / 100.0;
        let mut orig_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n);
        orig_cfg.update_ratio = ratio;
        let mut af_cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, n).amortized();
        af_cfg.update_ratio = ratio;
        let orig = run_trial(&orig_cfg);
        let af = run_trial(&af_cfg);
        t.row(vec![
            pct.to_string(),
            fmt_mops(orig.throughput),
            fmt_mops(af.throughput),
            format!("{:.2}x", af.throughput / orig.throughput.max(1.0)),
            format!("{:.1}", orig.pct_free(n)),
        ]);
    }
    t.emit();
    println!("expectation: the AF advantage shrinks as updates (and hence garbage) thin out.\n");
}

/// Every experiment, in paper order.
pub fn all_experiments() -> Vec<(&'static str, fn())> {
    vec![
        ("fig1_scaling", fig1_scaling as fn()),
        ("table1_je_overhead", table1_je_overhead),
        ("fig2_timeline_batch", fig2_timeline_batch),
        ("fig3_timeline_af", fig3_timeline_af),
        ("table2_af_counters", table2_af_counters),
        ("fig4_garbage", fig4_garbage),
        ("table3_allocators", table3_allocators),
        ("fig5_6_naive_token", fig5_6_naive_token),
        ("fig7_passfirst", fig7_passfirst),
        ("fig8_periodic", fig8_periodic),
        ("fig9_10_token_af", fig9_10_token_af),
        ("table4_token_variants", table4_token_variants),
        ("fig11a_experiment1", fig11a_experiment1),
        ("fig11b_experiment2", fig11b_experiment2),
        ("fig12_orig_vs_af_sweep", fig12_orig_vs_af_sweep),
        ("fig13_dgt_orig_vs_af", fig13_dgt_orig_vs_af),
        ("fig14_dgt_experiment1", fig14_dgt_experiment1),
        ("fig15_16_machine_presets", fig15_16_machine_presets),
        ("fig17_visible_frees", fig17_visible_frees),
        ("fig18_29_allocator_timelines", fig18_29_allocator_timelines),
        ("ablation_af_drain_rate", ablation_af_drain_rate),
        ("ablation_tcache_cap", ablation_tcache_cap),
        ("ablation_arena_count", ablation_arena_count),
        ("ablation_token_check_period", ablation_token_check_period),
        ("ablation_bag_cap", ablation_bag_cap),
        ("ablation_background_free", ablation_background_free),
        ("ablation_stalled_thread", ablation_stalled_thread),
        ("ablation_update_ratio", ablation_update_ratio),
        ("ablation_pooled", ablation_pooled),
        ("ablation_allocator_fix", ablation_allocator_fix),
        ("ablation_ds_generality", ablation_ds_generality),
    ]
}

/// Runs one experiment by id; returns false if unknown.
pub fn run_by_name(name: &str) -> bool {
    for (id, f) in all_experiments() {
        if id == name {
            f();
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert!(all.len() >= 25, "expected the full experiment index");
        let ids: std::collections::HashSet<_> = all.iter().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), all.len(), "duplicate experiment ids");
        assert!(!run_by_name("nonexistent_experiment"));
    }
}
