//! The scenario DSL: declarative runbooks that *generate* registry
//! experiments.
//!
//! A **runbook** is a JSON file (parsed with [`epic_util::Json`] — no
//! serde in the offline container) describing one or more **scenarios**:
//! a workload shape (key-space size and skew, arrival pattern, update
//! ratio, thread count and churn) crossed with a scheme × free-mode ×
//! allocator × data-structure grid. Every point of the cross-product
//! becomes a [`Cell`], and every cell becomes a regular
//! [`Experiment`] in
//! [`all_experiments`](crate::experiments::all_experiments) — so
//! `epic-run check`, `--shard`, `-j N`, oracle verdicts, `SHAPES.json`
//! merging and `epic-serve` job submission all work on generated
//! scenarios unchanged. Point `EPIC_RUNBOOK` at the file and the
//! registry grows.
//!
//! Reproducibility is the design center:
//!
//! * **Seeds** are derived, not random: each cell's workload seed is
//!   `SplitMix64(runbook.seed XOR fnv1a(cell_id))`, so the same runbook
//!   produces byte-identical seeds in every process on every machine.
//! * **Provenance**: every result executed through the registry is
//!   stamped with a [`provenance_hash`] — a 32-hex-digit digest of the
//!   experiment identity, the runbook source, the cell seed, the
//!   toolchain, the git revision and the effective `EPIC_*` overrides.
//!   The hash rides along into `SHAPES.json`, and `epic-run replay
//!   <hash>` re-runs the exact cell it names and diffs the `det/*`
//!   counters recorded by the cell's single-thread determinism probe.
//!
//! Grammar reference: DESIGN.md §12; user guide: README "Writing
//! scenarios".

use crate::config::{Arrival, KeyDist, WorkloadCfg};
use crate::experiments::{Experiment, ExperimentRun, Origin};
use crate::oracle::{at_least, Oracle};
use crate::report::ExperimentResult;
use crate::runner::fnv1a;
use crate::workload::{run_trial, run_trials};

use epic_alloc::AllocatorKind;
use epic_ds::TreeKind;
use epic_smr::{FreeMode, SmrKind};
use epic_util::topology::env_usize;
use epic_util::{Json, SplitMix64, Topology};

use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// The environment variable naming the active runbook file.
pub const RUNBOOK_ENV: &str = "EPIC_RUNBOOK";

/// The runbook schema tag this parser accepts.
pub const RUNBOOK_SCHEMA: &str = "epic-runbook-v1";

/// Fixed per-thread operation budget of the single-thread determinism
/// probe every cell runs after its timed trials (a multiple of the
/// worker's 64-op inner loop, so the budget lands exactly). The probe's
/// `det/*` counters are what `epic-run replay` diffs.
pub const DET_PROBE_OPS: u64 = 4096;

/// Registry cost hint for one cell: one timed trial slice plus the
/// (cheap) determinism probe. Deliberately machine-independent so shard
/// assignment of generated cells is stable across hosts.
const CELL_COST: u32 = 2;

/// Hard cap on cells per runbook — a typo'd cross-product should fail
/// validation, not OOM the scheduler.
const MAX_CELLS: usize = 512;

/// Thread-count axis entry: a fixed count, or a multiple of the
/// machine's logical CPUs (`"2x"` = oversubscribe two workers per CPU).
/// The multiple resolves at *run* time, so one runbook expresses
/// "threads > cores" portably; the id token (`t8`, `t2x`) is stable
/// either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSpec {
    /// Exactly this many worker threads.
    Fixed(usize),
    /// `multiplier × logical CPUs`, resolved on the machine that runs.
    CpusTimes(u32),
}

impl ThreadSpec {
    /// The id-safe token (`"t4"`, `"t2x"`).
    pub fn token(&self) -> String {
        match self {
            ThreadSpec::Fixed(n) => format!("t{n}"),
            ThreadSpec::CpusTimes(m) => format!("t{m}x"),
        }
    }

    /// The concrete worker count on this machine (at least 1).
    pub fn resolve(&self) -> usize {
        match self {
            ThreadSpec::Fixed(n) => (*n).max(1),
            ThreadSpec::CpusTimes(m) => (Topology::detect().logical_cpus * *m as usize).max(1),
        }
    }
}

/// One fully-resolved point of a scenario's cross-product: everything a
/// trial needs, plus the derived seed and the provenance identity of the
/// runbook it came from.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The generated experiment id (`sc_<scenario>_<axes...>`).
    pub id: String,
    /// The owning runbook's `name` field.
    pub runbook: String,
    /// FNV-1a of the runbook's raw source text (provenance input).
    pub source_fnv: u64,
    /// The scenario (sub-grid) name within the runbook.
    pub scenario: String,
    /// Data structure under test.
    pub tree: TreeKind,
    /// Reclamation scheme.
    pub smr: SmrKind,
    /// Free mode (batch/af/bg/pool/adapt).
    pub mode: FreeMode,
    /// Allocator model.
    pub alloc: AllocatorKind,
    /// Worker-thread axis entry.
    pub threads: ThreadSpec,
    /// Key-space override; `None` defers to `EPIC_KEYRANGE` / default.
    pub key_range: Option<u64>,
    /// Key distribution.
    pub key_dist: KeyDist,
    /// Arrival pattern.
    pub arrival: Arrival,
    /// Handle-churn period (`None` = no churn).
    pub churn_every_ops: Option<u64>,
    /// Fraction of operations that are updates.
    pub update_ratio: f64,
    /// Derived workload seed (`SplitMix64(runbook.seed ^ fnv1a(id))`).
    pub seed: u64,
}

impl Cell {
    /// The cell as a [`WorkloadCfg`] at a resolved thread count.
    /// Unset axes defer to the usual environment-scaled defaults
    /// (`EPIC_MILLIS`, `EPIC_KEYRANGE`, `EPIC_BAG_CAP`, ...).
    pub fn workload(&self, threads: usize) -> WorkloadCfg {
        let mut cfg = WorkloadCfg::new(self.tree, self.smr, threads)
            .with_mode(self.mode)
            .with_alloc(self.alloc)
            .with_seed(self.seed)
            .with_key_dist(self.key_dist)
            .with_arrival(self.arrival);
        if let Some(k) = self.key_range {
            cfg.key_range = k;
        }
        if let Some(c) = self.churn_every_ops {
            cfg = cfg.with_churn(c);
        }
        cfg.update_ratio = self.update_ratio;
        cfg
    }

    /// The single-thread determinism probe: same seed, distribution,
    /// key range and churn as the cell, but one thread, a fixed
    /// [`DET_PROBE_OPS`] budget and steady arrival — bit-for-bit
    /// reproducible counters (the replay contract), regardless of how
    /// noisy the timed trial was.
    pub fn det_probe(&self) -> WorkloadCfg {
        let mut cfg = self.workload(1).with_op_budget(DET_PROBE_OPS);
        cfg.arrival = Arrival::Steady;
        cfg
    }
}

/// A parsed, validated runbook: its identity plus every generated cell
/// in deterministic order.
#[derive(Debug, Clone)]
pub struct Runbook {
    /// The runbook's `name` field (id-safe).
    pub name: String,
    /// The top-level seed all cell seeds derive from.
    pub seed: u64,
    /// FNV-1a of the raw source text.
    pub source_fnv: u64,
    /// All cells, in scenario order × axis order.
    pub cells: Vec<Cell>,
}

impl Runbook {
    /// Parses and validates a runbook document. Every error is a
    /// human-readable message (never a panic): unknown fields, bad axis
    /// values, colliding cell ids and oversized cross-products are all
    /// rejected here, before anything runs.
    pub fn parse(source: &str) -> Result<Runbook, String> {
        let doc = Json::parse(source).map_err(|e| format!("runbook: {e}"))?;
        let fields = doc.as_obj().ok_or("runbook: top level must be an object")?;
        for (k, _) in fields {
            if !matches!(k.as_str(), "schema" | "name" | "seed" | "scenarios") {
                return Err(format!("runbook: unknown top-level field '{k}'"));
            }
        }
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("runbook: missing \"schema\"")?;
        if schema != RUNBOOK_SCHEMA {
            return Err(format!(
                "runbook: schema '{schema}' is not '{RUNBOOK_SCHEMA}'"
            ));
        }
        let name = doc
            .get("name")
            .and_then(Json::as_str)
            .ok_or("runbook: missing \"name\"")?
            .to_string();
        require_id_safe(&name, "runbook name")?;
        let seed = match doc.get("seed") {
            Some(v) => u64_of(v, "seed")?,
            None => 0,
        };
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .ok_or("runbook: missing \"scenarios\" array")?;
        if scenarios.is_empty() {
            return Err("runbook: \"scenarios\" is empty".into());
        }
        let source_fnv = fnv1a(source);
        let mut cells = Vec::new();
        let mut ids = HashSet::new();
        for (i, sc) in scenarios.iter().enumerate() {
            let generated = parse_scenario(sc, i, &name, seed, source_fnv)?;
            for cell in generated {
                if !ids.insert(cell.id.clone()) {
                    return Err(format!(
                        "runbook: duplicate cell id '{}' — scenarios must differ in \
                         name or at least one axis",
                        cell.id
                    ));
                }
                cells.push(cell);
            }
            if cells.len() > MAX_CELLS {
                return Err(format!(
                    "runbook: cross-product exceeds {MAX_CELLS} cells — split the \
                     runbook or narrow an axis"
                ));
            }
        }
        Ok(Runbook {
            name,
            seed,
            source_fnv,
            cells,
        })
    }

    /// The runbook's cells as registry entries (the bridge the
    /// experiment registry appends).
    pub fn experiments(&self) -> Vec<Experiment> {
        self.cells
            .iter()
            .map(|c| Experiment {
                id: c.id.clone(),
                run: ExperimentRun::Scenario(Box::new(c.clone())),
                cost: CELL_COST,
                origin: Origin::Runbook {
                    runbook: self.name.clone(),
                },
            })
            .collect()
    }
}

/// Parses one scenario object and expands its cross-product.
fn parse_scenario(
    sc: &Json,
    index: usize,
    runbook: &str,
    runbook_seed: u64,
    source_fnv: u64,
) -> Result<Vec<Cell>, String> {
    let fields = sc
        .as_obj()
        .ok_or_else(|| format!("runbook: scenario #{index} must be an object"))?;
    const KNOWN: &[&str] = &[
        "name",
        "trees",
        "smrs",
        "modes",
        "allocs",
        "threads",
        "key_range",
        "key_dists",
        "arrivals",
        "churn_every_ops",
        "update_ratio",
    ];
    for (k, _) in fields {
        if !KNOWN.contains(&k.as_str()) {
            return Err(format!(
                "runbook: scenario #{index}: unknown field '{k}' (known: {})",
                KNOWN.join(", ")
            ));
        }
    }
    let name = sc
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("runbook: scenario #{index} missing \"name\""))?
        .to_string();
    let what = |field: &str| format!("scenario '{name}' {field}");
    require_id_safe(&name, &format!("scenario #{index} name"))?;

    let trees = axis_strings(sc, "trees", &what("trees"))?
        .ok_or_else(|| format!("runbook: {} is required", what("trees")))?
        .iter()
        .map(|s| {
            TreeKind::parse(s)
                .ok_or_else(|| format!("runbook: {}: unknown tree '{s}'", what("trees")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let smrs = axis_strings(sc, "smrs", &what("smrs"))?
        .ok_or_else(|| format!("runbook: {} is required", what("smrs")))?
        .iter()
        .map(|s| {
            SmrKind::parse(s).ok_or_else(|| format!("runbook: {}: unknown smr '{s}'", what("smrs")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let modes = match axis_strings(sc, "modes", &what("modes"))? {
        None => vec![FreeMode::Batch],
        Some(raw) => raw
            .iter()
            .map(|s| {
                FreeMode::parse(s)
                    .ok_or_else(|| format!("runbook: {}: unknown mode '{s}'", what("modes")))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let allocs = match axis_strings(sc, "allocs", &what("allocs"))? {
        None => vec![AllocatorKind::Je],
        Some(raw) => raw
            .iter()
            .map(|s| {
                AllocatorKind::parse(s)
                    .ok_or_else(|| format!("runbook: {}: unknown allocator '{s}'", what("allocs")))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let threads = sc
        .get("threads")
        .ok_or_else(|| format!("runbook: {} is required", what("threads")))
        .map(|v| {
            scalar_or_list(v)
                .iter()
                .map(|t| parse_thread_spec(t, &what("threads")))
                .collect::<Result<Vec<_>, _>>()
        })??;
    let key_range = match sc.get("key_range") {
        None => None,
        Some(v) => {
            let k = u64_of(v, &what("key_range"))?;
            if !(2..=1 << 32).contains(&k) {
                return Err(format!(
                    "runbook: {} must be in [2, 2^32], got {k}",
                    what("key_range")
                ));
            }
            Some(k)
        }
    };
    let key_dists = match axis_strings(sc, "key_dists", &what("key_dists"))? {
        None => vec![KeyDist::Uniform],
        Some(raw) => raw
            .iter()
            .map(|s| parse_key_dist(s, &what("key_dists")))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let arrivals = match axis_strings(sc, "arrivals", &what("arrivals"))? {
        None => vec![Arrival::Steady],
        Some(raw) => raw
            .iter()
            .map(|s| parse_arrival(s, &what("arrivals")))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let churns: Vec<Option<u64>> = match sc.get("churn_every_ops") {
        None => vec![None],
        Some(v) => scalar_or_list(v)
            .iter()
            .map(|c| {
                let n = u64_of(c, &what("churn_every_ops"))?;
                // 0 = the no-churn baseline, so one axis can sweep
                // "off, mild, storm".
                Ok(if n == 0 { None } else { Some(n) })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    let update_ratio = match sc.get("update_ratio") {
        None => 1.0,
        Some(v) => {
            let r = v
                .as_f64()
                .ok_or_else(|| format!("runbook: {} must be a number", what("update_ratio")))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!(
                    "runbook: {} must be in [0, 1], got {r}",
                    what("update_ratio")
                ));
            }
            r
        }
    };

    let mut cells = Vec::new();
    for tree in &trees {
        for smr in &smrs {
            for mode in &modes {
                for alloc in &allocs {
                    for spec in &threads {
                        for dist in &key_dists {
                            for arrival in &arrivals {
                                for churn in &churns {
                                    let id = cell_id(
                                        &name, *smr, *mode, *tree, *alloc, *spec, dist, arrival,
                                        *churn,
                                    );
                                    let seed =
                                        SplitMix64::new(runbook_seed ^ fnv1a(&id)).next_u64();
                                    cells.push(Cell {
                                        id,
                                        runbook: runbook.to_string(),
                                        source_fnv,
                                        scenario: name.clone(),
                                        tree: *tree,
                                        smr: *smr,
                                        mode: *mode,
                                        alloc: *alloc,
                                        threads: *spec,
                                        key_range,
                                        key_dist: *dist,
                                        arrival: *arrival,
                                        churn_every_ops: *churn,
                                        update_ratio,
                                        seed,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(cells)
}

/// The generated id: `sc_` prefix, then every axis as an id-safe token.
/// `nbr+` sanitizes to `nbrp` (ids are pinned lower_snake_case).
#[allow(clippy::too_many_arguments)]
fn cell_id(
    scenario: &str,
    smr: SmrKind,
    mode: FreeMode,
    tree: TreeKind,
    alloc: AllocatorKind,
    threads: ThreadSpec,
    dist: &KeyDist,
    arrival: &Arrival,
    churn: Option<u64>,
) -> String {
    let smr_tok = smr.base_name().replace('+', "p");
    let mut id = format!(
        "sc_{scenario}_{smr_tok}{}_{}_{}_{}_{}",
        mode.suffix(),
        tree.name(),
        alloc.name(),
        threads.token(),
        dist.token(),
    );
    if matches!(arrival, Arrival::Bursty { .. }) {
        id.push_str("_bu");
    }
    if let Some(c) = churn {
        id.push_str(&format!("_c{c}"));
    }
    id
}

/// Normalizes a scalar-or-list field to a slice of values.
fn scalar_or_list(v: &Json) -> Vec<&Json> {
    match v {
        Json::Arr(items) => items.iter().collect(),
        other => vec![other],
    }
}

/// Reads an optional string axis (scalar or list of strings).
fn axis_strings(sc: &Json, key: &str, what: &str) -> Result<Option<Vec<String>>, String> {
    let Some(v) = sc.get(key) else {
        return Ok(None);
    };
    let items = scalar_or_list(v);
    if items.is_empty() {
        return Err(format!("runbook: {what} must not be an empty list"));
    }
    items
        .iter()
        .map(|i| {
            i.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("runbook: {what} entries must be strings"))
        })
        .collect::<Result<Vec<_>, _>>()
        .map(Some)
}

fn parse_thread_spec(v: &Json, what: &str) -> Result<ThreadSpec, String> {
    if let Some(s) = v.as_str() {
        let m = s
            .strip_suffix('x')
            .and_then(|m| m.parse::<u32>().ok())
            .filter(|m| (1..=8).contains(m))
            .ok_or_else(|| {
                format!("runbook: {what}: '{s}' is not '<n>x' with n in 1..=8 (CPU multiple)")
            })?;
        return Ok(ThreadSpec::CpusTimes(m));
    }
    let n = u64_of(v, what)?;
    if !(1..=512).contains(&n) {
        return Err(format!("runbook: {what} must be in [1, 512], got {n}"));
    }
    Ok(ThreadSpec::Fixed(n as usize))
}

fn parse_key_dist(s: &str, what: &str) -> Result<KeyDist, String> {
    match s {
        "uniform" | "u" => Ok(KeyDist::Uniform),
        _ => {
            let theta = s
                .strip_prefix("zipf:")
                .and_then(|t| t.parse::<f64>().ok())
                .ok_or_else(|| {
                    format!("runbook: {what}: '{s}' is not 'uniform' or 'zipf:<theta>'")
                })?;
            if !(0.0..1.0).contains(&theta) {
                return Err(format!(
                    "runbook: {what}: zipf theta must be in [0, 1), got {theta}"
                ));
            }
            Ok(KeyDist::Zipf { theta })
        }
    }
}

fn parse_arrival(s: &str, what: &str) -> Result<Arrival, String> {
    if s == "steady" {
        return Ok(Arrival::Steady);
    }
    let parts: Vec<&str> = s.split(':').collect();
    if parts.len() == 3 && parts[0] == "bursty" {
        let on_ops = parts[1].parse::<u64>().ok().filter(|n| *n >= 64);
        let off_micros = parts[2].parse::<u64>().ok().filter(|n| *n <= 100_000);
        if let (Some(on_ops), Some(off_micros)) = (on_ops, off_micros) {
            return Ok(Arrival::Bursty { on_ops, off_micros });
        }
    }
    Err(format!(
        "runbook: {what}: '{s}' is not 'steady' or 'bursty:<on_ops>=64..:<off_micros><=100000'"
    ))
}

fn u64_of(v: &Json, what: &str) -> Result<u64, String> {
    let n = v
        .as_f64()
        .ok_or_else(|| format!("runbook: {what} must be a number"))?;
    if n < 0.0 || n.fract() != 0.0 || n >= 9_007_199_254_740_992.0 {
        return Err(format!(
            "runbook: {what} must be a non-negative integer, got {n}"
        ));
    }
    Ok(n as u64)
}

/// Id-safe = lower_snake_case: `[a-z0-9_]`, non-empty — the same
/// contract the CLI pins for builtin experiment ids.
fn require_id_safe(s: &str, what: &str) -> Result<(), String> {
    if s.is_empty() {
        return Err(format!("runbook: {what} must not be empty"));
    }
    if let Some(bad) = s
        .chars()
        .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_'))
    {
        return Err(format!(
            "runbook: {what} '{s}' contains '{bad}' — use lower_snake_case [a-z0-9_]"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Registry bridge
// ---------------------------------------------------------------------------

/// Loads the runbook named by `EPIC_RUNBOOK`. `Ok(None)` when the
/// variable is unset; `Err` when the file is unreadable or invalid
/// (callers that want a hard failure — `epic-run` startup — surface it;
/// the registry bridge degrades to builtins-only with a warning).
pub fn load_active_runbook() -> Result<Option<Runbook>, String> {
    let Some(path) = std::env::var_os(RUNBOOK_ENV) else {
        return Ok(None);
    };
    let path = Path::new(&path);
    let source = std::fs::read_to_string(path)
        .map_err(|e| format!("runbook: cannot read {}: {e}", path.display()))?;
    Runbook::parse(&source).map(Some)
}

/// The generated registry entries for the active runbook (empty when
/// `EPIC_RUNBOOK` is unset). A broken runbook warns once on stderr and
/// yields no cells — library callers keep working on builtins;
/// `epic-run` additionally hard-fails at startup via
/// [`load_active_runbook`].
pub fn generated_experiments() -> Vec<Experiment> {
    match load_active_runbook() {
        Ok(Some(rb)) => rb.experiments(),
        Ok(None) => Vec::new(),
        Err(e) => {
            static WARNED: AtomicBool = AtomicBool::new(false);
            if !WARNED.swap(true, Ordering::Relaxed) {
                eprintln!("warning: ignoring {RUNBOOK_ENV}: {e}");
            }
            Vec::new()
        }
    }
}

/// Synthesized oracles for the active runbook's cells, in registry
/// order (the oracle catalog appends these so "every experiment has
/// exactly one oracle" holds for runbooks too).
pub fn generated_oracles() -> Vec<Oracle> {
    oracles_for(&generated_experiments())
}

/// One synthesized oracle per generated experiment, in input order:
/// strict completeness checks (the trial ran, the determinism probe hit
/// its exact budget) plus an advisory throughput floor.
pub fn oracles_for(experiments: &[Experiment]) -> Vec<Oracle> {
    experiments
        .iter()
        .map(|e| {
            let runbook = match &e.origin {
                Origin::Runbook { runbook } => runbook.as_str(),
                Origin::Builtin => "?",
            };
            Oracle {
                experiment: e.id.clone(),
                claim: format!(
                    "runbook '{runbook}' cell completes its trials and its single-thread \
                     determinism probe records replayable counters"
                ),
                assertions: vec![
                    at_least("timed trial completed operations", "ops", 1.0),
                    at_least(
                        "determinism probe ran its fixed budget",
                        "det/ops",
                        DET_PROBE_OPS as f64,
                    )
                    .tol(0.0),
                    at_least("probe counters recorded", "det/allocs", 0.0),
                    at_least("throughput is positive", "mops", 0.0).advisory(),
                ],
            }
        })
        .collect()
}

/// Runs one cell: `EPIC_TRIALS` timed trials at the cell's resolved
/// thread count, then the single-thread determinism probe whose `det/*`
/// counters are the replay contract.
pub fn run_cell(cell: &Cell) -> ExperimentResult {
    let mut out = ExperimentResult::new(&cell.id);
    let threads = cell.threads.resolve();
    let trials = env_usize("EPIC_TRIALS", 1);
    let summary = run_trials(&cell.workload(threads), trials);
    out.metric("threads", threads as f64);
    out.metric("mops", summary.throughput.mean() / 1e6);
    out.metric("rel_ci95/mops", summary.throughput_rel_ci95());
    out.metric("ops", summary.last.ops as f64);
    out.metric("retired", summary.last.smr.retired as f64);
    out.metric("freed", summary.last.smr.freed as f64);
    out.metric("peak_mib", summary.peak_mib.mean());
    let det = run_trial(&cell.det_probe());
    out.metric("det/ops", det.ops as f64);
    out.metric("det/retired", det.smr.retired as f64);
    out.metric("det/freed", det.smr.freed as f64);
    out.metric("det/allocs", det.alloc.totals.allocs as f64);
    out.metric("det/deallocs", det.alloc.totals.deallocs as f64);
    println!(
        "scenario {}: {} threads, {:.2} Mops/s, det probe {} ops / {} retired / {} allocs",
        cell.id,
        threads,
        summary.throughput.mean() / 1e6,
        det.ops,
        det.smr.retired,
        det.alloc.totals.allocs,
    );
    out
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// FNV-1a with a caller-chosen offset basis (the second pass of the
/// 128-bit provenance digest uses a decorrelated basis).
fn fnv1a_seeded(basis: u64, s: &str) -> u64 {
    let mut h = basis;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `EPIC_*` variables excluded from the provenance digest: they steer
/// where artifacts land or how the queue logs rotate, never what a
/// trial measures. Everything else under `EPIC_` (scale, caps, seeds)
/// is included. `EPIC_RUNBOOK` itself is excluded because the digest
/// hashes the runbook *content* — the path it was read from is
/// machine-local noise.
const PROV_ENV_DENYLIST: &[&str] = &[
    "EPIC_RESULTS",
    "EPIC_RUNBOOK",
    "EPIC_JOB_LOG_KEEP",
    "EPIC_JOB_TIMEOUT_SECS",
    "EPIC_QUEUE_COMPACT_LINES",
];

/// The canonical preimage the provenance hash digests — one field per
/// line, `EPIC_*` overrides sorted by key (see DESIGN.md §12 for the
/// field list). Exposed so tests and docs can show exactly what is
/// hashed.
pub fn provenance_preimage(e: &Experiment) -> String {
    let (kind, runbook_fnv, seed) = match &e.run {
        ExperimentRun::Builtin(_) => ("builtin".to_string(), "-".to_string(), "-".to_string()),
        ExperimentRun::Scenario(cell) => (
            format!("runbook:{}", cell.runbook),
            format!("{:016x}", cell.source_fnv),
            format!("{}", cell.seed),
        ),
    };
    let mut env: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| {
            k.starts_with("EPIC_")
                && !PROV_ENV_DENYLIST.contains(&k.as_str())
                && !k.starts_with("EPIC_TEST_")
        })
        .collect();
    env.sort();
    let env_line = env
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(";");
    format!(
        "epic-prov-v1\nid={}\nkind={kind}\nrunbook_fnv={runbook_fnv}\nseed={seed}\n\
         toolchain={};pkg={}\ngit={}\nenv={env_line}\n",
        e.id,
        option_env!("RUSTUP_TOOLCHAIN").unwrap_or("-"),
        env!("CARGO_PKG_VERSION"),
        git_rev(),
    )
}

/// The 32-hex-digit provenance hash stamped into every
/// [`ExperimentResult`] the registry executes: two decorrelated FNV-1a
/// passes over [`provenance_preimage`]. Equal hashes ⇒ same experiment
/// identity, runbook source, seed, toolchain, git revision and
/// effective `EPIC_*` overrides — which is exactly the replay contract.
pub fn provenance_hash(e: &Experiment) -> String {
    let pre = provenance_preimage(e);
    format!(
        "{:016x}{:016x}",
        fnv1a_seeded(0xcbf2_9ce4_8422_2325, &pre),
        fnv1a_seeded(0xcbf2_9ce4_8422_2325 ^ 0x9E37_79B9_7F4A_7C15, &pre),
    )
}

/// The workspace's git revision, resolved once per process: reads
/// `.git/HEAD` (following one level of `ref:` indirection through loose
/// then packed refs) at the workspace root. `"nogit"` outside a
/// checkout — provenance stays total.
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        let git = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../.git");
        read_git_rev(&git).unwrap_or_else(|| "nogit".to_string())
    })
}

fn read_git_rev(git: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the line is the commit hash itself.
        return (head.len() == 40 && head.chars().all(|c| c.is_ascii_hexdigit()))
            .then(|| head.to_string());
    };
    if let Ok(loose) = std::fs::read_to_string(git.join(refname)) {
        return Some(loose.trim().to_string());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed.lines().find_map(|line| {
        line.split_once(' ')
            .filter(|(_, name)| name.trim() == refname)
            .map(|(hash, _)| hash.to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_runbook() -> String {
        r#"{
          "schema": "epic-runbook-v1",
          "name": "ut",
          "seed": 7,
          "scenarios": [
            {
              "name": "skew",
              "trees": "ab",
              "smrs": ["debra", "nbr+"],
              "modes": ["batch", "af"],
              "threads": 2,
              "key_range": 1024,
              "key_dists": ["uniform", "zipf:0.9"]
            },
            {
              "name": "churny",
              "trees": ["hm"],
              "smrs": "rcu",
              "threads": [1, "2x"],
              "churn_every_ops": [0, 2048],
              "arrivals": ["steady", "bursty:256:100"]
            }
          ]
        }"#
        .to_string()
    }

    #[test]
    fn parses_the_cross_product() {
        let rb = Runbook::parse(&smoke_runbook()).expect("valid runbook");
        assert_eq!(rb.name, "ut");
        assert_eq!(rb.seed, 7);
        // skew: 1 tree × 2 smrs × 2 modes × 1 alloc × 1 threads × 2 dists = 8
        // churny: 1 × 1 × 1 × 1 × 2 threads × 2 churns × 2 arrivals = 8
        assert_eq!(rb.cells.len(), 16);
        let ids: HashSet<_> = rb.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids.len(), 16, "ids are unique");
        // Ids are lower_snake_case even for nbr+.
        for c in &rb.cells {
            assert!(
                c.id.chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '_'),
                "id not lower_snake_case: {}",
                c.id
            );
        }
        assert!(ids.contains("sc_skew_nbrp_af_abtree_je_t2_z090"));
        assert!(ids.contains("sc_churny_rcu_hmlist_je_t2x_u_bu_c2048"));
    }

    #[test]
    fn seeds_derive_deterministically_and_decorrelate() {
        let a = Runbook::parse(&smoke_runbook()).unwrap();
        let b = Runbook::parse(&smoke_runbook()).unwrap();
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.id, cb.id);
            assert_eq!(ca.seed, cb.seed, "seed must be derived, not random");
        }
        let seeds: HashSet<_> = a.cells.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), a.cells.len(), "per-cell seeds decorrelate");
        // And the derivation matches the documented formula.
        let c = &a.cells[0];
        assert_eq!(c.seed, SplitMix64::new(7 ^ fnv1a(&c.id)).next_u64());
    }

    #[test]
    fn defaults_fill_optional_axes() {
        let rb = Runbook::parse(
            r#"{"schema": "epic-runbook-v1", "name": "d", "scenarios": [
                {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1}]}"#,
        )
        .unwrap();
        assert_eq!(rb.seed, 0);
        assert_eq!(rb.cells.len(), 1);
        let c = &rb.cells[0];
        assert_eq!(c.mode, FreeMode::Batch);
        assert_eq!(c.alloc, AllocatorKind::Je);
        assert_eq!(c.key_dist, KeyDist::Uniform);
        assert_eq!(c.arrival, Arrival::Steady);
        assert_eq!(c.churn_every_ops, None);
        assert_eq!(c.update_ratio, 1.0);
        assert_eq!(c.key_range, None);
        assert_eq!(c.id, "sc_s_debra_abtree_je_t1_u");
    }

    #[test]
    fn rejects_malformed_runbooks_with_errors_not_panics() {
        let cases: &[(&str, &str)] = &[
            ("", "json"),
            ("[]", "top level"),
            (
                r#"{"schema": "nope", "name": "x", "scenarios": []}"#,
                "schema",
            ),
            (r#"{"schema": "epic-runbook-v1", "scenarios": []}"#, "name"),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": []}"#,
                "empty",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "bogus": 1, "scenarios": [{}]}"#,
                "unknown top-level field",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1, "zz": 1}]}"#,
                "unknown field",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "nope", "smrs": "debra", "threads": 1}]}"#,
                "unknown tree",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1,
                     "key_dists": "zipf:1.0"}]}"#,
                "theta",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 9999}]}"#,
                "[1, 512]",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1,
                     "arrivals": "bursty:1:1"}]}"#,
                "bursty",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1,
                     "update_ratio": 1.5}]}"#,
                "[0, 1]",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "Bad Name", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1}]}"#,
                "lower_snake_case",
            ),
            (
                r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1},
                    {"name": "s", "trees": "ab", "smrs": "debra", "threads": 1}]}"#,
                "duplicate cell id",
            ),
        ];
        for (src, needle) in cases {
            let err = Runbook::parse(src).expect_err(&format!("should reject {src:?}"));
            assert!(
                err.contains(needle),
                "error for {src:?} should mention '{needle}', got: {err}"
            );
        }
    }

    #[test]
    fn oversized_cross_products_are_rejected() {
        // 4 trees × 13 smrs × 5 modes × 5 allocs = 1300 > 512.
        let src = r#"{"schema": "epic-runbook-v1", "name": "x", "scenarios": [
            {"name": "s",
             "trees": ["ab", "occ", "dgt", "hm"],
             "smrs": ["none", "qsbr", "rcu", "debra", "token_naive", "token_passfirst",
                      "token", "hp", "he", "ibr", "nbr", "nbr+", "wfe"],
             "modes": ["batch", "af", "bg", "pool", "adapt"],
             "allocs": ["je", "je_incr", "tc", "mi", "sys"],
             "threads": 1}]}"#;
        let err = Runbook::parse(src).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn thread_spec_tokens_and_resolution() {
        assert_eq!(ThreadSpec::Fixed(4).token(), "t4");
        assert_eq!(ThreadSpec::CpusTimes(2).token(), "t2x");
        assert_eq!(ThreadSpec::Fixed(4).resolve(), 4);
        let cpus = Topology::detect().logical_cpus;
        assert_eq!(ThreadSpec::CpusTimes(2).resolve(), (cpus * 2).max(1));
    }

    #[test]
    fn cell_workload_carries_every_axis() {
        let rb = Runbook::parse(&smoke_runbook()).unwrap();
        let cell = rb
            .cells
            .iter()
            .find(|c| c.id == "sc_churny_rcu_hmlist_je_t1_u_bu_c2048")
            .expect("cell exists");
        let cfg = cell.workload(cell.threads.resolve());
        assert_eq!(cfg.seed, cell.seed);
        assert_eq!(cfg.churn_every_ops, Some(2048));
        assert_eq!(
            cfg.arrival,
            Arrival::Bursty {
                on_ops: 256,
                off_micros: 100
            }
        );
        // det probe: same stream-shaping knobs, fixed budget, one thread,
        // steady arrival.
        let det = cell.det_probe();
        assert_eq!(det.threads, 1);
        assert_eq!(det.op_budget, Some(DET_PROBE_OPS));
        assert_eq!(det.arrival, Arrival::Steady);
        assert_eq!(det.seed, cell.seed);
        assert_eq!(det.churn_every_ops, Some(2048));
    }

    #[test]
    fn provenance_hash_is_stable_and_discriminating() {
        let _guard = crate::report::env_lock();
        let rb = Runbook::parse(&smoke_runbook()).unwrap();
        let exps = rb.experiments();
        let h0 = provenance_hash(&exps[0]);
        assert_eq!(h0.len(), 32);
        assert!(h0.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(h0, provenance_hash(&exps[0]), "hash is deterministic");
        assert_ne!(h0, provenance_hash(&exps[1]), "cells get distinct hashes");
        // The preimage documents its fields.
        let pre = provenance_preimage(&exps[0]);
        assert!(pre.contains("epic-prov-v1"));
        assert!(pre.contains(&format!("id={}", exps[0].id)));
        assert!(pre.contains("kind=runbook:ut"));
        assert!(pre.contains(&format!("runbook_fnv={:016x}", rb.source_fnv)));
        assert!(pre.contains("git="));
    }

    #[test]
    fn provenance_tracks_epic_env_overrides() {
        let _guard = crate::report::env_lock();
        let rb = Runbook::parse(&smoke_runbook()).unwrap();
        let e = &rb.experiments()[0];
        std::env::remove_var("EPIC_PROV_PROBE");
        let before = provenance_hash(e);
        std::env::set_var("EPIC_PROV_PROBE", "1");
        let with_knob = provenance_hash(e);
        std::env::remove_var("EPIC_PROV_PROBE");
        assert_ne!(before, with_knob, "EPIC_* overrides must change the hash");
        assert_eq!(before, provenance_hash(e), "and removal restores it");
        // Denylisted keys (artifact paths etc.) do NOT change the hash.
        let had = std::env::var("EPIC_RESULTS").ok();
        std::env::set_var("EPIC_RESULTS", "/tmp/elsewhere-prov-test");
        let moved = provenance_hash(e);
        match had {
            Some(v) => std::env::set_var("EPIC_RESULTS", v),
            None => std::env::remove_var("EPIC_RESULTS"),
        }
        assert_eq!(before, moved, "EPIC_RESULTS is provenance-neutral");
    }

    #[test]
    fn provenance_distinguishes_runbook_content() {
        let _guard = crate::report::env_lock();
        let a = Runbook::parse(&smoke_runbook()).unwrap();
        // Same ids, different seed ⇒ different source ⇒ different hashes.
        let b = Runbook::parse(&smoke_runbook().replace("\"seed\": 7", "\"seed\": 8")).unwrap();
        assert_eq!(a.cells[0].id, b.cells[0].id);
        assert_ne!(
            provenance_hash(&a.experiments()[0]),
            provenance_hash(&b.experiments()[0])
        );
    }

    #[test]
    fn git_rev_resolves_in_this_checkout() {
        let rev = git_rev();
        assert!(!rev.is_empty());
        // In the repo this resolves to a 40-hex commit; elsewhere "nogit".
        assert!(
            rev == "nogit" || (rev.len() == 40 && rev.chars().all(|c| c.is_ascii_hexdigit())),
            "unexpected rev: {rev}"
        );
    }

    #[test]
    fn synthesized_oracles_match_experiments_in_order() {
        let rb = Runbook::parse(&smoke_runbook()).unwrap();
        let exps = rb.experiments();
        let oracles = oracles_for(&exps);
        assert_eq!(oracles.len(), exps.len());
        for (o, e) in oracles.iter().zip(&exps) {
            assert_eq!(o.experiment, e.id, "oracle order mirrors registry order");
            assert!(!o.claim.is_empty());
            assert!(o.claim.contains("runbook 'ut'"));
            assert!(
                o.assertions
                    .iter()
                    .any(|a| a.tier == crate::oracle::Tier::Strict),
                "every generated oracle needs a strict assertion"
            );
        }
    }
}
