//! Table + artifact output, and the structured [`ExperimentResult`] every
//! experiment returns.
//!
//! Every experiment prints an aligned table (the rows/series of the
//! corresponding paper table/figure), writes CSV/SVG artifacts under
//! [`results_dir`], **and** records named scalar metrics + named series
//! into an [`ExperimentResult`] — the machine-readable shape the oracle
//! layer (`crate::oracle`) asserts against.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The artifact output directory: `EPIC_RESULTS` if set, else `results/`
/// at the workspace root. Anchoring at the workspace (not the CWD)
/// matters because cargo runs bench targets with the *package* directory
/// as CWD — a relative default would scatter artifacts into
/// `crates/bench/results/` while `epic-run` writes to the root.
pub fn results_dir() -> PathBuf {
    let path = match std::env::var("EPIC_RESULTS") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results"),
    };
    let _ = std::fs::create_dir_all(&path);
    path
}

/// The structured outcome of one experiment: named scalar metrics and
/// named series, recorded alongside (not instead of) the human-readable
/// prints. Metric names are stable slash-separated keys
/// (`"mops/je/af"`, `"garbage/batch/peaks"`); series hold y values in
/// presentation order (thread sweeps, epoch time, ...).
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// The experiment id (matches the registry).
    pub id: String,
    /// Provenance hash (32 hex chars) identifying exactly what produced
    /// this result: experiment identity, runbook source, seed, toolchain,
    /// git revision, and the effective `EPIC_*` overrides. Stamped by
    /// [`Experiment::execute`](crate::experiments::Experiment::execute)
    /// for every run — builtin or runbook-generated — so any row in a
    /// `SHAPES.json` can be replayed from its hash alone
    /// (`epic-run replay <hash>`). `None` only for results constructed
    /// outside the registry (unit tests, ad-hoc drivers).
    pub provenance: Option<String>,
    metrics: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<f64>>,
}

impl ExperimentResult {
    /// An empty result for `id`.
    pub fn new(id: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            ..Default::default()
        }
    }

    /// Records (or overwrites) a named scalar metric.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.insert(name.into(), value);
    }

    /// Appends one value to a named series (created on first push).
    pub fn push(&mut self, series: impl Into<String>, value: f64) {
        self.series.entry(series.into()).or_default().push(value);
    }

    /// Replaces a named series wholesale.
    pub fn set_series(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.series.insert(name.into(), values);
    }

    /// Looks up a scalar metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// Looks up a series.
    pub fn get_series(&self, name: &str) -> Option<&[f64]> {
        self.series.get(name).map(Vec::as_slice)
    }

    /// All metrics, sorted by name.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }

    /// All series, sorted by name.
    pub fn series(&self) -> &BTreeMap<String, Vec<f64>> {
        &self.series
    }

    /// The result as a JSON object (`NaN`/infinite values become `null`,
    /// keeping the output strictly parseable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n      \"id\": ");
        push_json_str(&mut out, &self.id);
        if let Some(p) = &self.provenance {
            out.push_str(",\n      \"provenance\": ");
            push_json_str(&mut out, p);
        }
        out.push_str(",\n      \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n        ");
            push_json_str(&mut out, k);
            out.push_str(": ");
            out.push_str(&json_num(*v));
        }
        out.push_str("\n      },\n      \"series\": {");
        for (i, (k, vs)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n        ");
            push_json_str(&mut out, k);
            out.push_str(": [");
            for (j, v) in vs.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&json_num(*v));
            }
            out.push(']');
        }
        out.push_str("\n      }\n    }");
        out
    }
}

/// Formats an `f64` as a JSON number (`null` for NaN/±inf). Delegates
/// to [`epic_util::json::render_num`] so every writer in the workspace
/// shares one number convention (and the parser's round trip holds).
pub fn json_num(v: f64) -> String {
    epic_util::json::render_num(v)
}

/// Appends a JSON string literal (quotes + escapes). Delegates to
/// [`epic_util::json::push_str_literal`] — one escape rule everywhere.
pub fn push_json_str(out: &mut String, s: &str) {
    epic_util::json::push_str_literal(out, s);
}

/// A simple aligned table with CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table/figure identifier (e.g. `table1_je_overhead`).
    pub id: String,
    /// Human title.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// [`emit`](Self::emit), plus records the table's shape into a
    /// structured result: `rows/<table id>` (row count) and
    /// `cols/<table id>` (column count). Oracles use these as noise-free
    /// completeness checks — "the experiment produced its full grid".
    pub fn emit_into(&self, result: &mut ExperimentResult) {
        self.emit();
        result.metric(format!("rows/{}", self.id), self.rows.len() as f64);
        result.metric(format!("cols/{}", self.id), self.headers.len() as f64);
    }

    /// Prints to stdout and writes `<results>/<id>.csv`.
    pub fn emit(&self) {
        println!("{}", self.render());
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = results_dir().join(format!("{}.csv", self.id));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Formats ops/s as the paper does (e.g. `43.4M`).
pub fn fmt_mops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.1}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}K", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

/// Formats a count (`114M`, `32K`, ...).
pub fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

/// Serializes tests that mutate the `EPIC_RESULTS` process environment
/// (report + oracle artifact tests share one process).
#[cfg(test)]
pub(crate) fn env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_alignment() {
        let mut t = Table::new("t", "demo", &["a", "header"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["1000".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal length (alignment).
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mops(43_400_000.0), "43.4M");
        assert_eq!(fmt_mops(12_300.0), "12.3K");
        assert_eq!(fmt_mops(99.0), "99");
        assert_eq!(fmt_count(114_000_000), "114M");
        assert_eq!(fmt_count(32_768), "33K");
        assert_eq!(fmt_count(7), "7");
    }

    /// Golden snapshot of [`Table::render`]: pins the exact alignment,
    /// separator width, and header layout so oracle-driven refactors
    /// can't silently change the human-readable reports.
    #[test]
    fn table_render_golden() {
        let mut t = Table::new("tg", "golden", &["name", "Mops/s"]);
        t.row(vec!["debra".into(), "43.4M".into()]);
        t.row(vec!["token_af".into(), "111.3M".into()]);
        let expected = "== tg — golden\n\
                        \x20   name  Mops/s\n\
                        ----------------\n\
                        \x20  debra   43.4M\n\
                        token_af  111.3M\n";
        assert_eq!(t.render(), expected);
    }

    /// Pins `fmt_mops`/`fmt_count` edge cases: zero, sub-1.0, the ≥1e9
    /// band (stays in `M`, no `G` unit), and NaN (formats as literal
    /// `NaN` — never panics, never produces a unit suffix).
    #[test]
    fn formatting_edge_cases() {
        assert_eq!(fmt_mops(0.0), "0");
        assert_eq!(fmt_mops(0.4), "0");
        assert_eq!(fmt_mops(999.4), "999");
        assert_eq!(fmt_mops(1_000.0), "1.0K");
        assert_eq!(fmt_mops(2.5e9), "2500.0M");
        assert_eq!(fmt_mops(f64::NAN), "NaN");
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1K");
        assert_eq!(fmt_count(1_500_000_000), "1500M");
    }

    #[test]
    fn experiment_result_metrics_and_series() {
        let mut r = ExperimentResult::new("demo");
        r.metric("mops/af", 4.25);
        r.push("ratios", 1.5);
        r.push("ratios", 2.5);
        assert_eq!(r.get("mops/af"), Some(4.25));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.get_series("ratios"), Some(&[1.5, 2.5][..]));
        assert_eq!(r.get_series("missing"), None);
        r.set_series("ratios", vec![9.0]);
        assert_eq!(r.get_series("ratios"), Some(&[9.0][..]));
        // Overwrite semantics for metrics.
        r.metric("mops/af", 5.0);
        assert_eq!(r.get("mops/af"), Some(5.0));
    }

    #[test]
    fn experiment_result_json_handles_nan_and_escapes() {
        let mut r = ExperimentResult::new("j\"id");
        r.metric("ok", 2.0);
        r.metric("bad", f64::NAN);
        r.push("s", 1.0);
        r.push("s", f64::INFINITY);
        let json = r.to_json();
        assert!(json.contains("\"j\\\"id\""), "id must be escaped: {json}");
        assert!(json.contains("\"ok\": 2.0"));
        assert!(json.contains("\"bad\": null"));
        assert!(json.contains("[1.0, null]"));
        assert!(!json.contains("NaN"));
        assert!(!json.contains("inf"));
        // No provenance stamped => no provenance key at all.
        assert!(!json.contains("provenance"));
    }

    #[test]
    fn experiment_result_json_carries_provenance_when_stamped() {
        let mut r = ExperimentResult::new("p");
        r.provenance = Some("deadbeef".repeat(4));
        let json = r.to_json();
        assert!(
            json.contains(&format!("\"provenance\": \"{}\"", "deadbeef".repeat(4))),
            "{json}"
        );
    }

    #[test]
    fn emit_into_records_grid_shape() {
        let _guard = super::env_lock();
        let dir = std::env::temp_dir().join("epic_report_test");
        std::env::set_var("EPIC_RESULTS", &dir);
        let mut t = Table::new("grid_test", "demo", &["a", "b", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["4".into(), "5".into(), "6".into()]);
        let mut r = ExperimentResult::new("grid_test");
        t.emit_into(&mut r);
        std::env::remove_var("EPIC_RESULTS");
        assert_eq!(r.get("rows/grid_test"), Some(2.0));
        assert_eq!(r.get("cols/grid_test"), Some(3.0));
        let csv = std::fs::read_to_string(dir.join("grid_test.csv")).expect("csv written");
        assert_eq!(csv, "a,b,c\n1,2,3\n4,5,6\n");
    }
}
