//! Table + artifact output.
//!
//! Every experiment prints an aligned table (the rows/series of the
//! corresponding paper table/figure) and writes CSV/SVG artifacts under
//! [`results_dir`].

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The artifact output directory: `EPIC_RESULTS` if set, else `results/`
/// at the workspace root. Anchoring at the workspace (not the CWD)
/// matters because cargo runs bench targets with the *package* directory
/// as CWD — a relative default would scatter artifacts into
/// `crates/bench/results/` while `epic-run` writes to the root.
pub fn results_dir() -> PathBuf {
    let path = match std::env::var("EPIC_RESULTS") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results"),
    };
    let _ = std::fs::create_dir_all(&path);
    path
}

/// A simple aligned table with CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table/figure identifier (e.g. `table1_je_overhead`).
    pub id: String,
    /// Human title.
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout and writes `<results>/<id>.csv`.
    pub fn emit(&self) {
        println!("{}", self.render());
        let mut csv = self.headers.join(",");
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        let path = results_dir().join(format!("{}.csv", self.id));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
    }
}

/// Formats ops/s as the paper does (e.g. `43.4M`).
pub fn fmt_mops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.1}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}K", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

/// Formats a count (`114M`, `32K`, ...).
pub fn fmt_count(n: u64) -> String {
    if n >= 1_000_000 {
        format!("{:.0}M", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.0}K", n as f64 / 1e3)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_and_alignment() {
        let mut t = Table::new("t", "demo", &["a", "header"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["1000".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines equal length (alignment).
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_mops(43_400_000.0), "43.4M");
        assert_eq!(fmt_mops(12_300.0), "12.3K");
        assert_eq!(fmt_mops(99.0), "99");
        assert_eq!(fmt_count(114_000_000), "114M");
        assert_eq!(fmt_count(32_768), "33K");
        assert_eq!(fmt_count(7), "7");
    }
}
