//! Workload configuration.

use epic_alloc::{AllocatorKind, CostModel};
use epic_ds::TreeKind;
use epic_smr::{FreeMode, SmrKind};
use epic_util::topology::{env_u64, env_usize};
use epic_util::Topology;

/// How workload keys are drawn from the key range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Uniform over `[0, key_range)` — the paper's workload.
    Uniform,
    /// Zipf-skewed with parameter `theta` in `[0, 1)` (see
    /// [`epic_util::Zipfian`]); ranks are scattered over the key space.
    Zipf {
        /// Skew: 0 ≈ uniform, 0.99 = the YCSB hot-spot default.
        theta: f64,
    },
}

impl KeyDist {
    /// A short id token (`"u"`, `"z099"`), used in generated scenario ids.
    pub fn token(&self) -> String {
        match self {
            KeyDist::Uniform => "u".to_string(),
            KeyDist::Zipf { theta } => format!("z{:03}", (theta * 100.0).round() as u32),
        }
    }
}

/// When operations arrive at the structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Back-to-back operations (the paper's workload).
    Steady,
    /// Duty-cycled bursts: each worker performs `on_ops` operations,
    /// then idles `off_micros` before the next burst. Op-count based
    /// (not timer based) so budgeted trials stay deterministic.
    Bursty {
        /// Operations per burst.
        on_ops: u64,
        /// Idle gap between bursts, in microseconds.
        off_micros: u64,
    },
}

/// Everything one trial needs.
#[derive(Clone)]
pub struct WorkloadCfg {
    /// Which tree to benchmark.
    pub tree: TreeKind,
    /// Which reclamation scheme.
    pub smr_kind: SmrKind,
    /// Batch vs amortized freeing. `None` = amortized with the tree's
    /// matched drain rate (`frees_per_delete_hint`, the §7 guidance).
    pub free_mode: FreeMode,
    /// Which allocator model.
    pub alloc_kind: AllocatorKind,
    /// Allocator cost model.
    pub cost: CostModel,
    /// Worker thread count.
    pub threads: usize,
    /// Measured duration.
    pub millis: u64,
    /// Key range; steady-state size ≈ half.
    pub key_range: u64,
    /// Prefill to steady state before measuring.
    pub prefill: bool,
    /// Limbo-bag capacity for threshold schemes.
    pub bag_cap: usize,
    /// Amortized-free backlog cap (the relief valve; see
    /// `epic_smr::SmrConfig::af_backlog_cap`). Defaults to `4 * bag_cap`
    /// so the valve only opens on genuine bursts, overridable with
    /// `EPIC_AF_BACKLOG_CAP`.
    pub af_backlog_cap: usize,
    /// DEBRA's k (announcement-scan amortization).
    pub epoch_check_every: usize,
    /// Periodic Token-EBR's check interval.
    pub token_check_every: usize,
    /// Record timeline events (BatchFree, epoch dots, ...).
    pub record_timeline: bool,
    /// Record individual free calls at least this long (ns);
    /// `u64::MAX` = off.
    pub free_call_record_ns: u64,
    /// Collect the per-epoch garbage series.
    pub garbage_series: bool,
    /// Thread-cache capacity override for Je/Tc models (ablations).
    pub tcache_cap: Option<usize>,
    /// Fraction of operations that are updates (insert/delete); the rest
    /// are lookups. The paper's workload is all-updates (1.0).
    pub update_ratio: f64,
    /// Fault injection: thread 0 periodically stalls *inside* an
    /// operation for `(stall_every_ms, stall_for_ms)` — the delayed-thread
    /// scenario EBR is famously sensitive to (§3.1's citation of \[35,37\]).
    pub stall: Option<(u64, u64)>,
    /// Fixed per-thread operation budget. When set, each worker performs
    /// exactly this many operations (rounded up to the 64-op inner-loop
    /// granularity) instead of running for `millis` — the time slicer is
    /// bypassed entirely, so a single-threaded trial with a fixed seed is
    /// bit-for-bit reproducible (the determinism the oracle CI relies on).
    pub op_budget: Option<u64>,
    /// Trial seed, XOR-mixed into every worker's per-thread RNG seed.
    /// 0 (the default) reproduces the pre-scenario per-thread streams
    /// bit for bit; scenario cells derive a distinct value from the
    /// runbook seed (see `crate::scenario`).
    pub seed: u64,
    /// Key distribution (uniform or Zipf-skewed).
    pub key_dist: KeyDist,
    /// Arrival pattern (steady or duty-cycled bursts).
    pub arrival: Arrival,
    /// Handle churn: every worker detaches its [`epic_smr::SmrHandle`]
    /// and re-registers after this many operations — the register/detach
    /// storm scenario the hand-coded experiments cannot express.
    pub churn_every_ops: Option<u64>,
}

impl WorkloadCfg {
    /// The standard configuration for a scheme/tree pair at a thread
    /// count, with environment-driven scale.
    pub fn new(tree: TreeKind, smr_kind: SmrKind, threads: usize) -> Self {
        let bag_cap = env_usize("EPIC_BAG_CAP", 4096);
        WorkloadCfg {
            tree,
            smr_kind,
            free_mode: FreeMode::Batch,
            alloc_kind: AllocatorKind::Je,
            cost: CostModel::default_for_machine(),
            threads,
            millis: env_u64("EPIC_MILLIS", 200),
            key_range: env_u64("EPIC_KEYRANGE", 16_384),
            prefill: true,
            bag_cap,
            af_backlog_cap: env_usize("EPIC_AF_BACKLOG_CAP", bag_cap * 4),
            epoch_check_every: 100,
            token_check_every: 100,
            record_timeline: false,
            free_call_record_ns: u64::MAX,
            garbage_series: false,
            tcache_cap: None,
            update_ratio: 1.0,
            stall: None,
            op_budget: None,
            seed: 0,
            key_dist: KeyDist::Uniform,
            arrival: Arrival::Steady,
            churn_every_ops: None,
        }
    }

    /// Runs a fixed number of operations per thread instead of a timed
    /// slice (see [`WorkloadCfg::op_budget`]).
    pub fn with_op_budget(mut self, ops: u64) -> Self {
        self.op_budget = Some(ops);
        self
    }

    /// Sets the trial seed (see [`WorkloadCfg::seed`]).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the key distribution.
    pub fn with_key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Sets the arrival pattern.
    pub fn with_arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Enables handle churn every `ops` operations.
    pub fn with_churn(mut self, ops: u64) -> Self {
        self.churn_every_ops = Some(ops.max(1));
        self
    }

    /// Switches to amortized freeing. The drain is coupled to
    /// *allocations* (one queued free per fresh block, see
    /// `epic_smr::SchemeCommon::tick`), which self-balances even for the
    /// DGT tree's 2-frees-per-delete profile (its inserts allocate two
    /// nodes), so `per_op = 1` is correct for every tree here.
    pub fn amortized(mut self) -> Self {
        self.free_mode = FreeMode::Amortized { per_op: 1 };
        self
    }

    /// Switches to pooled freeing (object pooling — the §3.3/footnote-4
    /// optimization the paper declines; see `ablation_pooled`).
    pub fn pooled(mut self) -> Self {
        self.free_mode = FreeMode::Pooled;
        self
    }

    /// Switches to the adaptive batch-free controller (the `_adapt`
    /// variant: `bag_cap` becomes the controller's initial operating
    /// point).
    pub fn adaptive(mut self) -> Self {
        self.free_mode = FreeMode::Adaptive;
        self
    }

    /// Explicit free mode.
    pub fn with_mode(mut self, mode: FreeMode) -> Self {
        self.free_mode = mode;
        self
    }

    /// Overrides the amortized-free backlog cap (relief valve).
    pub fn with_af_backlog_cap(mut self, cap: usize) -> Self {
        self.af_backlog_cap = cap;
        self
    }

    /// Chooses the allocator model.
    pub fn with_alloc(mut self, kind: AllocatorKind) -> Self {
        self.alloc_kind = kind;
        self
    }

    /// Enables timeline recording.
    pub fn with_timeline(mut self) -> Self {
        self.record_timeline = true;
        self
    }

    /// Enables per-free-call recording above `ns`.
    pub fn with_free_calls(mut self, ns: u64) -> Self {
        self.record_timeline = true;
        self.free_call_record_ns = ns;
        self
    }

    /// Enables the garbage series.
    pub fn with_garbage_series(mut self) -> Self {
        self.garbage_series = true;
        self
    }

    /// The scheme's display name under this free mode.
    pub fn scheme_label(&self) -> String {
        format!("{}{}", self.smr_kind.base_name(), self.free_mode.suffix())
    }
}

/// Environment-scaled experiment dimensions shared by the experiment
/// drivers.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Thread counts for sweep experiments.
    pub sweep: Vec<usize>,
    /// The "192 threads" point (most oversubscribed).
    pub max_threads: usize,
    /// The "96 threads" point.
    pub mid_threads: usize,
    /// Trials per data point.
    pub trials: usize,
}

impl ExperimentScale {
    /// Reads the scale from topology + environment.
    pub fn detect() -> Self {
        let topo = Topology::detect();
        let sweep = topo.sweep_threads();
        ExperimentScale {
            max_threads: *sweep.last().unwrap(),
            mid_threads: sweep[sweep.len().saturating_sub(2).min(sweep.len() - 1)],
            sweep,
            trials: env_usize("EPIC_TRIALS", 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortized_uses_alloc_coupled_drain() {
        let ab = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, 2).amortized();
        assert_eq!(ab.free_mode, FreeMode::Amortized { per_op: 1 });
        // Drain is coupled to allocations, so per_op stays 1 even for the
        // DGT tree (2 frees/delete, but also 2 allocs/insert).
        let dgt = WorkloadCfg::new(TreeKind::Dgt, SmrKind::Debra, 2).amortized();
        assert_eq!(dgt.free_mode, FreeMode::Amortized { per_op: 1 });
        assert_eq!(dgt.scheme_label(), "debra_af");
    }

    #[test]
    fn adaptive_label_and_backlog_knob() {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::TokenPeriodic, 2).adaptive();
        assert_eq!(cfg.free_mode, FreeMode::Adaptive);
        assert_eq!(cfg.scheme_label(), "token_adapt");
        // The relief valve has its own knob, independent of bag_cap.
        if std::env::var("EPIC_AF_BACKLOG_CAP").is_err() {
            assert_eq!(cfg.af_backlog_cap, cfg.bag_cap * 4);
        }
        let cfg = cfg.with_af_backlog_cap(99);
        assert_eq!(cfg.af_backlog_cap, 99);
    }

    #[test]
    fn scenario_knobs_default_to_paper_workload() {
        let cfg = WorkloadCfg::new(TreeKind::Ab, SmrKind::Debra, 2);
        assert_eq!(cfg.seed, 0);
        assert_eq!(cfg.key_dist, KeyDist::Uniform);
        assert_eq!(cfg.arrival, Arrival::Steady);
        assert_eq!(cfg.churn_every_ops, None);
        let cfg = cfg
            .with_seed(7)
            .with_key_dist(KeyDist::Zipf { theta: 0.99 })
            .with_arrival(Arrival::Bursty {
                on_ops: 256,
                off_micros: 50,
            })
            .with_churn(0);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.key_dist, KeyDist::Zipf { theta: 0.99 });
        // churn 0 clamps to 1 (detach storms, not a division by zero).
        assert_eq!(cfg.churn_every_ops, Some(1));
    }

    #[test]
    fn key_dist_tokens_are_id_safe() {
        assert_eq!(KeyDist::Uniform.token(), "u");
        assert_eq!(KeyDist::Zipf { theta: 0.99 }.token(), "z099");
        assert_eq!(KeyDist::Zipf { theta: 0.5 }.token(), "z050");
        for dist in [KeyDist::Uniform, KeyDist::Zipf { theta: 0.75 }] {
            assert!(dist
                .token()
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn scale_is_consistent() {
        let s = ExperimentScale::detect();
        assert!(!s.sweep.is_empty());
        assert_eq!(s.max_threads, *s.sweep.last().unwrap());
        assert!(s.trials >= 1);
    }
}
