//! `epic-run bench-diff`: the microbench regression gate.
//!
//! Compares two `BENCH_*.json` artifacts (the committed baseline vs a
//! fresh run) scheme by scheme and fails when either
//!
//! * a **timing** metric (any field containing `ns_per`) regresses by
//!   more than the allowed fraction, or
//! * an **allocation** metric (any field containing `alloc`) leaves the
//!   allocation-free regime — the zero-allocs-per-op guarantees of the
//!   retire pipeline and the handle path are binary, so a baseline of
//!   ~0 that becomes non-zero fails regardless of the percentage knob.
//!
//! Improvements never fail, schemes added in the current file are
//! ignored, and a scheme that *disappears* is a failure (a silently
//! dropped bench row is how coverage rots).

use crate::report::Table;
use epic_util::json::Json;

/// Allocation metrics are "zero" below this absolute level. The counting
/// allocator reports a few 1e-4-scale allocs/op of legitimate warm-up
/// (chunk-store growth in the `none` scheme); 1e-3 cleanly separates
/// that from a real per-op allocation (≥ ~1e-2 in practice).
const ALLOC_EPS: f64 = 1e-3;

/// One metric comparison.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// Scheme name (`"debra"`, `"nbr+"`, ...).
    pub scheme: String,
    /// Metric field name (`"get_ns_per_op"`, ...).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub cur: f64,
    /// `Some(reason)` when this row regressed.
    pub regression: Option<String>,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct BenchDiff {
    /// All compared rows, baseline order.
    pub rows: Vec<DiffRow>,
    /// Failures that are not per-metric (disappeared schemes).
    pub structural: Vec<String>,
}

impl BenchDiff {
    /// All regression descriptions, structural first.
    pub fn regressions(&self) -> Vec<String> {
        let mut out = self.structural.clone();
        out.extend(self.rows.iter().filter_map(|r| {
            r.regression
                .as_ref()
                .map(|why| format!("{}/{}: {why}", r.scheme, r.metric))
        }));
        out
    }

    /// Renders the comparison as an aligned table.
    pub fn render(&self, max_regress: f64) -> String {
        let mut t = Table::new(
            "bench_diff",
            &format!(
                "baseline vs current (max ns/op regression {:.0}%)",
                max_regress * 100.0
            ),
            &[
                "scheme", "metric", "baseline", "current", "delta", "verdict",
            ],
        );
        for r in &self.rows {
            let delta = if r.base.abs() > f64::EPSILON {
                format!("{:+.1}%", (r.cur / r.base - 1.0) * 100.0)
            } else if r.cur.abs() <= f64::EPSILON {
                "0.0%".to_string()
            } else {
                "new".to_string()
            };
            t.row(vec![
                r.scheme.clone(),
                r.metric.clone(),
                format!("{:.3}", r.base),
                format!("{:.3}", r.cur),
                delta,
                match &r.regression {
                    Some(_) => "REGRESS".to_string(),
                    None => "ok".to_string(),
                },
            ]);
        }
        t.render()
    }
}

/// One scheme's name plus its numeric metric fields.
type SchemeMetrics = (String, Vec<(String, f64)>);

fn schemes_of(doc: &Json, which: &str) -> Result<Vec<SchemeMetrics>, String> {
    let arr = doc
        .get("schemes")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("bench-diff: {which} file has no \"schemes\" array"))?;
    let mut out = Vec::new();
    for entry in arr {
        let name = entry
            .get("scheme")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("bench-diff: {which} file has a scheme entry without a name"))?;
        let mut metrics = Vec::new();
        for (k, v) in entry.as_obj().into_iter().flatten() {
            if let Json::Num(n) = v {
                if k != "scheme" {
                    metrics.push((k.clone(), *n));
                }
            }
        }
        out.push((name.to_string(), metrics));
    }
    Ok(out)
}

/// Compares two bench JSON texts. `max_regress` is the allowed
/// fractional ns/op slowdown (0.15 = 15%).
pub fn diff(baseline: &str, current: &str, max_regress: f64) -> Result<BenchDiff, String> {
    let base = schemes_of(
        &Json::parse(baseline).map_err(|e| format!("baseline: {e}"))?,
        "baseline",
    )?;
    let cur = schemes_of(
        &Json::parse(current).map_err(|e| format!("current: {e}"))?,
        "current",
    )?;
    let mut rows = Vec::new();
    let mut structural = Vec::new();
    for (scheme, base_metrics) in &base {
        let Some((_, cur_metrics)) = cur.iter().find(|(s, _)| s == scheme) else {
            structural.push(format!(
                "scheme '{scheme}' disappeared from the current file"
            ));
            continue;
        };
        for (metric, b) in base_metrics {
            let Some((_, c)) = cur_metrics.iter().find(|(m, _)| m == metric) else {
                structural.push(format!("metric '{scheme}/{metric}' disappeared"));
                continue;
            };
            let regression = if metric.contains("alloc") {
                // Binary gate: allocation-free must stay allocation-free.
                // Non-zero baselines (e.g. `none`'s chunk-store growth)
                // fall back to the percentage rule above the noise floor.
                if *b <= ALLOC_EPS && *c > ALLOC_EPS {
                    Some(format!(
                        "was allocation-free ({b:.6}), now allocates ({c:.6})"
                    ))
                } else if *b > ALLOC_EPS && *c > b * (1.0 + max_regress) + ALLOC_EPS {
                    Some(format!("allocs/op {b:.6} -> {c:.6}"))
                } else {
                    None
                }
            } else if metric.contains("ns_per") && *c > b * (1.0 + max_regress) {
                Some(format!(
                    "{b:.3} -> {c:.3} ns (+{:.1}%, limit {:.0}%)",
                    (c / b - 1.0) * 100.0,
                    max_regress * 100.0
                ))
            } else {
                None
            };
            rows.push(DiffRow {
                scheme: scheme.clone(),
                metric: metric.clone(),
                base: *b,
                cur: *c,
                regression,
            });
        }
    }
    Ok(BenchDiff { rows, structural })
}

/// Parses a `--max-regress` argument: `15%`, `0.15`, or `15` (≥ 1 is
/// read as a percentage).
pub fn parse_max_regress(s: &str) -> Result<f64, String> {
    let (num, is_pct) = match s.strip_suffix('%') {
        Some(rest) => (rest, true),
        None => (s, false),
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bench-diff: bad --max-regress '{s}'"))?;
    let frac = if is_pct || v >= 1.0 { v / 100.0 } else { v };
    if !(0.0..10.0).contains(&frac) {
        return Err(format!("bench-diff: --max-regress '{s}' out of range"));
    }
    Ok(frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(schemes: &[(&str, &[(&str, f64)])]) -> String {
        let mut out = String::from("{\"config\": {\"ops\": 1}, \"schemes\": [");
        for (i, (name, metrics)) in schemes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"scheme\": \"{name}\""));
            for (k, v) in *metrics {
                out.push_str(&format!(", \"{k}\": {v}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    #[test]
    fn within_threshold_passes_and_improvements_pass() {
        let base = bench(&[(
            "debra",
            &[("get_ns_per_op", 100.0), ("mixed_allocs_per_op", 0.0)],
        )]);
        let cur = bench(&[(
            "debra",
            &[("get_ns_per_op", 110.0), ("mixed_allocs_per_op", 0.0)],
        )]);
        let d = diff(&base, &cur, 0.15).unwrap();
        assert!(d.regressions().is_empty(), "{:?}", d.regressions());
        let faster = bench(&[(
            "debra",
            &[("get_ns_per_op", 50.0), ("mixed_allocs_per_op", 0.0)],
        )]);
        assert!(diff(&base, &faster, 0.15).unwrap().regressions().is_empty());
    }

    #[test]
    fn ns_regression_beyond_threshold_fails() {
        let base = bench(&[("debra", &[("get_ns_per_op", 100.0)])]);
        let cur = bench(&[("debra", &[("get_ns_per_op", 120.0)])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        let regs = d.regressions();
        assert_eq!(regs.len(), 1);
        assert!(regs[0].contains("debra/get_ns_per_op"), "{regs:?}");
        // The same delta passes a looser gate.
        assert!(diff(&base, &cur, 0.25).unwrap().regressions().is_empty());
    }

    #[test]
    fn alloc_free_regression_fails_regardless_of_percentage() {
        let base = bench(&[("hp", &[("mixed_allocs_per_op", 0.0)])]);
        let cur = bench(&[("hp", &[("mixed_allocs_per_op", 0.02)])]);
        let d = diff(&base, &cur, 100.0).unwrap();
        assert_eq!(d.regressions().len(), 1, "alloc gate must ignore the knob");
        // Sub-epsilon noise (chunk-store warm-up) stays green.
        let noisy = bench(&[("hp", &[("mixed_allocs_per_op", 0.0004)])]);
        assert!(diff(&base, &noisy, 0.15).unwrap().regressions().is_empty());
    }

    #[test]
    fn disappeared_scheme_or_metric_fails() {
        let base = bench(&[
            ("debra", &[("get_ns_per_op", 100.0)]),
            ("hp", &[("get_ns_per_op", 300.0)]),
        ]);
        let cur = bench(&[("debra", &[("steady_ns_per_op", 90.0)])]);
        let d = diff(&base, &cur, 0.15).unwrap();
        let regs = d.regressions();
        assert!(
            regs.iter().any(|r| r.contains("'hp' disappeared")),
            "{regs:?}"
        );
        assert!(
            regs.iter().any(|r| r.contains("debra/get_ns_per_op")),
            "{regs:?}"
        );
        // New schemes in current are fine.
        let grown = bench(&[
            ("debra", &[("get_ns_per_op", 100.0)]),
            ("hp", &[("get_ns_per_op", 300.0)]),
            ("newcomer", &[("get_ns_per_op", 1.0)]),
        ]);
        assert!(diff(&base, &grown, 0.15).unwrap().regressions().is_empty());
    }

    #[test]
    fn real_artifact_shape_parses() {
        // Mirrors results/BENCH_handle.json's layout.
        let base = "{\n  \"config\": {\"ops\": 200000},\n  \"schemes\": [\n    {\"scheme\": \
                    \"nbr+\", \"get_ns_per_op\": 136.302, \"mixed_ns_per_op\": 113.115, \
                    \"mixed_allocs_per_op\": 0.000000}\n  ]\n}\n";
        let d = diff(base, base, 0.15).unwrap();
        assert_eq!(d.rows.len(), 3);
        assert!(d.regressions().is_empty());
        assert!(d.render(0.15).contains("nbr+"));
    }

    #[test]
    fn max_regress_forms() {
        assert_eq!(parse_max_regress("15%").unwrap(), 0.15);
        assert_eq!(parse_max_regress("0.15").unwrap(), 0.15);
        assert_eq!(parse_max_regress("15").unwrap(), 0.15);
        assert!(parse_max_regress("nope").is_err());
        assert!(parse_max_regress("-5%").is_err());
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(diff("not json", "{}", 0.15).is_err());
        assert!(diff("{}", "{}", 0.15).is_err(), "missing schemes array");
    }
}
