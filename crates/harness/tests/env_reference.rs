//! Pins the README "Environment reference" table to the source tree:
//! every `EPIC_*` variable the workspace reads must have a row, and
//! every row must correspond to a variable that is still read somewhere.
//! Adding a knob without documenting it (or documenting a knob that no
//! longer exists) fails this test.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

/// Extracts `EPIC_[A-Z0-9_]+` tokens from `text` (trailing underscores
/// trimmed — they are prefix fragments like `"EPIC_TEST_"`).
fn epic_tokens(text: &str, into: &mut BTreeSet<String>) {
    let bytes = text.as_bytes();
    let mut i = 0;
    while let Some(pos) = text[i..].find("EPIC_") {
        let start = i + pos;
        let mut end = start;
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let token = text[start..end].trim_end_matches('_');
        if token.len() > "EPIC".len() {
            into.insert(token.to_string());
        }
        i = end;
    }
}

fn rs_files(dir: &Path, into: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, into);
        } else if path.extension().is_some_and(|e| e == "rs") {
            into.push(path);
        }
    }
}

/// Variables that are deliberately undocumented: test-only probes and
/// the prefix fragment the provenance code matches on. Everything else
/// the source reads belongs in the README table.
fn is_internal(name: &str) -> bool {
    name.starts_with("EPIC_TEST")
        || name == "EPIC_CHECK" // prefix fragment in a diagnostic string
        || name == "EPIC_DOES_NOT_EXIST_XYZ" // topology negative-test probe
        || name == "EPIC_PROV_PROBE" // provenance unit-test probe
}

#[test]
fn readme_environment_reference_is_complete_and_current() {
    let root = repo_root();
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    rs_files(&root.join("vendor"), &mut files);
    rs_files(&root.join("tests"), &mut files);
    let mut in_source = BTreeSet::new();
    for f in &files {
        epic_tokens(
            &std::fs::read_to_string(f).expect("readable source"),
            &mut in_source,
        );
    }
    in_source.retain(|n| !is_internal(n));
    assert!(
        in_source.contains("EPIC_MILLIS") && in_source.contains("EPIC_RUNBOOK"),
        "source scan is broken: {in_source:?}"
    );

    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    let table = readme
        .split("## Environment reference")
        .nth(1)
        .expect("README must keep the '## Environment reference' section")
        .split("\n## ")
        .next()
        .unwrap();
    let mut in_table = BTreeSet::new();
    for line in table.lines().filter(|l| l.starts_with("| `EPIC_")) {
        epic_tokens(line, &mut in_table);
        // Rows must link the owning module (a path into the tree).
        assert!(
            line.contains("crates/") || line.contains("vendor/"),
            "row must name its owning module: {line}"
        );
    }

    let undocumented: Vec<&String> = in_source.difference(&in_table).collect();
    assert!(
        undocumented.is_empty(),
        "EPIC_* variables read in source but missing from the README \
         'Environment reference' table: {undocumented:?}"
    );
    let stale: Vec<&String> = in_table.difference(&in_source).collect();
    assert!(
        stale.is_empty(),
        "README 'Environment reference' rows with no matching read in \
         the source tree: {stale:?}"
    );
}
