//! Deterministic fuzzing for the runbook parser (`epic_harness::scenario`),
//! in the `json_fuzz`/`http_fuzz` style: fixed seeds so failures
//! reproduce exactly.
//!
//! Two properties:
//!
//! 1. **Round trip**: every valid corpus runbook (including the
//!    committed `runbooks/smoke.json`) parses, and parsing the same
//!    bytes again yields identical cell ids and per-cell seeds — the
//!    parse is a pure function of the source.
//! 2. **Error, not panic**: seeded mutations of valid runbooks
//!    (truncations, byte flips, splices, token swaps into hostile
//!    values) must return `Err` with a non-empty diagnostic or a valid
//!    runbook — never panic, hang, or overflow.

use epic_harness::Runbook;
use epic_util::XorShift64;

/// Valid corpus: one exercising every axis, one minimal, plus the
/// committed smoke runbook read from the repo.
fn valid_corpus() -> Vec<String> {
    let mut corpus = vec![
        r#"{
          "schema": "epic-runbook-v1",
          "name": "fuzz_wide",
          "seed": 99,
          "scenarios": [
            {
              "name": "a",
              "trees": ["ab", "hm"],
              "smrs": ["debra", "nbr+", "rcu"],
              "modes": ["batch", "af"],
              "allocs": ["je", "sys"],
              "threads": [1, 2, "2x"],
              "key_range": 2048,
              "key_dists": ["uniform", "zipf:0.5"],
              "arrivals": ["steady", "bursty:256:100"],
              "update_ratio": 0.5
            }
          ]
        }"#
        .to_string(),
        r#"{"schema": "epic-runbook-v1", "name": "fuzz_min",
            "scenarios": [{"name": "s", "trees": "ab", "smrs": "rcu", "threads": 1}]}"#
            .to_string(),
    ];
    let committed =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../runbooks/smoke.json");
    corpus.push(std::fs::read_to_string(committed).expect("committed runbooks/smoke.json"));
    corpus
}

#[test]
fn valid_runbooks_round_trip_deterministically() {
    for src in valid_corpus() {
        let a = Runbook::parse(&src).unwrap_or_else(|e| panic!("corpus must parse: {e}"));
        let b = Runbook::parse(&src).expect("second parse");
        assert!(!a.cells.is_empty(), "corpus runbooks generate cells");
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.source_fnv, b.source_fnv);
        let ids_a: Vec<(&str, u64)> = a.cells.iter().map(|c| (c.id.as_str(), c.seed)).collect();
        let ids_b: Vec<(&str, u64)> = b.cells.iter().map(|c| (c.id.as_str(), c.seed)).collect();
        assert_eq!(
            ids_a, ids_b,
            "cell ids and seeds are a pure function of the source"
        );
    }
}

/// One seeded mutation of `src`: truncate, flip bytes, splice a random
/// window, or swap a known-good token for a hostile one.
fn mutate(rng: &mut XorShift64, src: &str) -> String {
    let bytes = src.as_bytes();
    match rng.next_bounded(4) {
        // Truncation at an arbitrary byte (possibly mid-UTF-8 — the
        // lossy conversion keeps the input a &str, as the parser takes).
        0 => {
            let cut = rng.next_bounded(bytes.len() as u64 + 1) as usize;
            String::from_utf8_lossy(&bytes[..cut]).into_owned()
        }
        // Flip 1..=4 bytes anywhere.
        1 => {
            let mut out = bytes.to_vec();
            for _ in 0..=rng.next_bounded(3) {
                let i = rng.next_bounded(out.len() as u64) as usize;
                out[i] ^= (1 + rng.next_bounded(255)) as u8;
            }
            String::from_utf8_lossy(&out).into_owned()
        }
        // Splice: delete a window and optionally re-insert punctuation.
        2 => {
            let start = rng.next_bounded(bytes.len() as u64) as usize;
            let len = rng.next_bounded((bytes.len() - start) as u64 + 1) as usize;
            let mut out = bytes.to_vec();
            out.drain(start..start + len);
            let junk = [b'{', b'}', b'[', b']', b'"', b',', b':'];
            if rng.coin() {
                out.insert(
                    rng.next_bounded(out.len() as u64 + 1) as usize,
                    junk[rng.next_bounded(junk.len() as u64) as usize],
                );
            }
            String::from_utf8_lossy(&out).into_owned()
        }
        // Token swap: replace a valid token with a hostile value.
        _ => {
            let swaps = [
                ("\"rcu\"", "\"no_such_smr\""),
                ("\"ab\"", "\"NOT A TREE\""),
                ("\"zipf:0.5\"", "\"zipf:1.0\""),
                ("\"zipf:0.5\"", "\"zipf:-3\""),
                ("\"2x\"", "\"99x\""),
                ("\"threads\": 1", "\"threads\": 0"),
                ("\"threads\": 1", "\"threads\": 100000"),
                ("\"seed\": 99", "\"seed\": -1"),
                ("\"update_ratio\": 0.5", "\"update_ratio\": 7.5"),
                ("epic-runbook-v1", "epic-runbook-v0"),
                ("\"bursty:256:100\"", "\"bursty:0:100\""),
                ("\"bursty:256:100\"", "\"bursty:256:9999999\""),
                ("\"name\": \"a\"", "\"name\": \"UPPER CASE\""),
                ("\"name\": \"a\"", "\"nonsense_key\": \"a\""),
            ];
            let (from, to) = swaps[rng.next_bounded(swaps.len() as u64) as usize];
            src.replace(from, to)
        }
    }
}

#[test]
fn mutated_runbooks_error_not_panic() {
    let corpus = valid_corpus();
    let mut rng = XorShift64::new(0x5EED_F00D_2024_0809);
    for round in 0..4_000u32 {
        let src = &corpus[rng.next_bounded(corpus.len() as u64) as usize];
        let mutated = mutate(&mut rng, src);
        match Runbook::parse(&mutated) {
            // Mutations can cancel out or hit ignorable regions — a
            // still-valid runbook is fine; it must just be well-formed.
            Ok(rb) => {
                for c in &rb.cells {
                    assert!(!c.id.is_empty(), "round {round}: empty cell id");
                }
            }
            Err(e) => assert!(
                !e.is_empty(),
                "round {round}: error without a diagnostic for {mutated:?}"
            ),
        }
    }
}

/// The hostile-value corner cases the mutator can only hit by luck,
/// pinned explicitly: each must be a clean error naming the problem.
#[test]
fn hostile_axis_values_are_clean_errors() {
    let base = |axis: &str| {
        format!(
            r#"{{"schema": "epic-runbook-v1", "name": "h",
                "scenarios": [{{"name": "s", "trees": "ab", "smrs": "rcu", {axis}}}]}}"#
        )
    };
    for axis in [
        r#""threads": 0"#,
        r#""threads": 513"#,
        r#""threads": "0x""#,
        r#""threads": "9x""#,
        r#""threads": 1, "key_dists": "zipf:1.0""#,
        r#""threads": 1, "key_dists": "zipf:abc""#,
        r#""threads": 1, "arrivals": "bursty:1:10""#,
        r#""threads": 1, "arrivals": "bursty:256:200000""#,
        r#""threads": 1, "update_ratio": 1.5"#,
        r#""threads": 1, "key_range": 0"#,
    ] {
        let err = Runbook::parse(&base(axis)).expect_err(axis);
        assert!(!err.is_empty(), "{axis}: diagnostic must not be empty");
    }
}
