//! End-to-end coverage for the scenario/runbook surface of `epic-run`:
//! `list` cost + origin columns, `list --json`, `--origin` filtering,
//! runbook-generated cells flowing through `check -j 2` with provenance-
//! stamped SHAPES rows, `replay <hash>` round trips, two-process
//! determinism (same runbook → byte-identical ids/seeds/hashes), and
//! broken-runbook startup failures.

use epic_util::json::Json;
use std::path::PathBuf;
use std::process::{Command, Output};

/// The committed example runbook, resolved from this crate.
fn smoke_runbook() -> PathBuf {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../runbooks/smoke.json");
    path.canonicalize().expect("runbooks/smoke.json exists")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epic_scen_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs `epic-run` with the smoke-scale knobs and (optionally) the
/// committed runbook. The `EPIC_*` environment is part of the
/// provenance hash, so every invocation in a test that compares hashes
/// must go through the same helper with the same arguments.
fn epic_run(args: &[&str], runbook: Option<&PathBuf>, results: &std::path::Path) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_epic-run"));
    cmd.args(args)
        .env("EPIC_MILLIS", "20")
        .env("EPIC_TRIALS", "1")
        .env("EPIC_RESULTS", results);
    if let Some(rb) = runbook {
        cmd.env("EPIC_RUNBOOK", rb);
    }
    cmd.output().expect("spawn epic-run")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8")
}

#[test]
fn list_shows_cost_and_origin_columns() {
    let dir = scratch_dir("cols");
    let out = epic_run(&["list"], None, &dir);
    assert!(out.status.success(), "list failed: {out:?}");
    let stdout = stdout_of(&out);
    let fig1 = stdout
        .lines()
        .find(|l| l.trim().starts_with("fig1_scaling"))
        .expect("fig1_scaling listed");
    assert!(fig1.contains("cost"), "cost hint missing: {fig1}");
    assert!(fig1.contains("builtin"), "origin missing: {fig1}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_json_is_machine_readable() {
    let dir = scratch_dir("json");
    let out = epic_run(&["list", "--json"], Some(&smoke_runbook()), &dir);
    assert!(out.status.success(), "list --json failed: {out:?}");
    let v = Json::parse(&stdout_of(&out)).expect("list --json parses as JSON");
    let entries = v.as_arr().expect("a JSON array");
    assert!(!entries.is_empty());
    let mut saw_builtin = false;
    let mut saw_runbook = false;
    for e in entries {
        let id = e.get("id").and_then(Json::as_str).expect("id");
        let origin = e.get("origin").and_then(Json::as_str).expect("origin");
        let prov = e.get("provenance").and_then(Json::as_str).expect("hash");
        assert!(
            e.get("cost").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
            "{id}: cost"
        );
        assert_eq!(prov.len(), 32, "{id}: provenance is 32 hex chars");
        assert!(prov.chars().all(|c| c.is_ascii_hexdigit()), "{id}: {prov}");
        match origin {
            "builtin" => saw_builtin = true,
            o if o.starts_with("runbook:") => {
                saw_runbook = true;
                assert!(id.starts_with("sc_"), "{id}: generated ids are sc_*");
                assert!(e.get("seed").and_then(Json::as_f64).is_some(), "{id}: seed");
            }
            o => panic!("{id}: unexpected origin {o}"),
        }
    }
    assert!(saw_builtin && saw_runbook, "both origins present");
    // `--json` is a list flag, not a check flag.
    let out = epic_run(&["check", "--json"], None, &dir);
    assert_eq!(out.status.code(), Some(2), "check --json must exit 2");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn origin_filter_splits_builtin_from_generated() {
    let dir = scratch_dir("origin");
    let rb = smoke_runbook();
    let builtin = stdout_of(&epic_run(&["list", "--origin", "builtin"], Some(&rb), &dir));
    assert!(!builtin.contains("sc_"), "builtin filter leaked cells");
    assert!(builtin.contains("fig1_scaling"));
    let generated = stdout_of(&epic_run(&["list", "--origin", "runbook"], Some(&rb), &dir));
    assert!(
        !generated.contains("fig1_scaling"),
        "runbook filter leaked builtins"
    );
    // The committed smoke runbook must generate at least 10 cells, all
    // three scenario families represented (acceptance criterion).
    let cells: Vec<&str> = generated
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .filter(|t| t.starts_with("sc_"))
        .collect();
    assert!(cells.len() >= 10, "only {} cells: {cells:?}", cells.len());
    for family in ["sc_skew_", "sc_oversub_", "sc_churn_"] {
        assert!(
            cells.iter().any(|c| c.starts_with(family)),
            "missing {family}"
        );
    }
    // Unknown origin values are usage errors.
    let out = epic_run(&["list", "--origin", "bogus"], None, &dir);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The determinism satellite: the same runbook yields byte-identical
/// generated ids, seeds, and provenance hashes across two *processes*.
#[test]
fn two_processes_generate_byte_identical_registries() {
    let dir = scratch_dir("det");
    let rb = smoke_runbook();
    let a = epic_run(&["list", "--json"], Some(&rb), &dir);
    let b = epic_run(&["list", "--json"], Some(&rb), &dir);
    assert!(a.status.success() && b.status.success());
    assert_eq!(
        stdout_of(&a),
        stdout_of(&b),
        "list --json must be byte-identical across processes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Generated cells run under the process runner like any builtin, every
/// SHAPES row carries a provenance hash, and `replay <hash> --against`
/// reproduces the recorded deterministic counters from the hash alone.
#[test]
fn check_stamps_provenance_and_replay_round_trips() {
    let dir = scratch_dir("replay");
    let rb = smoke_runbook();
    let out = epic_run(
        &[
            "check",
            "sc_skew_debra_abtree_je_t2_z090",
            "sc_churn_rcu_abtree_je_t2_u_c1024",
            "-j",
            "2",
        ],
        Some(&rb),
        &dir,
    );
    assert!(
        matches!(out.status.code(), Some(0 | 1)),
        "scenario check must complete: {out:?}"
    );
    let shapes_path = dir.join("SHAPES.json");
    let shapes = std::fs::read_to_string(&shapes_path).expect("SHAPES.json");
    let doc = Json::parse(&shapes).expect("SHAPES parses");
    let mut hashes = Vec::new();
    for rec in doc.get("experiments").and_then(Json::as_arr).expect("rows") {
        let result = rec.get("result").expect("result");
        let prov = result
            .get("provenance")
            .and_then(Json::as_str)
            .expect("every result row carries a provenance hash");
        assert_eq!(prov.len(), 32);
        hashes.push(prov.to_string());
    }
    assert_eq!(hashes.len(), 2);
    let out = epic_run(
        &[
            "replay",
            &hashes[1],
            "--against",
            shapes_path.to_str().unwrap(),
        ],
        Some(&rb),
        &dir,
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "replay must reproduce identical counters and hash: {out:?} {}",
        stdout_of(&out)
    );
    assert!(stdout_of(&out).contains("identical"));
    // A hash nothing in the registry reproduces is exit 2 with guidance.
    let out = epic_run(
        &["replay", "00000000000000000000000000000000"],
        Some(&rb),
        &dir,
    );
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("provenance"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A broken `EPIC_RUNBOOK` is a hard startup error (exit 2) for every
/// subcommand — never a silent fallback to the builtin registry.
#[test]
fn broken_runbook_is_a_startup_error() {
    let dir = scratch_dir("broken");
    let missing = PathBuf::from("/no/such/runbook.json");
    let out = epic_run(&["list"], Some(&missing), &dir);
    assert_eq!(out.status.code(), Some(2), "missing runbook: {out:?}");
    let malformed = dir.join("bad.json");
    std::fs::write(&malformed, "{\"schema\": \"epic-runbook-v1\"").unwrap();
    for sub in [&["list"][..], &["check", "all"][..]] {
        let out = epic_run(sub, Some(&malformed), &dir);
        assert_eq!(out.status.code(), Some(2), "{sub:?} with bad runbook");
        assert!(
            !String::from_utf8_lossy(&out.stderr).is_empty(),
            "diagnostic expected"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
