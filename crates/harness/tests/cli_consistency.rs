//! Smoke tests keeping the experiment registry and the `epic-run` CLI in
//! lock-step: every id is unique, `run_by_name` resolves exactly the
//! registered ids, and the installed binary's `list` output matches the
//! registry line for line.

use epic_harness::experiments::all_experiments;
use std::collections::HashSet;
use std::process::Command;

#[test]
fn experiment_ids_are_unique_and_nonempty() {
    let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
    assert!(!ids.is_empty(), "registry must not be empty");
    let set: HashSet<&str> = ids.iter().copied().collect();
    assert_eq!(set.len(), ids.len(), "duplicate experiment id in registry");
    for id in &ids {
        assert!(
            id.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "id {id:?} is not a lower_snake_case token"
        );
    }
}

#[test]
fn epic_run_list_matches_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .arg("list")
        .output()
        .expect("spawn epic-run");
    assert!(out.status.success(), "epic-run list failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let listed: Vec<&str> = stdout
        .lines()
        .skip(1) // "experiments (pass an id, or 'all'):" header
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let registry: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
    assert_eq!(
        listed, registry,
        "CLI list output diverged from all_experiments()"
    );
}

#[test]
fn epic_run_rejects_unknown_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .arg("no_such_experiment")
        .output()
        .expect("spawn epic-run");
    assert!(!out.status.success(), "unknown id must exit nonzero");
}
