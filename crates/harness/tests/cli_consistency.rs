//! Smoke tests keeping the experiment registry, the oracle registry, and
//! the `epic-run` CLI in lock-step: every id is unique, `run_by_name`
//! resolves exactly the registered ids, the installed binary's `list`
//! output matches the registry line for line, every listed experiment
//! has exactly one paper-shape oracle (no orphans in either direction),
//! and the process-runner surface (`--shard`, `-j`, `--one`,
//! `merge-shapes`, `bench-diff`) round-trips end to end.

use epic_harness::experiments::all_experiments;
use epic_harness::oracle::{all_oracles, oracle_for, Tier};
use epic_harness::runner::pool::{EventKind, PoolEvent};
use epic_harness::shapes::ShapesDoc;
use std::collections::HashSet;
use std::path::PathBuf;
use std::process::{Command, Output};

fn epic_run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .args(args)
        .output()
        .expect("spawn epic-run")
}

/// Like [`epic_run`] but scaled down to smoke length and with artifacts
/// redirected into a scratch dir, for invocations that actually run
/// experiments.
fn epic_run_tiny(args: &[&str], results: &std::path::Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .args(args)
        .env("EPIC_MILLIS", "20")
        .env("EPIC_TRIALS", "1")
        .env("EPIC_RESULTS", results)
        .output()
        .expect("spawn epic-run")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epic_cli_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf8")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf8")
}

/// The ids a `list` invocation printed (skipping the header line).
fn listed_ids(out: &Output) -> Vec<String> {
    stdout_of(out)
        .lines()
        .skip(1)
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

#[test]
fn experiment_ids_are_unique_and_nonempty() {
    let ids: Vec<String> = all_experiments().into_iter().map(|e| e.id).collect();
    assert!(!ids.is_empty(), "registry must not be empty");
    let set: HashSet<&String> = ids.iter().collect();
    assert_eq!(set.len(), ids.len(), "duplicate experiment id in registry");
    for id in &ids {
        assert!(
            id.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "id {id:?} is not a lower_snake_case token"
        );
    }
}

#[test]
fn epic_run_list_matches_registry() {
    let out = epic_run(&["list"]);
    assert!(out.status.success(), "epic-run list failed: {out:?}");
    let listed = listed_ids(&out);
    let registry: Vec<String> = all_experiments().into_iter().map(|e| e.id).collect();
    assert_eq!(
        listed, registry,
        "CLI list output diverged from all_experiments()"
    );
}

/// The three `--shard K/3` listings partition the registry: disjoint,
/// union equals the full list, each shard in registry order.
#[test]
fn epic_run_list_shards_partition_the_registry() {
    let registry: Vec<String> = all_experiments().into_iter().map(|e| e.id).collect();
    let mut seen: Vec<String> = Vec::new();
    for shard in ["1/3", "2/3", "3/3"] {
        let out = epic_run(&["list", "--shard", shard]);
        assert!(out.status.success(), "list --shard {shard} failed: {out:?}");
        let ids = listed_ids(&out);
        let mut in_registry_order = ids.clone();
        in_registry_order.sort_by_key(|id| registry.iter().position(|r| r == id));
        assert_eq!(
            ids, in_registry_order,
            "shard {shard} not in registry order"
        );
        for id in ids {
            assert!(!seen.contains(&id), "{id} listed in two shards");
            seen.push(id);
        }
    }
    seen.sort_by_key(|id| registry.iter().position(|r| r == id));
    assert_eq!(seen, registry, "shard union must be the full registry");
    // 1/1 is exactly the unsharded list.
    assert_eq!(listed_ids(&epic_run(&["list", "--shard", "1/1"])), registry);
    // Malformed shard specs are usage errors.
    for bad in ["0/3", "4/3", "1-3", "x/y"] {
        let out = epic_run(&["list", "--shard", bad]);
        assert_eq!(out.status.code(), Some(2), "--shard {bad} must exit 2");
    }
}

#[test]
fn epic_run_rejects_unknown_experiment_and_lists_valid_ids() {
    let out = epic_run(&["no_such_experiment"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown id must exit 2: {out:?}"
    );
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("unknown experiment 'no_such_experiment'"),
        "stderr should name the bad id: {stderr}"
    );
    for id in ["fig1_scaling", "ablation_ds_generality"] {
        assert!(
            stderr.contains(id),
            "stderr should list valid id {id}: {stderr}"
        );
    }
}

/// Every experiment `epic-run list` names has exactly one oracle, in the
/// same order, and there are no orphan oracles pointing at ids the
/// registry no longer knows.
#[test]
fn oracle_registry_matches_experiment_registry() {
    let experiments = all_experiments();
    let experiment_ids: Vec<&str> = experiments.iter().map(|e| e.id.as_str()).collect();
    let oracles = all_oracles();
    let oracle_ids: Vec<&str> = oracles.iter().map(|o| o.experiment.as_str()).collect();
    assert_eq!(
        oracle_ids, experiment_ids,
        "oracle registry diverged from all_experiments()"
    );
    for id in &experiment_ids {
        let oracle = oracle_for(id).unwrap_or_else(|| panic!("no oracle for {id}"));
        assert!(
            oracle.assertions.iter().any(|a| a.tier == Tier::Strict),
            "{id}'s oracle has no strict assertion — nothing gates CI"
        );
    }
    assert!(oracle_for("no_such_experiment").is_none());
}

/// `epic-run check` on an unknown id must fail cleanly — exit code 2,
/// a diagnostic naming the bad id plus the valid ones on stderr, and no
/// experiment output or SHAPES.json writing before the rejection.
#[test]
fn epic_run_check_rejects_unknown_id() {
    let out = epic_run(&["check", "no_such_experiment"]);
    assert_eq!(out.status.code(), Some(2), "check must exit 2 on a bad id");
    let stderr = stderr_of(&out);
    assert!(
        stderr.contains("unknown experiment 'no_such_experiment'"),
        "stderr should name the bad id: {stderr}"
    );
    assert!(
        stderr.contains("fig1_scaling"),
        "stderr should list the valid ids: {stderr}"
    );
    // A bad id anywhere in the list aborts before running anything.
    let out = epic_run(&["check", "fig4_garbage", "no_such_experiment"]);
    assert_eq!(out.status.code(), Some(2), "bad id in a list must exit 2");
    let stdout = stdout_of(&out);
    assert!(
        !stdout.contains("##### check"),
        "must validate ids before running experiments: {stdout}"
    );
}

/// Bad flags and malformed values are usage errors, not silent ids.
#[test]
fn epic_run_check_rejects_bad_flags() {
    for args in [
        &["check", "--jobs", "zero"][..],
        &["check", "-j"][..],
        &["check", "--frobnicate"][..],
        &["check", "--shard", "3/2"][..],
    ] {
        let out = epic_run(args);
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2: {out:?}");
    }
}

/// An empty selection must not report green: a typo'd shard/id combo
/// (an id whose shard filter excludes it, or a shard index past the
/// registry size) exits 2 instead of "0 experiments, 0 failures".
#[test]
fn epic_run_check_refuses_empty_selection() {
    // Find a shard (of 3) that does NOT contain fig7_passfirst.
    let excluded = (1..=3)
        .find(|k| {
            !listed_ids(&epic_run(&["list", "--shard", &format!("{k}/3")]))
                .contains(&"fig7_passfirst".to_string())
        })
        .expect("some shard excludes fig7");
    let out = epic_run(&[
        "check",
        "fig7_passfirst",
        "--shard",
        &format!("{excluded}/3"),
    ]);
    assert_eq!(out.status.code(), Some(2), "empty selection must exit 2");
    assert!(stderr_of(&out).contains("selection is empty"));
    // A shard index past the registry size is empty too.
    let out = epic_run(&["check", "--shard", "60/64"]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}

/// Repeated ids collapse to one run — the job engine keys per-child
/// artifacts by id, and `merge` rejects duplicate records.
#[test]
fn epic_run_check_deduplicates_repeated_ids() {
    let dir = scratch_dir("dedup");
    let out = epic_run_tiny(
        &["check", "fig7_passfirst", "fig7_passfirst", "-j", "2"],
        &dir,
    );
    assert!(
        matches!(out.status.code(), Some(0 | 1)),
        "dedup check must complete: {out:?}"
    );
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("check: 1 experiments"),
        "duplicates must collapse: {stdout}"
    );
    let doc = ShapesDoc::parse(&std::fs::read_to_string(dir.join("SHAPES.json")).expect("SHAPES"))
        .expect("v2 parses");
    assert_eq!(doc.records.len(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The full child/merge round trip: two `--one` self-invocations (what
/// the job engine spawns) produce single-record v2 documents, and
/// `merge-shapes` fans them into one registry-ordered verdict table +
/// SHAPES.json. Feeding the same document twice is a conflict.
#[test]
fn one_and_merge_shapes_round_trip() {
    let dir = scratch_dir("merge");
    let a = dir.join("fig7.json");
    let b = dir.join("fig8.json");
    for (id, path) in [("fig7_passfirst", &a), ("fig8_periodic", &b)] {
        let out = epic_run_tiny(
            &["--one", id, "--result-json", path.to_str().unwrap()],
            &dir,
        );
        assert!(
            matches!(out.status.code(), Some(0 | 1)),
            "--one {id} must complete: {out:?}"
        );
        let doc = ShapesDoc::parse(&std::fs::read_to_string(path).expect("result json"))
            .expect("child output parses");
        assert_eq!(doc.records.len(), 1);
        assert_eq!(doc.records[0].report.experiment, id);
        assert!(doc.records[0].duration_ms > 0.0, "duration must be stamped");
    }
    // Merge in reverse order: output must come back in registry order.
    let out = epic_run_tiny(
        &["merge-shapes", b.to_str().unwrap(), a.to_str().unwrap()],
        &dir,
    );
    assert!(
        matches!(out.status.code(), Some(0 | 1)),
        "merge must complete: {out:?}"
    );
    let stdout = stdout_of(&out);
    let (p7, p8) = (
        stdout.find("fig7_passfirst").expect("fig7 in table"),
        stdout.find("fig8_periodic").expect("fig8 in table"),
    );
    assert!(p7 < p8, "verdict table must be in registry order");
    assert!(stdout.contains("check: 2 experiments"));
    let merged = std::fs::read_to_string(dir.join("SHAPES.json")).expect("merged SHAPES.json");
    assert!(merged.contains("\"schema\": \"epic-shapes-v2\""));
    let merged = ShapesDoc::parse(&merged).expect("merged file parses");
    assert_eq!(merged.records.len(), 2);
    assert!(merged.runner.shard.starts_with("merge("));
    // Duplicate inputs conflict.
    let out = epic_run_tiny(
        &["merge-shapes", a.to_str().unwrap(), a.to_str().unwrap()],
        &dir,
    );
    assert_eq!(out.status.code(), Some(2), "duplicate id must exit 2");
    assert!(stderr_of(&out).contains("fig7_passfirst"));
    // Unreadable input is a usage error.
    let out = epic_run_tiny(&["merge-shapes", "/no/such/file.json"], &dir);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

/// `check -j 2` drives the process runner end to end: both experiments
/// run as children, the merged SHAPES.json is v2 with runner metadata,
/// and per-job artifacts land under `jobs/`.
#[test]
fn parallel_check_produces_merged_v2_shapes() {
    let dir = scratch_dir("parallel");
    let out = epic_run_tiny(
        &["check", "fig7_passfirst", "fig8_periodic", "-j", "2"],
        &dir,
    );
    assert!(
        matches!(out.status.code(), Some(0 | 1)),
        "parallel check must complete: {out:?}"
    );
    let stdout = stdout_of(&out);
    assert!(
        stdout.contains("2 experiments on 2 worker slots"),
        "progress header missing: {stdout}"
    );
    let doc = ShapesDoc::parse(&std::fs::read_to_string(dir.join("SHAPES.json")).expect("SHAPES"))
        .expect("v2 parses");
    let ids: Vec<&str> = doc
        .records
        .iter()
        .map(|r| r.report.experiment.as_str())
        .collect();
    assert_eq!(ids, ["fig7_passfirst", "fig8_periodic"], "registry order");
    assert_eq!(doc.runner.jobs, 2);
    assert_eq!(doc.runner.shard, "1/1");
    for rec in &doc.records {
        assert_eq!(rec.attempts, 1, "healthy children need one attempt");
        assert!(rec.duration_ms > 0.0);
    }
    // Child logs land in a per-run subdirectory (jobs/run-*/<id>.log),
    // keeping results/jobs/ bounded across runs.
    let run_dirs: Vec<PathBuf> = std::fs::read_dir(dir.join("jobs"))
        .expect("jobs dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.is_dir()
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("run-"))
        })
        .collect();
    assert_eq!(
        run_dirs.len(),
        1,
        "one check run = one run dir: {run_dirs:?}"
    );
    for id in ["fig7_passfirst", "fig8_periodic"] {
        assert!(
            run_dirs[0].join(format!("{id}.log")).exists(),
            "captured child log missing for {id}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--events <path>` streams the `epic-events-v1` NDJSON progress feed:
/// every line parses back through [`PoolEvent::parse`], each experiment
/// is queued, started, and finished exactly once (healthy children), and
/// finished events carry duration + verdict. The serial (`-j 1`) path
/// emits the same stream shape.
#[test]
fn check_events_flag_streams_ndjson_progress() {
    for jobs in ["1", "2"] {
        let dir = scratch_dir(&format!("events{jobs}"));
        let events = dir.join("events.ndjson");
        let out = epic_run_tiny(
            &[
                "check",
                "fig7_passfirst",
                "fig8_periodic",
                "-j",
                jobs,
                "--events",
                events.to_str().unwrap(),
            ],
            &dir,
        );
        assert!(
            matches!(out.status.code(), Some(0 | 1)),
            "-j {jobs} check must complete: {out:?}"
        );
        let text = std::fs::read_to_string(&events).expect("events file");
        let parsed: Vec<PoolEvent> = text
            .lines()
            .map(|l| PoolEvent::parse(l).unwrap_or_else(|e| panic!("-j {jobs}: bad line {l}: {e}")))
            .collect();
        for id in ["fig7_passfirst", "fig8_periodic"] {
            for kind in [EventKind::Queued, EventKind::Started, EventKind::Finished] {
                let n = parsed
                    .iter()
                    .filter(|ev| ev.kind == kind && ev.experiment == id)
                    .count();
                assert_eq!(n, 1, "-j {jobs}: {id} should have exactly one {kind:?}");
            }
            let fin = parsed
                .iter()
                .find(|ev| ev.kind == EventKind::Finished && ev.experiment == id)
                .unwrap();
            assert_eq!(fin.outcome.as_deref(), Some("completed"), "-j {jobs}");
            assert!(fin.duration_ms.unwrap_or(0.0) > 0.0, "-j {jobs}");
            assert!(
                matches!(fin.verdict.as_deref(), Some("PASS" | "ADVISORY" | "FAIL")),
                "-j {jobs}: verdict {:?}",
                fin.verdict
            );
            // queued <= started <= finished in wall-clock order.
            let ts = |kind| {
                parsed
                    .iter()
                    .find(|ev| ev.kind == kind && ev.experiment == id)
                    .unwrap()
                    .ts_ms
            };
            assert!(ts(EventKind::Queued) <= ts(EventKind::Started), "-j {jobs}");
            assert!(
                ts(EventKind::Started) <= ts(EventKind::Finished),
                "-j {jobs}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// `bench-diff` end to end: identical files pass, a slowdown beyond the
/// threshold fails with the offending metric on stderr, missing files
/// are usage errors.
#[test]
fn bench_diff_cli_gates_regressions() {
    let dir = scratch_dir("benchdiff");
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");
    std::fs::write(
        &base,
        r#"{"config": {}, "schemes": [{"scheme": "debra", "get_ns_per_op": 100.0, "mixed_allocs_per_op": 0.0}]}"#,
    )
    .unwrap();
    std::fs::write(
        &slow,
        r#"{"config": {}, "schemes": [{"scheme": "debra", "get_ns_per_op": 130.0, "mixed_allocs_per_op": 0.0}]}"#,
    )
    .unwrap();
    let out = epic_run(&["bench-diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "identical files pass: {out:?}");
    assert!(stdout_of(&out).contains("no regressions"));
    let out = epic_run(&[
        "bench-diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--max-regress",
        "15%",
    ]);
    assert_eq!(out.status.code(), Some(1), "30% slowdown fails a 15% gate");
    assert!(stderr_of(&out).contains("debra/get_ns_per_op"));
    let out = epic_run(&[
        "bench-diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--max-regress",
        "50%",
    ]);
    assert_eq!(out.status.code(), Some(0), "same delta passes a 50% gate");
    let out = epic_run(&["bench-diff", "/no/such.json", base.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
