//! Smoke tests keeping the experiment registry, the oracle registry, and
//! the `epic-run` CLI in lock-step: every id is unique, `run_by_name`
//! resolves exactly the registered ids, the installed binary's `list`
//! output matches the registry line for line, and every listed experiment
//! has exactly one paper-shape oracle (no orphans in either direction).

use epic_harness::experiments::all_experiments;
use epic_harness::oracle::{all_oracles, oracle_for, Tier};
use std::collections::HashSet;
use std::process::Command;

#[test]
fn experiment_ids_are_unique_and_nonempty() {
    let ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
    assert!(!ids.is_empty(), "registry must not be empty");
    let set: HashSet<&str> = ids.iter().copied().collect();
    assert_eq!(set.len(), ids.len(), "duplicate experiment id in registry");
    for id in &ids {
        assert!(
            id.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "id {id:?} is not a lower_snake_case token"
        );
    }
}

#[test]
fn epic_run_list_matches_registry() {
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .arg("list")
        .output()
        .expect("spawn epic-run");
    assert!(out.status.success(), "epic-run list failed: {out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let listed: Vec<&str> = stdout
        .lines()
        .skip(1) // "experiments (pass an id, or 'all'):" header
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .collect();
    let registry: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
    assert_eq!(
        listed, registry,
        "CLI list output diverged from all_experiments()"
    );
}

#[test]
fn epic_run_rejects_unknown_experiment() {
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .arg("no_such_experiment")
        .output()
        .expect("spawn epic-run");
    assert!(!out.status.success(), "unknown id must exit nonzero");
}

/// Every experiment `epic-run list` names has exactly one oracle, in the
/// same order, and there are no orphan oracles pointing at ids the
/// registry no longer knows.
#[test]
fn oracle_registry_matches_experiment_registry() {
    let experiment_ids: Vec<&str> = all_experiments().iter().map(|(id, _)| *id).collect();
    let oracle_ids: Vec<&str> = all_oracles().iter().map(|o| o.experiment).collect();
    assert_eq!(
        oracle_ids, experiment_ids,
        "oracle registry diverged from all_experiments()"
    );
    for id in &experiment_ids {
        let oracle = oracle_for(id).unwrap_or_else(|| panic!("no oracle for {id}"));
        assert!(
            oracle.assertions.iter().any(|a| a.tier == Tier::Strict),
            "{id}'s oracle has no strict assertion — nothing gates CI"
        );
    }
    assert!(oracle_for("no_such_experiment").is_none());
}

/// `epic-run check` on an unknown id must fail cleanly — exit code 2,
/// a diagnostic on stderr, and no experiment output or SHAPES.json
/// writing before the rejection.
#[test]
fn epic_run_check_rejects_unknown_id() {
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .args(["check", "no_such_experiment"])
        .output()
        .expect("spawn epic-run");
    assert_eq!(out.status.code(), Some(2), "check must exit 2 on a bad id");
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(
        stderr.contains("unknown experiment 'no_such_experiment'"),
        "stderr should name the bad id: {stderr}"
    );
    // A bad id anywhere in the list aborts before running anything.
    let out = Command::new(env!("CARGO_BIN_EXE_epic-run"))
        .args(["check", "fig4_garbage", "no_such_experiment"])
        .output()
        .expect("spawn epic-run");
    assert_eq!(out.status.code(), Some(2), "bad id in a list must exit 2");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(
        !stdout.contains("##### check"),
        "must validate ids before running experiments: {stdout}"
    );
}
