//! Regenerates the paper artifact `fig15_16_machine_presets` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig15_16_machine_presets`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig15_16_machine_presets();
}
