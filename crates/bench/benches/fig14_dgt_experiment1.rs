//! Regenerates the paper artifact `fig14_dgt_experiment1` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig14_dgt_experiment1`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig14_dgt_experiment1();
}
