//! Regenerates the `ablation_stalled_thread` ablation (DESIGN.md §5). Run with
//! `cargo bench --bench ablation_stalled_thread`.

fn main() {
    epic_harness::experiments::ablation_stalled_thread();
}
