//! Regenerates the paper artifact `fig3_timeline_af` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig3_timeline_af`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig3_timeline_af();
}
