//! Regenerates the paper artifact `table3_allocators` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench table3_allocators`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::table3_allocators();
}
