//! Regenerates the paper artifact `table4_token_variants` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench table4_token_variants`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::table4_token_variants();
}
