//! Regenerates the paper artifact `fig4_garbage` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig4_garbage`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig4_garbage();
}
