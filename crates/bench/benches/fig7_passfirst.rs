//! Regenerates the paper artifact `fig7_passfirst` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig7_passfirst`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig7_passfirst();
}
