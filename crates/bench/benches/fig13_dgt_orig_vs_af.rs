//! Regenerates the paper artifact `fig13_dgt_orig_vs_af` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig13_dgt_orig_vs_af`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig13_dgt_orig_vs_af();
}
