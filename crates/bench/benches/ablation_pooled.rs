//! Regenerates the `ablation_pooled` artifact: batch vs amortized vs
//! pooled freeing (the §3.3/footnote-4 road not taken). See DESIGN.md §5.
//! Run with `cargo bench --bench ablation_pooled`.

fn main() {
    epic_harness::experiments::ablation_pooled();
}
