//! Criterion microbenchmarks for the building blocks:
//!
//! * allocator fast paths (cached alloc/dealloc roundtrip per model);
//! * SMR per-operation overhead (guarded op + protected hops through the
//!   thread-bound handle) per scheme — the "traversal tax" that explains
//!   why hp/he/wfe trail in Fig. 11a;
//! * single-threaded tree operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epic_alloc::{build_allocator, AllocatorKind, CostModel};
use epic_ds::{build_tree, TreeKind};
use epic_smr::{build_smr, SmrConfig, SmrKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_allocator_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_roundtrip_cached");
    for kind in [
        AllocatorKind::Je,
        AllocatorKind::JeIncr,
        AllocatorKind::Tc,
        AllocatorKind::Mi,
        AllocatorKind::Sys,
    ] {
        let alloc = build_allocator(kind, 1, CostModel::zero());
        // Warm the caches.
        let p = alloc.alloc(0, 64);
        alloc.dealloc(0, p);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &alloc,
            |b, alloc| {
                b.iter(|| {
                    let p = alloc.alloc(0, black_box(64));
                    alloc.dealloc(0, p);
                })
            },
        );
    }
    group.finish();
}

fn bench_smr_op_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("smr_begin_protect_end");
    for kind in SmrKind::ALL {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let smr = build_smr(kind, alloc, SmrConfig::new(1));
        let handle = smr.register(0);
        let links: Vec<epic_smr::sync::AtomicUsize> = (0..10)
            .map(|i| epic_smr::sync::AtomicUsize::new(i * 64))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.base_name()),
            &handle,
            |b, handle| {
                b.iter(|| {
                    let guard = handle.begin_op();
                    // A ~10-hop traversal's worth of protected hops.
                    for (slot, link) in links.iter().enumerate() {
                        let _ = black_box(guard.protect_load(slot % 8, link));
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_1thread");
    for tree_kind in [TreeKind::Ab, TreeKind::Occ, TreeKind::Dgt] {
        let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
        let smr = build_smr(SmrKind::Debra, alloc, SmrConfig::new(1));
        let tree = build_tree(tree_kind, smr);
        let handle = tree.smr().register(0);
        for k in 0..4096u64 {
            tree.insert(&handle, k * 2, k);
        }
        group.bench_with_input(
            BenchmarkId::new("get", tree_kind.name()),
            &tree,
            |b, tree| {
                let mut k = 0u64;
                b.iter(|| {
                    k = (k + 797) % 8192;
                    black_box(tree.get(&handle, k))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_remove", tree_kind.name()),
            &tree,
            |b, tree| {
                let mut k = 1u64;
                b.iter(|| {
                    k = ((k + 794) % 8192) | 1; // odd keys: always absent before
                    tree.insert(&handle, k, k);
                    tree.remove(&handle, k)
                })
            },
        );
    }
    group.finish();
}

fn bench_timeline_recording(c: &mut Criterion) {
    // The paper: "very little impact on performance" — quantify ours.
    let rec = epic_timeline::Recorder::new(1, 1_000_000);
    c.bench_function("timeline_record_event", |b| {
        b.iter(|| {
            let t = epic_util::now_ns();
            rec.record(
                0,
                epic_timeline::EventKind::FreeCall,
                t,
                t + 10,
                black_box(7),
            );
        })
    });
    let arc_tree: Arc<dyn epic_ds::ConcurrentMap> = {
        let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
        build_tree(
            TreeKind::Ab,
            build_smr(SmrKind::Debra, alloc, SmrConfig::new(1)),
        )
    };
    let _ = arc_tree; // keep facade linkage honest
}

criterion_group!(
    benches,
    bench_allocator_roundtrip,
    bench_smr_op_overhead,
    bench_tree_ops,
    bench_timeline_recording
);
criterion_main!(benches);
