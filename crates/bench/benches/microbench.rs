//! Criterion microbenchmarks for the building blocks:
//!
//! * allocator fast paths (cached alloc/dealloc roundtrip per model);
//! * SMR per-operation overhead (begin/end + protect) per scheme — the
//!   "traversal tax" that explains why hp/he/wfe trail in Fig. 11a;
//! * single-threaded tree operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use epic_alloc::{build_allocator, AllocatorKind, CostModel};
use epic_ds::{build_tree, TreeKind};
use epic_smr::{build_smr, SmrConfig, SmrKind};
use std::hint::black_box;
use std::sync::Arc;

fn bench_allocator_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_roundtrip_cached");
    for kind in [
        AllocatorKind::Je,
        AllocatorKind::JeIncr,
        AllocatorKind::Tc,
        AllocatorKind::Mi,
        AllocatorKind::Sys,
    ] {
        let alloc = build_allocator(kind, 1, CostModel::zero());
        // Warm the caches.
        let p = alloc.alloc(0, 64);
        alloc.dealloc(0, p);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &alloc,
            |b, alloc| {
                b.iter(|| {
                    let p = alloc.alloc(0, black_box(64));
                    alloc.dealloc(0, p);
                })
            },
        );
    }
    group.finish();
}

fn bench_smr_op_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("smr_begin_protect_end");
    let schemes = [
        SmrKind::None,
        SmrKind::Qsbr,
        SmrKind::Rcu,
        SmrKind::Debra,
        SmrKind::TokenPeriodic,
        SmrKind::Hp,
        SmrKind::He,
        SmrKind::Ibr,
        SmrKind::Nbr,
        SmrKind::Wfe,
    ];
    for kind in schemes {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let smr = build_smr(kind, alloc, SmrConfig::new(1));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.base_name()),
            &smr,
            |b, smr| {
                b.iter(|| {
                    smr.begin_op(0);
                    // A ~10-hop traversal's worth of protection calls.
                    for slot in 0..10usize {
                        smr.protect(0, slot % 8, black_box(slot * 64));
                    }
                    smr.end_op(0);
                })
            },
        );
    }
    group.finish();
}

fn bench_tree_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_ops_1thread");
    for tree_kind in [TreeKind::Ab, TreeKind::Occ, TreeKind::Dgt] {
        let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
        let smr = build_smr(SmrKind::Debra, alloc, SmrConfig::new(1));
        let tree = build_tree(tree_kind, smr);
        for k in 0..4096u64 {
            tree.insert(0, k * 2, k);
        }
        group.bench_with_input(
            BenchmarkId::new("get", tree_kind.name()),
            &tree,
            |b, tree| {
                let mut k = 0u64;
                b.iter(|| {
                    k = (k + 797) % 8192;
                    black_box(tree.get(0, k))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_remove", tree_kind.name()),
            &tree,
            |b, tree| {
                let mut k = 1u64;
                b.iter(|| {
                    k = ((k + 794) % 8192) | 1; // odd keys: always absent before
                    tree.insert(0, k, k);
                    tree.remove(0, k)
                })
            },
        );
    }
    group.finish();
}

fn bench_timeline_recording(c: &mut Criterion) {
    // The paper: "very little impact on performance" — quantify ours.
    let rec = epic_timeline::Recorder::new(1, 1_000_000);
    c.bench_function("timeline_record_event", |b| {
        b.iter(|| {
            let t = epic_util::now_ns();
            rec.record(
                0,
                epic_timeline::EventKind::FreeCall,
                t,
                t + 10,
                black_box(7),
            );
        })
    });
    let arc_tree: Arc<dyn epic_ds::ConcurrentMap> = {
        let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
        build_tree(
            TreeKind::Ab,
            build_smr(SmrKind::Debra, alloc, SmrConfig::new(1)),
        )
    };
    let _ = arc_tree; // keep facade linkage honest
}

criterion_group!(
    benches,
    bench_allocator_roundtrip,
    bench_smr_op_overhead,
    bench_tree_ops,
    bench_timeline_recording
);
criterion_main!(benches);
