//! Regenerates the `ablation_allocator_fix` artifact: the incremental-
//! flush jemalloc variant (the paper's footnote-3 future work). See
//! DESIGN.md §5. Run with `cargo bench --bench ablation_allocator_fix`.

fn main() {
    epic_harness::experiments::ablation_allocator_fix();
}
