//! Regenerates the paper artifact `fig12_orig_vs_af_sweep` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig12_orig_vs_af_sweep`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig12_orig_vs_af_sweep();
}
