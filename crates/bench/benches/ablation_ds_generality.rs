//! Regenerates the `ablation_ds_generality` artifact: ORIG vs AF across
//! all four data structures (including the Harris–Michael list, beyond the
//! paper's evaluation). See DESIGN.md §5. Run with
//! `cargo bench --bench ablation_ds_generality`.

fn main() {
    epic_harness::experiments::ablation_ds_generality();
}
