//! Regenerates the paper artifact `fig2_timeline_batch` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig2_timeline_batch`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig2_timeline_batch();
}
