//! Regenerates the paper artifact `fig17_visible_frees` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig17_visible_frees`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig17_visible_frees();
}
