//! Regenerates the paper artifact `fig11b_experiment2` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig11b_experiment2`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig11b_experiment2();
}
