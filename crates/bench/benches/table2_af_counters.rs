//! Regenerates the paper artifact `table2_af_counters` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench table2_af_counters`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::table2_af_counters();
}
