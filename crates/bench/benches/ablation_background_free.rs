//! Regenerates the `ablation_background_free` ablation (DESIGN.md §5). Run with
//! `cargo bench --bench ablation_background_free`.

fn main() {
    epic_harness::experiments::ablation_background_free();
}
