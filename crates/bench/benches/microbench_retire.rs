//! Retire-pipeline microbenchmark: ns/retire and heap allocations/retire
//! for every scheme, in two regimes.
//!
//! * **burst** — a fresh scheme instance absorbs a pre-allocated batch of
//!   retirements with reclamation thresholds pushed out of reach, then
//!   drains it back to the allocator. Timing covers the full
//!   retire→rotate→drain→free pipeline (insertion alone would let a
//!   spine-copying design defer its header traffic into the untimed
//!   dealloc), so spine reallocations, memcpys and drain iteration are all
//!   charged to the scheme under test. The minimum over rounds is
//!   reported, criterion-style, as the low-noise estimate.
//! * **steady** — an amortized-free churn loop (begin / alloc / retire /
//!   end) past warm-up, where bag rotation, reclamation scans and the
//!   freeable-list drain all run at their steady-state rates. A correct
//!   zero-allocation pipeline performs **no** heap allocation here at all.
//!
//! Every reclaiming scheme is measured twice: once under the static modes
//! (batch burst, amortized steady) and once as a `<scheme>_adapt` row with
//! [`FreeMode::Adaptive`] driving both regimes, so bench-diff gates the
//! adaptive controller's fast-path cost alongside the static pipelines.
//!
//! Heap traffic is observed from below via a counting `#[global_allocator]`
//! wrapper, so the numbers are ground truth rather than self-reported; the
//! scheme-reported `retire_path_allocs` counter (segment-pool misses) is
//! printed alongside for cross-checking. Results go to stdout and to
//! `results/<EPIC_RETIRE_OUT>` (default `BENCH_retire.json`) so rewrites of
//! the pipeline can record before/after deltas.
//!
//! Knobs: `EPIC_RETIRE_BURST` (objects per burst round, default 32768),
//! `EPIC_RETIRE_ROUNDS` (burst rounds, default 5), `EPIC_RETIRE_OPS`
//! (measured steady ops, default 200000), `EPIC_RETIRE_OUT`.

use epic_alloc::{build_allocator, AllocatorKind, CostModel};
use epic_harness::report::results_dir;
use epic_smr::{build_smr, FreeMode, SmrConfig, SmrKind};
use epic_util::now_ns;

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap allocation calls observed below everything (allocator models,
/// schemes, harness).
static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pure pass-through to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Row {
    scheme: String,
    burst_ns: f64,
    burst_allocs: f64,
    steady_ns: f64,
    steady_allocs: f64,
    smr_retire_path_allocs: u64,
}

/// Burst regime: time `retire` calls into a fresh scheme whose reclamation
/// thresholds cannot fire mid-loop, plus the drain handing the batch back
/// to the allocator. `mode` is the free mode under test (`Batch` for the
/// plain rows, `Adaptive` for the `_adapt` rows — the controller recompute
/// at the disposal boundary is part of the timed pipeline).
fn bench_burst(kind: SmrKind, burst: usize, rounds: usize, mode: FreeMode) -> (f64, f64) {
    let mut best_ns = u64::MAX;
    let mut total_allocs = 0u64;
    for _ in 0..rounds {
        let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
        let mut cfg = SmrConfig::new(1).with_bag_cap(burst * 2).with_mode(mode);
        cfg.era_freq = 64;
        let smr = build_smr(kind, std::sync::Arc::clone(&alloc), cfg).into_raw();
        let blocks: Vec<_> = (0..burst)
            .map(|_| {
                let p = alloc.alloc(0, 64);
                smr.on_alloc(0, p);
                p
            })
            .collect();
        let a0 = HEAP_ALLOCS.load(Ordering::Relaxed);
        let t0 = now_ns();
        for &p in &blocks {
            // A real caller retires a node it just unlinked: the operation
            // has touched the node's memory moments before. Reproduce that
            // locality so the bench measures the production call pattern,
            // not a cold-memory sweep.
            // SAFETY: `p` is a live 64-byte block owned by this loop.
            unsafe { (p.as_ptr() as *mut u64).write(0) };
            smr.retire(0, p);
        }
        smr.quiesce_and_drain();
        let t1 = now_ns();
        let a1 = HEAP_ALLOCS.load(Ordering::Relaxed);
        best_ns = best_ns.min(t1 - t0);
        total_allocs += a1 - a0;
    }
    (
        best_ns as f64 / burst as f64,
        total_allocs as f64 / (burst * rounds) as f64,
    )
}

/// Steady regime: amortized-free churn, measured past warm-up. The ns/op
/// figure is the best of several measurement windows (noise floor);
/// allocation counts cover every window (a single stray allocation must
/// not be averaged away).
fn bench_steady(kind: SmrKind, ops: usize, mode: FreeMode) -> (f64, f64, u64) {
    const WINDOWS: usize = 5;
    let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
    let mut cfg = SmrConfig::new(1).with_mode(mode).with_bag_cap(256);
    cfg.epoch_check_every = 4;
    cfg.era_freq = 64;
    let smr = build_smr(kind, std::sync::Arc::clone(&alloc), cfg).into_raw();
    let churn = |n: usize| {
        for _ in 0..n {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
            smr.end_op(0);
        }
    };
    // Warm-up: let bags, freeable lists, scratch and chunk store reach
    // their steady footprint.
    churn(ops.max(4096) / 2);
    let per_window = (ops / WINDOWS).max(1);
    let snap0 = smr.stats();
    let a0 = HEAP_ALLOCS.load(Ordering::Relaxed);
    let mut best_ns = u64::MAX;
    for _ in 0..WINDOWS {
        let t0 = now_ns();
        churn(per_window);
        best_ns = best_ns.min(now_ns() - t0);
    }
    let a1 = HEAP_ALLOCS.load(Ordering::Relaxed);
    let snap1 = smr.stats();
    smr.quiesce_and_drain();
    (
        best_ns as f64 / per_window as f64,
        (a1 - a0) as f64 / (per_window * WINDOWS) as f64,
        snap1.retire_path_allocs - snap0.retire_path_allocs,
    )
}

fn main() {
    let burst = env_usize("EPIC_RETIRE_BURST", 32_768);
    let rounds = env_usize("EPIC_RETIRE_ROUNDS", 5);
    let ops = env_usize("EPIC_RETIRE_OPS", 200_000);
    let out_name =
        std::env::var("EPIC_RETIRE_OUT").unwrap_or_else(|_| "BENCH_retire.json".to_string());

    println!("microbench_retire: burst={burst}x{rounds} rounds, steady={ops} ops (af, per_op=1)");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>14} {:>10}",
        "scheme", "burst ns/ret", "burst alloc/ret", "steady ns/op", "steady alloc/op", "smr-ctr"
    );

    let mut rows = Vec::new();
    // Plain rows (batch burst, amortized steady), then the `_adapt` rows:
    // the same pipeline under the adaptive controller, so bench-diff gates
    // the controller's fast-path cost alongside the static modes. `none`
    // has no reclamation pipeline for the controller to steer — skip it.
    let variants = [
        ("", FreeMode::Batch, FreeMode::Amortized { per_op: 1 }),
        ("_adapt", FreeMode::Adaptive, FreeMode::Adaptive),
    ];
    for (suffix, burst_mode, steady_mode) in variants {
        for kind in SmrKind::ALL {
            if kind == SmrKind::None && !suffix.is_empty() {
                continue;
            }
            let (burst_ns, burst_allocs) = bench_burst(kind, burst, rounds, burst_mode);
            let (steady_ns, steady_allocs, smr_ctr) = bench_steady(kind, ops, steady_mode);
            let scheme = format!("{}{}", kind.base_name(), suffix);
            println!(
                "{scheme:<16} {burst_ns:>12.2} {burst_allocs:>14.5} {steady_ns:>12.2} \
                 {steady_allocs:>14.5} {smr_ctr:>10}"
            );
            rows.push(Row {
                scheme,
                burst_ns,
                burst_allocs,
                steady_ns,
                steady_allocs,
                smr_retire_path_allocs: smr_ctr,
            });
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"burst\": {burst}, \"rounds\": {rounds}, \"steady_ops\": {ops}}},"
    );
    let _ = writeln!(json, "  \"schemes\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"burst_ns_per_retire\": {:.3}, \
             \"burst_allocs_per_retire\": {:.6}, \"steady_ns_per_op\": {:.3}, \
             \"steady_allocs_per_op\": {:.6}, \"smr_retire_path_allocs\": {}}}{}",
            r.scheme,
            r.burst_ns,
            r.burst_allocs,
            r.steady_ns,
            r.steady_allocs,
            r.smr_retire_path_allocs,
            comma
        );
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join(&out_name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    // Enforce the invariant, not just report it: for every reclaiming
    // scheme the steady state must perform zero heap allocations, both by
    // the ground-truth global-allocator count and by the scheme-reported
    // counter. (`none` is exempt: its heap grows forever by definition.)
    // EPIC_RETIRE_ASSERT=0 disables the gate for deliberately recording a
    // pre-rewrite baseline.
    if env_usize("EPIC_RETIRE_ASSERT", 1) != 0 {
        for r in rows.iter().filter(|r| r.scheme != "none") {
            assert_eq!(
                r.steady_allocs, 0.0,
                "{}: steady-state retire path allocated on the heap",
                r.scheme
            );
            assert_eq!(
                r.smr_retire_path_allocs, 0,
                "{}: retire_path_allocs counter nonzero in steady state",
                r.scheme
            );
        }
        println!("zero-allocation invariant holds for all reclaiming schemes");
    }
}
