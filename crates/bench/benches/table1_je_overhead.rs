//! Regenerates the paper artifact `table1_je_overhead` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench table1_je_overhead`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::table1_je_overhead();
}
