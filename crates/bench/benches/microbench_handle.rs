//! Handle-path microbenchmark: per-operation overhead of the SMR
//! protection protocol on read-mostly `HmList` workloads, for every scheme.
//!
//! The Harris–Michael list is the hop-heaviest client in the tree zoo
//! (every `get` over an L-key list performs ~L/2 protected hops), so it
//! isolates exactly the cost the `SmrHandle`/`OpGuard` redesign targets:
//! per-hop slot publication + validation (`protect_load`) without
//! re-indexing `tid` slot arrays or dyn-dispatching per hop.
//!
//! Two regimes, both single-threaded (pure protocol overhead, no
//! contention noise):
//!
//! * **get** — pure lookups over a prefilled list; hop cost only.
//! * **mixed** — 90% lookups / 10% updates (alternating insert/remove of
//!   a rotating key) under amortized freeing, so the retire/alloc/drain
//!   path runs at its steady-state rate. A counting `#[global_allocator]`
//!   observes heap traffic from below: in steady state the handle path
//!   must allocate **zero** heap memory per operation (the `none` scheme
//!   is exempt — its garbage grows by definition).
//!
//! The minimum over measurement windows is reported, criterion-style.
//! Results go to stdout and `results/<EPIC_HANDLE_OUT>` (default
//! `BENCH_handle.json`). The committed `BENCH_handle_baseline.json` /
//! `BENCH_handle.json` pair was recorded as the per-scheme minimum over
//! five *interleaved* process runs of this bench against the pre-handle
//! tid-based API and the handle path respectively (identical loop
//! shape), so the two files are directly comparable and machine drift
//! cancels.
//!
//! Knobs: `EPIC_HANDLE_OPS` (measured ops per regime, default 200000),
//! `EPIC_HANDLE_KEYS` (list size, default 64), `EPIC_HANDLE_OUT`,
//! `EPIC_HANDLE_ASSERT` (=0 disables the zero-alloc gate).

use epic_alloc::{build_allocator, AllocatorKind, CostModel};
use epic_ds::{ConcurrentMap, HmList};
use epic_harness::report::results_dir;
use epic_smr::{build_smr, FreeMode, SmrConfig, SmrHandle, SmrKind};
use epic_util::{now_ns, XorShift64};

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Heap allocation calls observed below everything.
static HEAP_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: pure pass-through to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarded contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Row {
    scheme: &'static str,
    get_ns: f64,
    mixed_ns: f64,
    mixed_allocs: f64,
}

/// Builds the list and prefills `keys` consecutive keys.
fn make_list(kind: SmrKind) -> HmList {
    let alloc = build_allocator(AllocatorKind::Je, 1, CostModel::zero());
    let mut cfg = SmrConfig::new(1)
        .with_mode(FreeMode::Amortized { per_op: 1 })
        .with_bag_cap(256);
    cfg.epoch_check_every = 4;
    cfg.era_freq = 64;
    HmList::new(build_smr(kind, Arc::clone(&alloc), cfg))
}

fn bench_scheme(kind: SmrKind, ops: usize, keys: u64) -> Row {
    const WINDOWS: usize = 5;
    let list = make_list(kind);
    let handle: SmrHandle = list.smr().register(0);
    for k in 0..keys {
        list.insert(&handle, k, k);
    }

    // Regime 1: pure lookups (hop cost only).
    let mut rng = XorShift64::new(0x9E37_79B9);
    let get_loop = |rng: &mut XorShift64, n: usize| {
        for _ in 0..n {
            let key = rng.next_bounded(keys);
            std::hint::black_box(list.get(&handle, key));
        }
    };
    get_loop(&mut rng, ops.max(4096) / 4); // warm-up
    let per_window = (ops / WINDOWS).max(1);
    let mut get_best = u64::MAX;
    for _ in 0..WINDOWS {
        let t0 = now_ns();
        get_loop(&mut rng, per_window);
        get_best = get_best.min(now_ns() - t0);
    }

    // Regime 2: 90/10 read-mostly churn; steady-state heap allocs must be
    // zero (AF recycling keeps the chunk store flat).
    let mixed_loop = |rng: &mut XorShift64, n: usize| {
        for i in 0..n {
            let key = rng.next_bounded(keys);
            if i % 10 == 9 {
                if i % 20 == 19 {
                    list.remove(&handle, key);
                } else {
                    list.insert(&handle, key, key);
                }
            } else {
                std::hint::black_box(list.get(&handle, key));
            }
        }
    };
    mixed_loop(&mut rng, ops.max(4096) / 2); // warm-up
    let a0 = HEAP_ALLOCS.load(Ordering::Relaxed);
    let mut mixed_best = u64::MAX;
    for _ in 0..WINDOWS {
        let t0 = now_ns();
        mixed_loop(&mut rng, per_window);
        mixed_best = mixed_best.min(now_ns() - t0);
    }
    let a1 = HEAP_ALLOCS.load(Ordering::Relaxed);

    Row {
        scheme: kind.base_name(),
        get_ns: get_best as f64 / per_window as f64,
        mixed_ns: mixed_best as f64 / per_window as f64,
        mixed_allocs: (a1 - a0) as f64 / (per_window * WINDOWS) as f64,
    }
}

fn main() {
    let ops = env_usize("EPIC_HANDLE_OPS", 200_000);
    let keys = env_usize("EPIC_HANDLE_KEYS", 64) as u64;
    let out_name =
        std::env::var("EPIC_HANDLE_OUT").unwrap_or_else(|_| "BENCH_handle.json".to_string());

    println!("microbench_handle: hmlist, 1 thread, {keys} keys, {ops} ops/regime (af, per_op=1)");
    println!(
        "{:<16} {:>12} {:>12} {:>16}",
        "scheme", "get ns/op", "mixed ns/op", "mixed alloc/op"
    );

    let mut rows = Vec::new();
    for kind in SmrKind::ALL {
        let r = bench_scheme(kind, ops, keys);
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>16.6}",
            r.scheme, r.get_ns, r.mixed_ns, r.mixed_allocs
        );
        rows.push(r);
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"config\": {{\"ops\": {ops}, \"keys\": {keys}}},");
    let _ = writeln!(json, "  \"schemes\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scheme\": \"{}\", \"get_ns_per_op\": {:.3}, \
             \"mixed_ns_per_op\": {:.3}, \"mixed_allocs_per_op\": {:.6}}}{}",
            r.scheme, r.get_ns, r.mixed_ns, r.mixed_allocs, comma
        );
    }
    json.push_str("  ]\n}\n");
    let path = results_dir().join(&out_name);
    match std::fs::write(&path, json) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    // Gate, don't just report: the steady-state handle path must not touch
    // the heap (`none` exempt: its chunk store grows forever by design).
    if env_usize("EPIC_HANDLE_ASSERT", 1) != 0 {
        for r in rows.iter().filter(|r| r.scheme != "none") {
            assert_eq!(
                r.mixed_allocs, 0.0,
                "{}: steady-state handle path allocated on the heap",
                r.scheme
            );
        }
        println!("zero-allocation invariant holds for all reclaiming schemes");
    }
}
