//! Regenerates the paper artifact `fig1_scaling` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig1_scaling`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig1_scaling();
}
