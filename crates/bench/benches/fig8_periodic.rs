//! Regenerates the paper artifact `fig8_periodic` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig8_periodic`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig8_periodic();
}
