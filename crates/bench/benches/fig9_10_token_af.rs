//! Regenerates the paper artifact `fig9_10_token_af` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig9_10_token_af`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig9_10_token_af();
}
