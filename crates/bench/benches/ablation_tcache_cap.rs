//! Regenerates the paper artifact `ablation_tcache_cap` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench ablation_tcache_cap`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::ablation_tcache_cap();
}
