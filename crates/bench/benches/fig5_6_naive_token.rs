//! Regenerates the paper artifact `fig5_6_naive_token` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig5_6_naive_token`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig5_6_naive_token();
}
