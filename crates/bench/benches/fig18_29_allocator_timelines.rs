//! Regenerates the paper artifact `fig18_29_allocator_timelines` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench fig18_29_allocator_timelines`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::fig18_29_allocator_timelines();
}
