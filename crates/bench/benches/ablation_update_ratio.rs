//! Regenerates the `ablation_update_ratio` ablation (DESIGN.md §5). Run with
//! `cargo bench --bench ablation_update_ratio`.

fn main() {
    epic_harness::experiments::ablation_update_ratio();
}
