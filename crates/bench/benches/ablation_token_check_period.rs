//! Regenerates the paper artifact `ablation_token_check_period` (see DESIGN.md §4 for the
//! experiment index). Run with `cargo bench --bench ablation_token_check_period`; scale with
//! `EPIC_MILLIS` / `EPIC_TRIALS` / `EPIC_THREADS` / `EPIC_KEYRANGE`.

fn main() {
    epic_harness::experiments::ablation_token_check_period();
}
