//! # epic-bench
//!
//! Benchmark targets regenerating every table and figure of the paper
//! (DESIGN.md §4 maps each `[[bench]]` target to its artifact), plus a
//! criterion microbenchmark suite (`microbench`) for the building blocks:
//! allocator fast paths, SMR per-operation overheads, and tree operations.
//!
//! All experiment benches honor the `EPIC_*` environment variables
//! documented in `epic-harness`.
