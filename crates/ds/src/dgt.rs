//! The David–Guerraoui–Trigonakis external BST with ticket locks
//! (`DgtTree`), the data structure of the paper's appendix D.
//!
//! * **External**: internal nodes only route; key–value pairs live in
//!   leaves. Internal nodes always have exactly two children.
//! * **Reads are lock-free**: traversals never take locks.
//! * **Updates lock locally**: an insert locks the leaf's parent; a delete
//!   locks the grandparent and parent, then unlinks the leaf *and* its
//!   parent — so a delete retires **two** nodes (`frees_per_delete_hint`
//!   = 2, the §7 AF-tuning example).
//!
//! Routing convention: keys `< node.key` go left, keys `≥ node.key` go
//! right. A new internal for leaves `a < b` gets key `b`.
//!
//! Sentinels: two permanent internals (`g0 → p0`) with key `u64::MAX` and
//! a permanent "empty" leaf of key `u64::MAX`, so every real leaf has a
//! real parent and grandparent and the update paths have no root special
//! cases.

use crate::{alloc_node, free_node_quiescent, ConcurrentMap, MAX_KEY};
use epic_alloc::PoolAllocator;
use epic_smr::sync::{AtomicUsize, Ordering};
use epic_smr::{OpGuard, Restart, Smr, SmrHandle};
use epic_util::TicketLock;
use std::sync::Arc;

/// One node of the external BST (leaf or internal). 64 bytes of payload
/// (the paper's OCC/DGT nodes are "small"); lands in the 64-byte class.
#[repr(C)]
pub(crate) struct Node {
    key: u64,
    value: u64,
    /// 0 ⇒ leaf (external tree: internal nodes always have two children).
    left: AtomicUsize,
    right: AtomicUsize,
    lock: TicketLock,
    /// Set (under the parent's lock) when the node is unlinked; traversal
    /// mark-checks hang off this.
    marked: AtomicUsize,
}

impl Node {
    #[inline]
    fn is_leaf(&self) -> bool {
        self.left.load(Ordering::Acquire) == 0
    }

    #[inline]
    fn child(&self, go_left: bool) -> &AtomicUsize {
        if go_left {
            &self.left
        } else {
            &self.right
        }
    }

    #[inline]
    fn is_marked(&self) -> bool {
        self.marked.load(Ordering::SeqCst) != 0
    }

    #[inline]
    fn set_marked(&self) {
        self.marked.store(1, Ordering::SeqCst);
    }
}

/// Shorthand: dereference a node address.
///
/// # Safety
/// `addr` must be a node pointer obtained from this tree's links while
/// protected under the SMR discipline (or during quiescence).
#[inline]
unsafe fn node<'a>(addr: usize) -> &'a Node {
    debug_assert!(addr != 0);
    // SAFETY: forwarded to caller.
    unsafe { &*(addr as *const Node) }
}

/// The traversal window: grandparent, parent, leaf (+ which side each hangs
/// off).
struct Window {
    g: usize,
    p: usize,
    l: usize,
    /// p is on this side of g.
    p_left: bool,
    /// l is on this side of p.
    l_left: bool,
}

/// DGT external BST. See module docs.
pub struct DgtTree {
    smr: Smr,
    alloc: Arc<dyn PoolAllocator>,
    g0: usize,
}

// SAFETY: all shared state is atomics + SMR-protected nodes.
unsafe impl Send for DgtTree {}
unsafe impl Sync for DgtTree {}

impl DgtTree {
    /// Builds an empty tree over `smr`'s allocator.
    ///
    /// Briefly registers tid 0 to allocate the sentinels.
    ///
    /// # Panics
    /// If another [`epic_smr::SmrHandle`] for tid 0 is live at call time
    /// (register after construction, or drop the handle first).
    pub fn new(smr: Smr) -> Self {
        let g0 = {
            let handle = smr.register(0);
            let guard = handle.begin_op();
            let mk = |key: u64, left: usize, right: usize| -> usize {
                // SAFETY: Node is POD; sentinels live for the tree's
                // lifetime.
                unsafe {
                    alloc_node(
                        &guard,
                        Node {
                            key,
                            value: 0,
                            left: AtomicUsize::new(left),
                            right: AtomicUsize::new(right),
                            lock: TicketLock::new(),
                            marked: AtomicUsize::new(0),
                        },
                    ) as usize
                }
            };
            let empty_leaf = mk(u64::MAX, 0, 0);
            let right_leaf_p = mk(u64::MAX, 0, 0);
            let right_leaf_g = mk(u64::MAX, 0, 0);
            let p0 = mk(u64::MAX, empty_leaf, right_leaf_p);
            mk(u64::MAX, p0, right_leaf_g)
        };
        let alloc = Arc::clone(smr.allocator());
        DgtTree { smr, alloc, g0 }
    }

    /// One protected hop: [`OpGuard::protect_load`] over `parent.child(dir)`
    /// plus the mark check a validating scheme needs — if the parent is
    /// already unlinked, `c` may be retired despite the stable link (the
    /// protection was published too late). `Err(Restart)` means restart
    /// the operation.
    #[inline]
    fn read_child(
        &self,
        g: &OpGuard<'_>,
        slot: usize,
        parent: &Node,
        go_left: bool,
    ) -> Result<usize, Restart> {
        let c = g.protect_load(slot, parent.child(go_left))?;
        if g.validating() && parent.is_marked() {
            return Err(Restart);
        }
        Ok(c)
    }

    /// Descends to the leaf for `key`, maintaining the (g, p, l) window.
    /// `Err(Restart)` means restart.
    fn search(&self, guard: &OpGuard<'_>, key: u64) -> Result<Window, Restart> {
        // Sentinels are never retired, so the first two hops are safe to
        // read unprotected; still protect them for slot bookkeeping
        // simplicity.
        let mut g = self.g0;
        // SAFETY: g0 is a permanent sentinel.
        let g_node = unsafe { node(g) };
        let mut p_left = true;
        let mut p = self.read_child(guard, 0, g_node, true)?;
        let mut l_left = true;
        // SAFETY: p0 is protected by slot 0 (or permanent).
        let mut l = self.read_child(guard, 1, unsafe { node(p) }, true)?;
        let mut depth = 2usize;
        loop {
            // SAFETY: l is protected by the previous read_child.
            let l_node = unsafe { node(l) };
            if l_node.is_leaf() {
                return Ok(Window {
                    g,
                    p,
                    l,
                    p_left,
                    l_left,
                });
            }
            let go_left = key < l_node.key;
            let next = self.read_child(guard, depth % 3, l_node, go_left)?;
            g = p;
            p = l;
            p_left = l_left;
            l = next;
            l_left = go_left;
            depth += 1;
        }
    }

    /// Builds a fresh leaf.
    fn make_leaf(&self, g: &OpGuard<'_>, key: u64, value: u64) -> usize {
        // SAFETY: POD node; published or explicitly deallocated by callers.
        unsafe {
            alloc_node(
                g,
                Node {
                    key,
                    value,
                    left: AtomicUsize::new(0),
                    right: AtomicUsize::new(0),
                    lock: TicketLock::new(),
                    marked: AtomicUsize::new(0),
                },
            ) as usize
        }
    }

    fn size_rec(&self, addr: usize, out: &mut Vec<u64>) {
        // SAFETY: quiescent traversal (caller contract of size()).
        let n = unsafe { node(addr) };
        if n.is_leaf() {
            if n.key <= MAX_KEY {
                out.push(n.key);
            }
            return;
        }
        self.size_rec(n.left.load(Ordering::Acquire), out);
        self.size_rec(n.right.load(Ordering::Acquire), out);
    }

    fn check_rec(&self, addr: usize, lo: u64, hi: u64, report: &mut Vec<String>) {
        // SAFETY: quiescent traversal.
        let n = unsafe { node(addr) };
        if n.is_marked() {
            report.push(format!("reachable node key={} is marked", n.key));
        }
        if n.is_leaf() {
            if n.key <= MAX_KEY && !(lo <= n.key && n.key < hi) {
                report.push(format!("leaf {} outside routing range [{lo},{hi})", n.key));
            }
            return;
        }
        if n.right.load(Ordering::Acquire) == 0 {
            report.push(format!("internal {} with only one child", n.key));
            return;
        }
        self.check_rec(n.left.load(Ordering::Acquire), lo, n.key.min(hi), report);
        self.check_rec(n.right.load(Ordering::Acquire), n.key.max(lo), hi, report);
    }

    fn drop_rec(&self, addr: usize) {
        // SAFETY: exclusive access during drop.
        let n = unsafe { node(addr) };
        let (l, r) = (
            n.left.load(Ordering::Relaxed),
            n.right.load(Ordering::Relaxed),
        );
        if l != 0 {
            self.drop_rec(l);
            self.drop_rec(r);
        }
        // SAFETY: node came from this tree's allocator; freed exactly once
        // (drop walks each reachable node once; retired nodes were already
        // drained by quiesce_and_drain).
        unsafe { free_node_quiescent(&self.alloc, addr as *mut Node) };
    }
}

impl ConcurrentMap for DgtTree {
    fn insert(&self, h: &SmrHandle, key: u64, value: u64) -> bool {
        assert!(key <= MAX_KEY, "key space reserved for sentinels");
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let (p_node, l_node) = unsafe { (node(w.p), node(w.l)) };
            if l_node.key == key {
                break false;
            }
            guard.enter_write_phase(&[w.p, w.l]);
            p_node.lock.lock();
            let valid =
                !p_node.is_marked() && p_node.child(w.l_left).load(Ordering::Acquire) == w.l;
            if !valid {
                p_node.lock.unlock();
                guard.restart(); // re-enter read phase (NBR) and re-tick
                continue;
            }
            let new_leaf = self.make_leaf(&guard, key, value);
            let (nk, nl, nr) = if key < l_node.key {
                (l_node.key, new_leaf, w.l)
            } else {
                (key, w.l, new_leaf)
            };
            // SAFETY: fresh POD node.
            let new_internal = unsafe {
                alloc_node(
                    &guard,
                    Node {
                        key: nk,
                        value: 0,
                        left: AtomicUsize::new(nl),
                        right: AtomicUsize::new(nr),
                        lock: TicketLock::new(),
                        marked: AtomicUsize::new(0),
                    },
                ) as usize
            };
            p_node
                .child(w.l_left)
                .store(new_internal, Ordering::Release);
            p_node.lock.unlock();
            break true;
        };
        drop(guard);
        result
    }

    fn remove(&self, h: &SmrHandle, key: u64) -> bool {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let (g_node, p_node, l_node) = unsafe { (node(w.g), node(w.p), node(w.l)) };
            if l_node.key != key {
                break false;
            }
            guard.enter_write_phase(&[w.g, w.p, w.l]);
            g_node.lock.lock();
            p_node.lock.lock();
            let valid = !g_node.is_marked()
                && !p_node.is_marked()
                && g_node.child(w.p_left).load(Ordering::Acquire) == w.p
                && p_node.child(w.l_left).load(Ordering::Acquire) == w.l;
            if !valid {
                p_node.lock.unlock();
                g_node.lock.unlock();
                guard.restart();
                continue;
            }
            let sibling = p_node.child(!w.l_left).load(Ordering::Acquire);
            // Mark before unlinking: traversal mark-checks rely on it.
            p_node.set_marked();
            l_node.set_marked();
            g_node.child(w.p_left).store(sibling, Ordering::Release);
            p_node.lock.unlock();
            g_node.lock.unlock();
            // SAFETY: both nodes are unlinked and unreachable from the
            // root; the SMR scheme delays the actual free.
            unsafe {
                guard.retire(std::ptr::NonNull::new_unchecked(w.p as *mut u8));
                guard.retire(std::ptr::NonNull::new_unchecked(w.l as *mut u8));
            }
            break true;
        };
        drop(guard);
        result
    }

    fn get(&self, h: &SmrHandle, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let l_node = unsafe { node(w.l) };
            if l_node.key == key {
                break Some(l_node.value);
            }
            break None;
        };
        drop(guard);
        result
    }

    fn size(&self) -> usize {
        self.collect_keys().len()
    }

    fn collect_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.size_rec(self.g0, &mut out);
        out.sort_unstable();
        out
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut report = Vec::new();
        self.check_rec(self.g0, 0, u64::MAX, &mut report);
        let keys = self.collect_keys();
        for w in keys.windows(2) {
            if w[0] == w[1] {
                report.push(format!("duplicate key {}", w[0]));
            }
        }
        if report.is_empty() {
            Ok(())
        } else {
            Err(report.join("; "))
        }
    }

    fn ds_name(&self) -> &'static str {
        "dgttree"
    }

    fn smr(&self) -> &Smr {
        &self.smr
    }

    fn frees_per_delete_hint(&self) -> usize {
        2
    }
}

impl Drop for DgtTree {
    fn drop(&mut self) {
        // Free everything still in limbo, then the live tree.
        self.smr.quiesce_and_drain();
        self.drop_rec(self.g0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};
    use epic_smr::{build_smr, SmrConfig, SmrKind};

    fn tree(kind: SmrKind, threads: usize) -> DgtTree {
        let alloc = build_allocator(AllocatorKind::Sys, threads, CostModel::zero());
        let cfg = SmrConfig::new(threads).with_bag_cap(32);
        DgtTree::new(build_smr(kind, alloc, cfg))
    }

    #[test]
    fn sequential_semantics() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        assert!(!t.contains(&h, 5));
        assert!(t.insert(&h, 5, 50));
        assert!(!t.insert(&h, 5, 51), "duplicate insert");
        assert_eq!(t.get(&h, 5), Some(50));
        assert!(t.insert(&h, 3, 30));
        assert!(t.insert(&h, 8, 80));
        assert_eq!(t.collect_keys(), vec![3, 5, 8]);
        assert!(t.remove(&h, 5));
        assert!(!t.remove(&h, 5), "double remove");
        assert_eq!(t.collect_keys(), vec![3, 8]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn empty_then_refill() {
        let t = tree(SmrKind::Rcu, 1);
        let h = t.smr().register(0);
        for k in 0..64 {
            assert!(t.insert(&h, k, k));
        }
        for k in 0..64 {
            assert!(t.remove(&h, k));
        }
        assert_eq!(t.size(), 0);
        t.check_invariants().unwrap();
        for k in (0..64).rev() {
            assert!(t.insert(&h, k, k * 2));
        }
        assert_eq!(t.size(), 64);
        assert_eq!(t.get(&h, 10), Some(20));
        t.check_invariants().unwrap();
    }

    #[test]
    fn deletes_retire_two_nodes() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        t.insert(&h, 1, 1);
        t.insert(&h, 2, 2);
        let retired_before = t.smr().stats().retired;
        t.remove(&h, 1);
        assert_eq!(t.smr().stats().retired - retired_before, 2);
        assert_eq!(t.frees_per_delete_hint(), 2);
    }

    #[test]
    fn concurrent_stress_every_scheme() {
        // 4 threads hammer disjoint+overlapping ranges under every scheme;
        // afterwards the survivors must match a sequential replay oracle
        // keyed by deterministic per-thread patterns.
        for kind in SmrKind::ALL {
            let t = Arc::new(tree(kind, 4));
            let handles: Vec<_> = (0..4usize)
                .map(|tid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let h = t.smr().register(tid);
                        // Each thread owns keys ≡ tid (mod 4): no cross-thread
                        // interference on ownership, full interference on
                        // structure.
                        let base = tid as u64;
                        for round in 0..300u64 {
                            for i in 0..8u64 {
                                let k = base + 4 * (i + 8 * (round % 3));
                                if round % 2 == 0 {
                                    t.insert(&h, k, k + 1);
                                } else {
                                    t.remove(&h, k);
                                }
                            }
                            // Reads over the whole space.
                            for i in 0..8u64 {
                                let _ = t.get(&h, i * 13 % 97);
                            }
                        }
                        h.detach();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            // Survivor check: round 599 was odd (deletes of round-2 keys);
            // replay sequentially.
            let mut oracle = std::collections::BTreeSet::new();
            for tid in 0..4u64 {
                for round in 0..300u64 {
                    for i in 0..8u64 {
                        let k = tid + 4 * (i + 8 * (round % 3));
                        if round % 2 == 0 {
                            oracle.insert(k);
                        } else {
                            oracle.remove(&k);
                        }
                    }
                }
            }
            let got = t.collect_keys();
            let want: Vec<u64> = oracle.into_iter().collect();
            assert_eq!(got, want, "{kind:?} diverged from oracle");
        }
    }

    #[test]
    fn reclamation_happens_under_churn() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        for round in 0..2_000u64 {
            t.insert(&h, round % 16, round);
            t.remove(&h, round % 16);
        }
        let s = t.smr().stats();
        assert!(s.retired > 3_000, "churn retires: {s:?}");
        assert!(s.freed > 2_000, "and reclaims: {s:?}");
    }

    #[test]
    fn drop_frees_all_pool_blocks() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1).with_bag_cap(16);
        {
            let t = DgtTree::new(build_smr(SmrKind::Debra, Arc::clone(&alloc), cfg));
            let h = t.smr().register(0);
            for k in 0..100 {
                t.insert(&h, k, k);
            }
            for k in 0..50 {
                t.remove(&h, k);
            }
        }
        // Tree dropped: every allocated block must be back (Sys model
        // tracks live bytes; allocs == deallocs means no leak).
        let snap = alloc.snapshot();
        assert_eq!(
            snap.totals.allocs, snap.totals.deallocs,
            "node leak at drop"
        );
    }
}
