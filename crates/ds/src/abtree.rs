//! Leaf-oriented concurrent (a,b)-tree (`AbTree`) — the paper's primary
//! benchmark structure ("ABtree", Brown's concurrency-friendly B-tree
//! variant).
//!
//! * **Leaf-oriented**: key–value pairs live only in leaves; internal
//!   nodes hold separator keys and child pointers.
//! * **Copy-on-write nodes**: every update builds replacement node(s) and
//!   installs them in the parent's child slot under the parent's lock;
//!   node contents (keys, len) are immutable once published, so lock-free
//!   traversals always see consistent nodes. This is what gives the paper
//!   its signature allocation profile: **one or two ~240-byte nodes
//!   allocated and retired per insert or delete** (§3).
//! * **Fat nodes**: up to [`CAP`] = 12 keys per leaf / children per
//!   internal ⇒ 216-byte nodes in the 256-byte size class.
//!
//! Structural changes (leaf split / parent collapse) lock the grandparent
//! and parent only. Divergence from Brown's LLX/SCX protocol (documented
//! in DESIGN.md): instead of multi-node atomic SCX sections we use
//! per-node ticket locks with validation, and instead of strict (a,b)
//! rebalancing a full parent *overflows* into a fresh two-child internal
//! while two-child parents *collapse* into their sibling — heights remain
//! logarithmic in expectation under uniform workloads, and the
//! retire/alloc stream shape is preserved.

use crate::{alloc_node, dealloc_node, free_node_quiescent, ConcurrentMap, MAX_KEY};
use epic_alloc::PoolAllocator;
use epic_smr::sync::{AtomicUsize, Ordering};
use epic_smr::{OpGuard, Restart, Smr, SmrHandle};
use epic_util::TicketLock;
use std::sync::Arc;

/// Maximum keys per leaf and children per internal node.
pub const CAP: usize = 12;

/// One (a,b)-tree node. 216 bytes → 256-byte class (the paper's "large
/// nodes (240 bytes each)").
#[repr(C)]
pub(crate) struct Node {
    is_leaf: u8,
    /// Leaf: number of keys. Internal: number of children (keys used =
    /// len − 1). Immutable after publication.
    len: u8,
    _pad: [u8; 6],
    marked: AtomicUsize,
    lock: TicketLock,
    /// Leaf: the keys. Internal: separators `keys[0..len-1]`.
    keys: [u64; CAP],
    /// Leaf: values (immutable). Internal: child pointers (mutated only
    /// under `lock`).
    slots: [AtomicUsize; CAP],
}

impl Node {
    fn empty_slots() -> [AtomicUsize; CAP] {
        std::array::from_fn(|_| AtomicUsize::new(0))
    }

    fn blank(is_leaf: bool) -> Node {
        Node {
            is_leaf: u8::from(is_leaf),
            len: 0,
            _pad: [0; 6],
            marked: AtomicUsize::new(0),
            lock: TicketLock::new(),
            keys: [0; CAP],
            slots: Self::empty_slots(),
        }
    }

    #[inline]
    fn is_leaf(&self) -> bool {
        self.is_leaf != 0
    }

    #[inline]
    fn len(&self) -> usize {
        self.len as usize
    }

    #[inline]
    fn is_marked(&self) -> bool {
        self.marked.load(Ordering::SeqCst) != 0
    }

    #[inline]
    fn set_marked(&self) {
        self.marked.store(1, Ordering::SeqCst);
    }

    /// Internal: the child slot index routing `key`.
    #[inline]
    fn child_index(&self, key: u64) -> usize {
        debug_assert!(!self.is_leaf());
        let nkeys = self.len() - 1;
        for i in 0..nkeys {
            if key < self.keys[i] {
                return i;
            }
        }
        nkeys
    }

    /// Leaf: position of `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        debug_assert!(self.is_leaf());
        self.keys[..self.len()].iter().position(|&k| k == key)
    }
}

const _: () = assert!(std::mem::size_of::<Node>() <= 256);

/// # Safety
/// `addr` must be a protected (or quiescent) node pointer from this tree.
#[inline]
unsafe fn node<'a>(addr: usize) -> &'a Node {
    debug_assert!(addr != 0);
    // SAFETY: forwarded to caller.
    unsafe { &*(addr as *const Node) }
}

/// Traversal window: grandparent (0 when parent is the entry sentinel),
/// parent, leaf, and the slot indices connecting them.
struct Window {
    g: usize,
    p: usize,
    l: usize,
    /// Index of `p` in `g` (meaningless when `g == 0`).
    p_idx: usize,
    /// Index of `l` in `p`.
    l_idx: usize,
}

/// Concurrent (a,b)-tree. See module docs.
pub struct AbTree {
    smr: Smr,
    alloc: Arc<dyn PoolAllocator>,
    /// Permanent one-child internal sentinel; its slot 0 is the tree.
    entry: usize,
}

// SAFETY: shared state is atomics + SMR-protected nodes.
unsafe impl Send for AbTree {}
unsafe impl Sync for AbTree {}

impl AbTree {
    /// Builds an empty tree over `smr`'s allocator.
    ///
    /// Briefly registers tid 0 to allocate the sentinels.
    ///
    /// # Panics
    /// If another [`epic_smr::SmrHandle`] for tid 0 is live at call time
    /// (register after construction, or drop the handle first).
    pub fn new(smr: Smr) -> Self {
        let alloc = Arc::clone(smr.allocator());
        let entry_addr = {
            let handle = smr.register(0);
            let guard = handle.begin_op();
            let mut leaf = Node::blank(true);
            leaf.len = 0;
            // SAFETY: POD nodes.
            let leaf_addr = unsafe { alloc_node(&guard, leaf) as usize };
            let mut entry = Node::blank(false);
            entry.len = 1;
            entry.slots[0] = AtomicUsize::new(leaf_addr);
            // SAFETY: POD nodes.
            unsafe { alloc_node(&guard, entry) as usize }
        };
        AbTree {
            smr,
            alloc,
            entry: entry_addr,
        }
    }

    /// Protected hop: one [`OpGuard::protect_load`] plus the copy-on-write
    /// staleness check a validating scheme needs (a marked parent may
    /// already be retired, so its slot content is garbage-in-waiting).
    #[inline]
    fn read_child(
        &self,
        g: &OpGuard<'_>,
        slot: usize,
        parent: &Node,
        idx: usize,
    ) -> Result<usize, Restart> {
        let c = g.protect_load(slot, &parent.slots[idx])?;
        if g.validating() && parent.is_marked() {
            return Err(Restart);
        }
        Ok(c)
    }

    /// Descends to the leaf routing `key`.
    fn search(&self, guard: &OpGuard<'_>, key: u64) -> Result<Window, Restart> {
        let mut g = 0usize;
        let mut p = self.entry;
        let mut p_idx = 0usize;
        // SAFETY: entry is a permanent sentinel.
        let mut l = self.read_child(guard, 0, unsafe { node(p) }, 0)?;
        let mut l_idx = 0usize;
        let mut depth = 1usize;
        loop {
            // SAFETY: protected by the previous read_child.
            let l_node = unsafe { node(l) };
            if l_node.is_leaf() {
                return Ok(Window {
                    g,
                    p,
                    l,
                    p_idx,
                    l_idx,
                });
            }
            let idx = l_node.child_index(key);
            let next = self.read_child(guard, depth % 3, l_node, idx)?;
            g = p;
            p = l;
            p_idx = l_idx;
            l = next;
            l_idx = idx;
            depth += 1;
        }
    }

    /// Allocates a published-ready node.
    fn publish(&self, g: &OpGuard<'_>, n: Node) -> usize {
        // SAFETY: POD node; callers publish it or return it via
        // `discard`.
        unsafe { alloc_node(g, n) as usize }
    }

    /// Returns an unpublished node to the allocator (validation failure).
    fn discard(&self, g: &OpGuard<'_>, addr: usize) {
        // SAFETY: `addr` came from `publish` and was never linked.
        unsafe { dealloc_node(g, addr as *mut Node) };
    }

    /// Leaf copy with `key → value` inserted (len < CAP).
    fn leaf_copy_insert(&self, leaf: &Node, key: u64, value: u64) -> Node {
        let mut n = Node::blank(true);
        let len = leaf.len();
        let pos = leaf.keys[..len]
            .iter()
            .position(|&k| k > key)
            .unwrap_or(len);
        for i in 0..pos {
            n.keys[i] = leaf.keys[i];
            n.slots[i] = AtomicUsize::new(leaf.slots[i].load(Ordering::Acquire));
        }
        n.keys[pos] = key;
        n.slots[pos] = AtomicUsize::new(value as usize);
        for i in pos..len {
            n.keys[i + 1] = leaf.keys[i];
            n.slots[i + 1] = AtomicUsize::new(leaf.slots[i].load(Ordering::Acquire));
        }
        n.len = (len + 1) as u8;
        n
    }

    /// Leaf copy with the key at `pos` removed.
    fn leaf_copy_remove(&self, leaf: &Node, pos: usize) -> Node {
        let mut n = Node::blank(true);
        let len = leaf.len();
        let mut out = 0;
        for i in 0..len {
            if i == pos {
                continue;
            }
            n.keys[out] = leaf.keys[i];
            n.slots[out] = AtomicUsize::new(leaf.slots[i].load(Ordering::Acquire));
            out += 1;
        }
        n.len = out as u8;
        n
    }

    /// Splits a full leaf plus one new pair into two leaves; returns
    /// (left, right, separator).
    fn leaf_split(&self, leaf: &Node, key: u64, value: u64) -> (Node, Node, u64) {
        let len = leaf.len();
        debug_assert_eq!(len, CAP);
        let mut keys = Vec::with_capacity(CAP + 1);
        let mut vals = Vec::with_capacity(CAP + 1);
        let pos = leaf.keys[..len]
            .iter()
            .position(|&k| k > key)
            .unwrap_or(len);
        for i in 0..pos {
            keys.push(leaf.keys[i]);
            vals.push(leaf.slots[i].load(Ordering::Acquire));
        }
        keys.push(key);
        vals.push(value as usize);
        for i in pos..len {
            keys.push(leaf.keys[i]);
            vals.push(leaf.slots[i].load(Ordering::Acquire));
        }
        let mid = keys.len() / 2;
        let mut left = Node::blank(true);
        let mut right = Node::blank(true);
        for i in 0..mid {
            left.keys[i] = keys[i];
            left.slots[i] = AtomicUsize::new(vals[i]);
        }
        left.len = mid as u8;
        for i in mid..keys.len() {
            right.keys[i - mid] = keys[i];
            right.slots[i - mid] = AtomicUsize::new(vals[i]);
        }
        right.len = (keys.len() - mid) as u8;
        let sep = keys[mid];
        (left, right, sep)
    }

    /// Internal copy with child `idx` replaced by `left` and `(sep,
    /// right)` spliced in after it (len < CAP).
    fn internal_copy_split(
        &self,
        p: &Node,
        idx: usize,
        left: usize,
        sep: u64,
        right: usize,
    ) -> Node {
        let len = p.len();
        debug_assert!(len < CAP);
        let mut n = Node::blank(false);
        let mut kout = 0;
        let mut cout = 0;
        for i in 0..len {
            if i == idx {
                n.slots[cout] = AtomicUsize::new(left);
                cout += 1;
                n.keys[kout] = sep;
                kout += 1;
                n.slots[cout] = AtomicUsize::new(right);
                cout += 1;
            } else {
                n.slots[cout] = AtomicUsize::new(p.slots[i].load(Ordering::Acquire));
                cout += 1;
            }
            if i < len - 1 {
                n.keys[kout] = p.keys[i];
                kout += 1;
            }
        }
        n.len = cout as u8;
        n
    }

    /// Internal copy with child `idx` (and its separator) removed
    /// (len > 2).
    fn internal_copy_remove(&self, p: &Node, idx: usize) -> Node {
        let len = p.len();
        debug_assert!(len > 2);
        let mut n = Node::blank(false);
        let mut cout = 0;
        for i in 0..len {
            if i == idx {
                continue;
            }
            n.slots[cout] = AtomicUsize::new(p.slots[i].load(Ordering::Acquire));
            cout += 1;
        }
        // Separators: drop keys[idx-1] (or keys[0] when idx == 0).
        let drop_key = idx.saturating_sub(1);
        let mut kout = 0;
        for i in 0..len - 1 {
            if i == drop_key {
                continue;
            }
            n.keys[kout] = p.keys[i];
            kout += 1;
        }
        n.len = cout as u8;
        n
    }

    /// Lock + validate helper for single-parent updates. On success the
    /// parent lock is HELD.
    fn lock_parent(&self, p: &Node, l_idx: usize, l: usize) -> bool {
        p.lock.lock();
        let ok = !p.is_marked() && p.slots[l_idx].load(Ordering::Acquire) == l;
        if !ok {
            p.lock.unlock();
        }
        ok
    }

    /// Lock + validate grandparent and parent. On success BOTH locks are
    /// held.
    fn lock_two(
        &self,
        g: &Node,
        p_idx: usize,
        p_addr: usize,
        p: &Node,
        l_idx: usize,
        l: usize,
    ) -> bool {
        g.lock.lock();
        p.lock.lock();
        let ok = !g.is_marked()
            && !p.is_marked()
            && g.slots[p_idx].load(Ordering::Acquire) == p_addr
            && p.slots[l_idx].load(Ordering::Acquire) == l;
        if !ok {
            p.lock.unlock();
            g.lock.unlock();
        }
        ok
    }

    fn retire2(&self, g: &OpGuard<'_>, a: usize, b: usize) {
        // SAFETY: both unlinked; SMR delays the frees.
        unsafe {
            g.retire(std::ptr::NonNull::new_unchecked(a as *mut u8));
            g.retire(std::ptr::NonNull::new_unchecked(b as *mut u8));
        }
    }

    fn retire1(&self, g: &OpGuard<'_>, a: usize) {
        // SAFETY: unlinked; SMR delays the free.
        unsafe {
            g.retire(std::ptr::NonNull::new_unchecked(a as *mut u8));
        }
    }

    fn collect_rec(&self, addr: usize, out: &mut Vec<u64>) {
        // SAFETY: quiescent traversal.
        let n = unsafe { node(addr) };
        if n.is_leaf() {
            out.extend_from_slice(&n.keys[..n.len()]);
            return;
        }
        for i in 0..n.len() {
            self.collect_rec(n.slots[i].load(Ordering::Acquire), out);
        }
    }

    fn check_rec(&self, addr: usize, lo: u64, hi: u64, report: &mut Vec<String>) {
        // SAFETY: quiescent traversal.
        let n = unsafe { node(addr) };
        if n.is_marked() {
            report.push(format!("reachable node marked (leaf={})", n.is_leaf()));
        }
        if n.is_leaf() {
            let keys = &n.keys[..n.len()];
            for w in keys.windows(2) {
                if w[0] >= w[1] {
                    report.push(format!("leaf keys unsorted: {} >= {}", w[0], w[1]));
                }
            }
            for &k in keys {
                if !(lo <= k && k < hi) {
                    report.push(format!("leaf key {k} outside routing range [{lo},{hi})"));
                }
            }
            return;
        }
        let len = n.len();
        if addr != self.entry && len < 2 {
            report.push(format!("non-entry internal with {len} children"));
        }
        let seps = &n.keys[..len.saturating_sub(1)];
        for w in seps.windows(2) {
            if w[0] >= w[1] {
                report.push(format!("separators unsorted: {} >= {}", w[0], w[1]));
            }
        }
        for i in 0..len {
            let clo = if i == 0 { lo } else { seps[i - 1].max(lo) };
            let chi = if i == len - 1 { hi } else { seps[i].min(hi) };
            self.check_rec(n.slots[i].load(Ordering::Acquire), clo, chi, report);
        }
    }

    fn drop_rec(&self, addr: usize) {
        // SAFETY: exclusive access during drop.
        let n = unsafe { node(addr) };
        if !n.is_leaf() {
            for i in 0..n.len() {
                self.drop_rec(n.slots[i].load(Ordering::Relaxed));
            }
        }
        // SAFETY: each reachable node freed exactly once.
        unsafe { free_node_quiescent(&self.alloc, addr as *mut Node) };
    }
}

impl ConcurrentMap for AbTree {
    fn insert(&self, h: &SmrHandle, key: u64, value: u64) -> bool {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by traversal.
            let (p_node, l_node) = unsafe { (node(w.p), node(w.l)) };
            if l_node.find(key).is_some() {
                break false;
            }

            if l_node.len() < CAP {
                // Simple path: replace the leaf (1 alloc, 1 retire).
                guard.enter_write_phase(&[w.p, w.l]);
                let fresh = self.publish(&guard, self.leaf_copy_insert(l_node, key, value));
                if !self.lock_parent(p_node, w.l_idx, w.l) {
                    self.discard(&guard, fresh);
                    guard.restart();
                    continue;
                }
                l_node.set_marked();
                p_node.slots[w.l_idx].store(fresh, Ordering::Release);
                p_node.lock.unlock();
                self.retire1(&guard, w.l);
                break true;
            }

            // Split path.
            let (left, right, sep) = self.leaf_split(l_node, key, value);
            if w.p == self.entry || p_node.len() == CAP {
                // Overflow: a fresh two-child internal absorbs the split
                // (parent keys unchanged, so only the parent lock is
                // needed).
                guard.enter_write_phase(&[w.p, w.l]);
                let l_addr = self.publish(&guard, left);
                let r_addr = self.publish(&guard, right);
                let mut np = Node::blank(false);
                np.len = 2;
                np.keys[0] = sep;
                np.slots[0] = AtomicUsize::new(l_addr);
                np.slots[1] = AtomicUsize::new(r_addr);
                let np_addr = self.publish(&guard, np);
                if !self.lock_parent(p_node, w.l_idx, w.l) {
                    self.discard(&guard, np_addr);
                    self.discard(&guard, l_addr);
                    self.discard(&guard, r_addr);
                    guard.restart();
                    continue;
                }
                l_node.set_marked();
                p_node.slots[w.l_idx].store(np_addr, Ordering::Release);
                p_node.lock.unlock();
                self.retire1(&guard, w.l);
                break true;
            }

            // Absorb: copy the parent with the split spliced in (2 retires).
            // SAFETY: protected by traversal; g != 0 because p != entry.
            let g_node = unsafe { node(w.g) };
            guard.enter_write_phase(&[w.g, w.p, w.l]);
            let l_addr = self.publish(&guard, left);
            let r_addr = self.publish(&guard, right);
            if !self.lock_two(g_node, w.p_idx, w.p, p_node, w.l_idx, w.l) {
                self.discard(&guard, l_addr);
                self.discard(&guard, r_addr);
                guard.restart();
                continue;
            }
            // The parent copy MUST be built while p's lock is held: p's
            // child slots are mutable, and copying them before the lock
            // would let a concurrent slot update vanish — resurrecting a
            // retired child (use-after-free).
            let p_new = self.publish(
                &guard,
                self.internal_copy_split(p_node, w.l_idx, l_addr, sep, r_addr),
            );
            p_node.set_marked();
            l_node.set_marked();
            g_node.slots[w.p_idx].store(p_new, Ordering::Release);
            p_node.lock.unlock();
            g_node.lock.unlock();
            self.retire2(&guard, w.p, w.l);
            break true;
        };
        drop(guard);
        result
    }

    fn remove(&self, h: &SmrHandle, key: u64) -> bool {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by traversal.
            let (p_node, l_node) = unsafe { (node(w.p), node(w.l)) };
            let Some(pos) = l_node.find(key) else {
                break false;
            };

            if l_node.len() > 1 || w.p == self.entry {
                // Replace the leaf (possibly by an empty one when it is the
                // root leaf).
                guard.enter_write_phase(&[w.p, w.l]);
                let fresh = self.publish(&guard, self.leaf_copy_remove(l_node, pos));
                if !self.lock_parent(p_node, w.l_idx, w.l) {
                    self.discard(&guard, fresh);
                    guard.restart();
                    continue;
                }
                l_node.set_marked();
                p_node.slots[w.l_idx].store(fresh, Ordering::Release);
                p_node.lock.unlock();
                self.retire1(&guard, w.l);
                break true;
            }

            // Leaf empties: restructure the parent.
            // SAFETY: g != 0 because p != entry.
            let g_node = unsafe { node(w.g) };
            guard.enter_write_phase(&[w.g, w.p, w.l]);
            if p_node.len() == 2 {
                // Collapse: the sibling subtree replaces the parent.
                if !self.lock_two(g_node, w.p_idx, w.p, p_node, w.l_idx, w.l) {
                    guard.restart();
                    continue;
                }
                let sibling = p_node.slots[1 - w.l_idx].load(Ordering::Acquire);
                p_node.set_marked();
                l_node.set_marked();
                g_node.slots[w.p_idx].store(sibling, Ordering::Release);
                p_node.lock.unlock();
                g_node.lock.unlock();
                self.retire2(&guard, w.p, w.l);
                break true;
            }
            // p.len > 2: copy the parent without this child.
            if !self.lock_two(g_node, w.p_idx, w.p, p_node, w.l_idx, w.l) {
                guard.restart();
                continue;
            }
            // Built under p's lock — see the split path for why.
            let p_new = self.publish(&guard, self.internal_copy_remove(p_node, w.l_idx));
            p_node.set_marked();
            l_node.set_marked();
            g_node.slots[w.p_idx].store(p_new, Ordering::Release);
            p_node.lock.unlock();
            g_node.lock.unlock();
            self.retire2(&guard, w.p, w.l);
            break true;
        };
        drop(guard);
        result
    }

    fn get(&self, h: &SmrHandle, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.search(&guard, key) else {
                continue;
            };
            // SAFETY: protected by traversal; leaves are immutable.
            let l_node = unsafe { node(w.l) };
            break l_node
                .find(key)
                .map(|pos| l_node.slots[pos].load(Ordering::Acquire) as u64);
        };
        drop(guard);
        result
    }

    fn size(&self) -> usize {
        self.collect_keys().len()
    }

    fn collect_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_rec(self.entry, &mut out);
        out.sort_unstable();
        out
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut report = Vec::new();
        self.check_rec(self.entry, 0, u64::MAX, &mut report);
        let keys = self.collect_keys();
        for w in keys.windows(2) {
            if w[0] == w[1] {
                report.push(format!("duplicate key {}", w[0]));
            }
        }
        if report.is_empty() {
            Ok(())
        } else {
            Err(report.join("; "))
        }
    }

    fn ds_name(&self) -> &'static str {
        "abtree"
    }

    fn smr(&self) -> &Smr {
        &self.smr
    }

    fn frees_per_delete_hint(&self) -> usize {
        1
    }
}

impl Drop for AbTree {
    fn drop(&mut self) {
        self.smr.quiesce_and_drain();
        self.drop_rec(self.entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};
    use epic_smr::{build_smr, SmrConfig, SmrKind};

    fn tree(kind: SmrKind, threads: usize) -> AbTree {
        let alloc = build_allocator(AllocatorKind::Sys, threads, CostModel::zero());
        let cfg = SmrConfig::new(threads).with_bag_cap(32);
        AbTree::new(build_smr(kind, alloc, cfg))
    }

    #[test]
    fn node_is_one_fat_block() {
        assert!(std::mem::size_of::<Node>() > 128 && std::mem::size_of::<Node>() <= 256);
    }

    #[test]
    fn sequential_semantics() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        assert!(t.insert(&h, 10, 100));
        assert!(!t.insert(&h, 10, 101));
        assert!(t.insert(&h, 20, 200));
        assert!(t.insert(&h, 5, 50));
        assert_eq!(t.get(&h, 10), Some(100));
        assert_eq!(t.get(&h, 99), None);
        assert_eq!(t.collect_keys(), vec![5, 10, 20]);
        assert!(t.remove(&h, 10));
        assert!(!t.remove(&h, 10));
        assert_eq!(t.collect_keys(), vec![5, 20]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn splits_preserve_order_and_routing() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        // Insert far more than CAP keys in shuffled order to force splits
        // at multiple levels.
        let mut keys: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        keys.sort_unstable();
        keys.dedup();
        let mut shuffled = keys.clone();
        shuffled.reverse();
        for (i, &k) in shuffled.iter().enumerate() {
            assert!(t.insert(&h, k, k * 2), "insert {k} at step {i}");
            if i % 64 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.collect_keys(), keys);
        for &k in &keys {
            assert_eq!(t.get(&h, k), Some(k * 2));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn deletes_shrink_back_to_empty() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        let keys: Vec<u64> = (0..300).collect();
        for &k in &keys {
            t.insert(&h, k, k);
        }
        for (i, &k) in keys.iter().enumerate() {
            assert!(t.remove(&h, k), "remove {k}");
            if i % 50 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert_eq!(t.size(), 0);
        t.check_invariants().unwrap();
        // And it still works afterwards.
        assert!(t.insert(&h, 42, 1));
        assert_eq!(t.get(&h, 42), Some(1));
    }

    #[test]
    fn updates_allocate_one_or_two_fat_nodes() {
        // The paper's §3 claim, as a test: steady-state inserts/deletes
        // allocate 1-2 nodes per op on average.
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        for k in 0..200 {
            t.insert(&h, k, k);
        }
        let before = t.alloc.snapshot().totals.allocs;
        let mut ops = 0u64;
        for round in 0..200u64 {
            let k = (round * 37) % 200;
            if round % 2 == 0 {
                t.remove(&h, k);
            } else {
                t.insert(&h, k, k);
            }
            ops += 1;
        }
        let allocs = t.alloc.snapshot().totals.allocs - before;
        let per_op = allocs as f64 / ops as f64;
        assert!(
            (0.5..=2.5).contains(&per_op),
            "expected ~1-2 allocs/op, measured {per_op:.2}"
        );
    }

    #[test]
    fn concurrent_stress_every_scheme() {
        for kind in SmrKind::ALL {
            let t = Arc::new(tree(kind, 4));
            let handles: Vec<_> = (0..4usize)
                .map(|tid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let h = t.smr().register(tid);
                        let base = tid as u64;
                        for round in 0..300u64 {
                            for i in 0..8u64 {
                                let k = base + 4 * (i + 8 * (round % 3));
                                if round % 2 == 0 {
                                    t.insert(&h, k, k + 1);
                                } else {
                                    t.remove(&h, k);
                                }
                            }
                            for i in 0..8u64 {
                                let _ = t.get(&h, i * 13 % 97);
                            }
                        }
                        h.detach();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let mut oracle = std::collections::BTreeSet::new();
            for tid in 0..4u64 {
                for round in 0..300u64 {
                    for i in 0..8u64 {
                        let k = tid + 4 * (i + 8 * (round % 3));
                        if round % 2 == 0 {
                            oracle.insert(k);
                        } else {
                            oracle.remove(&k);
                        }
                    }
                }
            }
            let want: Vec<u64> = oracle.into_iter().collect();
            assert_eq!(t.collect_keys(), want, "{kind:?} diverged from oracle");
        }
    }

    #[test]
    fn drop_frees_all_pool_blocks() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1).with_bag_cap(16);
        {
            let t = AbTree::new(build_smr(SmrKind::Debra, Arc::clone(&alloc), cfg));
            let h = t.smr().register(0);
            for k in 0..300 {
                t.insert(&h, k, k);
            }
            for k in 100..200 {
                t.remove(&h, k);
            }
        }
        let snap = alloc.snapshot();
        assert_eq!(
            snap.totals.allocs, snap.totals.deallocs,
            "node leak at drop"
        );
    }
}
