//! Bronson-style optimistic-concurrency BST (`OccTree`).
//!
//! A simplified partially-external BST with per-node optimistic version
//! locks, preserving the benchmark-relevant characteristics of Bronson et
//! al.'s AVL tree (the paper's "OCCtree", Fig. 1):
//!
//! * **Allocation profile**: an insert allocates one small (64 B) node —
//!   or none, if it revives a routing node; a delete allocates nothing.
//! * **Partially external**: deleting a node with two children merely
//!   *tombstones* its value (the node stays as a routing node, no retire);
//!   nodes with ≤ 1 child are physically unlinked (one retire). Routing
//!   nodes encountered with ≤ 1 child are unlinked opportunistically
//!   during updates.
//! * **Optimistic traversal**: readers validate per-node versions
//!   ([`epic_util::SeqLock`]) instead of locking, retrying from the root
//!   on interference.
//!
//! Divergence from Bronson et al. (documented in DESIGN.md): no AVL
//! rebalancing — uniform random workloads keep expected height
//! logarithmic, and the paper's phenomena concern allocation volume, not
//! rotations.

use crate::{alloc_node, free_node_quiescent, ConcurrentMap, MAX_KEY};
use epic_alloc::PoolAllocator;
use epic_smr::sync::{AtomicU64, AtomicUsize, Ordering};
use epic_smr::{OpGuard, Restart, Smr, SmrHandle};
use epic_util::SeqLock;
use std::sync::Arc;

/// Tombstone value marking a routing node.
const TOMB: u64 = u64::MAX;

/// One internal-BST node: 56 bytes, 64-byte class (the paper's 64 B OCC
/// node).
#[repr(C)]
pub(crate) struct Node {
    key: u64,
    value: AtomicU64,
    left: AtomicUsize,
    right: AtomicUsize,
    version: SeqLock,
    marked: AtomicUsize,
}

impl Node {
    #[inline]
    fn child(&self, go_left: bool) -> &AtomicUsize {
        if go_left {
            &self.left
        } else {
            &self.right
        }
    }

    #[inline]
    fn is_marked(&self) -> bool {
        self.marked.load(Ordering::SeqCst) != 0
    }

    #[inline]
    fn set_marked(&self) {
        self.marked.store(1, Ordering::SeqCst);
    }

    #[inline]
    fn n_children(&self) -> usize {
        usize::from(self.left.load(Ordering::Acquire) != 0)
            + usize::from(self.right.load(Ordering::Acquire) != 0)
    }
}

/// # Safety
/// `addr` must be a protected (or quiescent) node pointer from this tree.
#[inline]
unsafe fn node<'a>(addr: usize) -> &'a Node {
    debug_assert!(addr != 0);
    // SAFETY: forwarded to caller.
    unsafe { &*(addr as *const Node) }
}

/// Traversal outcome: the node holding `key`, or the attach point.
struct Found {
    parent: usize,
    /// Node with the key, or 0 if absent.
    target: usize,
    /// Side of `parent` that `target` (or the null link) is on.
    go_left: bool,
}

/// Simplified Bronson OCC tree. See module docs.
pub struct OccTree {
    smr: Smr,
    alloc: Arc<dyn PoolAllocator>,
    /// Permanent sentinel root with key `u64::MAX`; the real tree is its
    /// left subtree.
    root: usize,
}

// SAFETY: shared state is atomics + SMR-protected nodes.
unsafe impl Send for OccTree {}
unsafe impl Sync for OccTree {}

impl OccTree {
    /// Builds an empty tree over `smr`'s allocator.
    ///
    /// Briefly registers tid 0 to allocate the sentinels.
    ///
    /// # Panics
    /// If another [`epic_smr::SmrHandle`] for tid 0 is live at call time
    /// (register after construction, or drop the handle first).
    pub fn new(smr: Smr) -> Self {
        let root = {
            let handle = smr.register(0);
            let guard = handle.begin_op();
            // SAFETY: POD sentinel, lives for the tree's lifetime.
            unsafe {
                alloc_node(
                    &guard,
                    Node {
                        key: u64::MAX,
                        value: AtomicU64::new(TOMB),
                        left: AtomicUsize::new(0),
                        right: AtomicUsize::new(0),
                        version: SeqLock::new(),
                        marked: AtomicUsize::new(0),
                    },
                ) as usize
            }
        };
        let alloc = Arc::clone(smr.allocator());
        OccTree { smr, alloc, root }
    }

    /// Protected hop: one [`OpGuard::protect_load`] plus the staleness
    /// check a validating scheme needs (a marked parent may already be
    /// retired).
    #[inline]
    fn read_child(
        &self,
        g: &OpGuard<'_>,
        slot: usize,
        parent: &Node,
        go_left: bool,
    ) -> Result<usize, Restart> {
        let c = g.protect_load(slot, parent.child(go_left))?;
        if g.validating() && parent.is_marked() {
            return Err(Restart);
        }
        Ok(c)
    }

    /// Optimistic descent to `key`. `Err(Restart)` = restart.
    fn search(&self, g: &OpGuard<'_>, key: u64) -> Result<Found, Restart> {
        let mut parent = self.root;
        let mut go_left = true;
        let mut depth = 0usize;
        loop {
            // SAFETY: parent is the sentinel or was protected last hop.
            let p_node = unsafe { node(parent) };
            let c = self.read_child(g, depth % 3, p_node, go_left)?;
            if c == 0 {
                return Ok(Found {
                    parent,
                    target: 0,
                    go_left,
                });
            }
            // SAFETY: c protected by read_child.
            let c_node = unsafe { node(c) };
            if c_node.key == key {
                return Ok(Found {
                    parent,
                    target: c,
                    go_left,
                });
            }
            parent = c;
            go_left = key < c_node.key;
            depth += 1;
        }
    }

    /// Physically unlinks `target` (≤ 1 child) from `parent`. Both locks
    /// taken in root-to-leaf order. Returns false if validation failed.
    fn unlink(
        &self,
        g: &OpGuard<'_>,
        parent_addr: usize,
        target_addr: usize,
        go_left: bool,
    ) -> bool {
        // SAFETY: protected by caller's traversal.
        let (parent, target) = unsafe { (node(parent_addr), node(target_addr)) };
        g.enter_write_phase(&[parent_addr, target_addr]);
        parent.version.write_lock();
        target.version.write_lock();
        let replacement = {
            let l = target.left.load(Ordering::Acquire);
            let r = target.right.load(Ordering::Acquire);
            if l != 0 && r != 0 {
                // Grew a second child meanwhile: cannot unlink.
                target.version.write_unlock();
                parent.version.write_unlock();
                return false;
            }
            l | r
        };
        let valid = !parent.is_marked()
            && !target.is_marked()
            && parent.child(go_left).load(Ordering::Acquire) == target_addr;
        if !valid {
            target.version.write_unlock();
            parent.version.write_unlock();
            return false;
        }
        target.set_marked();
        parent.child(go_left).store(replacement, Ordering::Release);
        target.version.write_unlock();
        parent.version.write_unlock();
        // SAFETY: target is unlinked; SMR delays the free.
        unsafe {
            g.retire(std::ptr::NonNull::new_unchecked(target_addr as *mut u8));
        }
        true
    }

    fn collect_rec(&self, addr: usize, out: &mut Vec<u64>) {
        if addr == 0 {
            return;
        }
        // SAFETY: quiescent traversal.
        let n = unsafe { node(addr) };
        self.collect_rec(n.left.load(Ordering::Acquire), out);
        if n.key <= MAX_KEY && n.value.load(Ordering::Acquire) != TOMB {
            out.push(n.key);
        }
        self.collect_rec(n.right.load(Ordering::Acquire), out);
    }

    fn check_rec(&self, addr: usize, lo: u64, hi: u64, report: &mut Vec<String>) {
        if addr == 0 {
            return;
        }
        // SAFETY: quiescent traversal.
        let n = unsafe { node(addr) };
        if n.is_marked() {
            report.push(format!("reachable node {} is marked", n.key));
        }
        if !(lo <= n.key && n.key < hi) {
            report.push(format!("node {} violates BST range [{lo},{hi})", n.key));
        }
        self.check_rec(n.left.load(Ordering::Acquire), lo, n.key.min(hi), report);
        self.check_rec(
            n.right.load(Ordering::Acquire),
            n.key.saturating_add(1).max(lo),
            hi,
            report,
        );
    }

    fn drop_rec(&self, addr: usize) {
        if addr == 0 {
            return;
        }
        // SAFETY: exclusive access during drop.
        let n = unsafe { node(addr) };
        self.drop_rec(n.left.load(Ordering::Relaxed));
        self.drop_rec(n.right.load(Ordering::Relaxed));
        // SAFETY: freed exactly once during the drop walk.
        unsafe { free_node_quiescent(&self.alloc, addr as *mut Node) };
    }
}

impl ConcurrentMap for OccTree {
    fn insert(&self, h: &SmrHandle, key: u64, value: u64) -> bool {
        assert!(key <= MAX_KEY && value < TOMB);
        let guard = h.begin_op();
        let result = loop {
            let Ok(f) = self.search(&guard, key) else {
                continue;
            };
            if f.target != 0 {
                // Key node exists: revive if tombstoned (no allocation —
                // the Bronson signature move).
                // SAFETY: protected by traversal.
                let t = unsafe { node(f.target) };
                guard.enter_write_phase(&[f.target]);
                t.version.write_lock();
                if t.is_marked() {
                    t.version.write_unlock();
                    guard.restart();
                    continue;
                }
                let was_tomb = t.value.load(Ordering::Acquire) == TOMB;
                if was_tomb {
                    t.value.store(value, Ordering::Release);
                }
                t.version.write_unlock();
                break was_tomb;
            }
            // Attach a fresh node at the null link.
            // SAFETY: protected by traversal.
            let p = unsafe { node(f.parent) };
            guard.enter_write_phase(&[f.parent]);
            p.version.write_lock();
            let valid = !p.is_marked() && p.child(f.go_left).load(Ordering::Acquire) == 0;
            if !valid {
                p.version.write_unlock();
                guard.restart();
                continue;
            }
            // SAFETY: fresh POD node, published below.
            let fresh = unsafe {
                alloc_node(
                    &guard,
                    Node {
                        key,
                        value: AtomicU64::new(value),
                        left: AtomicUsize::new(0),
                        right: AtomicUsize::new(0),
                        version: SeqLock::new(),
                        marked: AtomicUsize::new(0),
                    },
                ) as usize
            };
            p.child(f.go_left).store(fresh, Ordering::Release);
            p.version.write_unlock();
            break true;
        };
        drop(guard);
        result
    }

    fn remove(&self, h: &SmrHandle, key: u64) -> bool {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(f) = self.search(&guard, key) else {
                continue;
            };
            if f.target == 0 {
                break false;
            }
            // SAFETY: protected by traversal.
            let t = unsafe { node(f.target) };
            if t.value.load(Ordering::Acquire) == TOMB {
                break false;
            }
            if t.n_children() == 2 {
                // Logical delete: tombstone, keep as routing node.
                guard.enter_write_phase(&[f.target]);
                t.version.write_lock();
                if t.is_marked() {
                    t.version.write_unlock();
                    guard.restart();
                    continue;
                }
                if t.n_children() < 2 {
                    // Shrank meanwhile: retry through the unlink path.
                    t.version.write_unlock();
                    guard.restart();
                    continue;
                }
                let had_value = t.value.load(Ordering::Acquire) != TOMB;
                if had_value {
                    t.value.store(TOMB, Ordering::Release);
                }
                t.version.write_unlock();
                break had_value;
            }
            // ≤ 1 child: tombstone + physical unlink (one retire).
            guard.enter_write_phase(&[f.parent, f.target]);
            t.version.write_lock();
            if t.is_marked() || t.value.load(Ordering::Acquire) == TOMB {
                t.version.write_unlock();
                guard.restart();
                // Value gone: someone else deleted it.
                // SAFETY: protected.
                if unsafe { node(f.target) }.value.load(Ordering::Acquire) == TOMB {
                    break false;
                }
                continue;
            }
            t.value.store(TOMB, Ordering::Release);
            t.version.write_unlock();
            // Best-effort physical unlink; failure leaves a routing node
            // that later operations clean up.
            let _ = self.unlink(&guard, f.parent, f.target, f.go_left);
            break true;
        };
        drop(guard);
        result
    }

    fn get(&self, h: &SmrHandle, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(f) = self.search(&guard, key) else {
                continue;
            };
            if f.target == 0 {
                break None;
            }
            // SAFETY: protected by traversal.
            let v = unsafe { node(f.target) }.value.load(Ordering::Acquire);
            break if v == TOMB { None } else { Some(v) };
        };
        drop(guard);
        result
    }

    fn size(&self) -> usize {
        self.collect_keys().len()
    }

    fn collect_keys(&self) -> Vec<u64> {
        let mut out = Vec::new();
        // SAFETY: quiescent.
        let r = unsafe { node(self.root) };
        self.collect_rec(r.left.load(Ordering::Acquire), &mut out);
        out
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut report = Vec::new();
        // SAFETY: quiescent.
        let r = unsafe { node(self.root) };
        self.check_rec(r.left.load(Ordering::Acquire), 0, u64::MAX, &mut report);
        let keys = self.collect_keys();
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                report.push(format!("ordering violation near {}", w[0]));
            }
        }
        if report.is_empty() {
            Ok(())
        } else {
            Err(report.join("; "))
        }
    }

    fn ds_name(&self) -> &'static str {
        "occtree"
    }

    fn smr(&self) -> &Smr {
        &self.smr
    }

    fn frees_per_delete_hint(&self) -> usize {
        1
    }
}

impl Drop for OccTree {
    fn drop(&mut self) {
        self.smr.quiesce_and_drain();
        self.drop_rec(self.root);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};
    use epic_smr::{build_smr, SmrConfig, SmrKind};

    fn tree(kind: SmrKind, threads: usize) -> OccTree {
        let alloc = build_allocator(AllocatorKind::Sys, threads, CostModel::zero());
        let cfg = SmrConfig::new(threads).with_bag_cap(32);
        OccTree::new(build_smr(kind, alloc, cfg))
    }

    #[test]
    fn sequential_semantics() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        assert!(t.insert(&h, 10, 100));
        assert!(t.insert(&h, 5, 50));
        assert!(t.insert(&h, 15, 150));
        assert!(!t.insert(&h, 10, 999));
        assert_eq!(t.get(&h, 10), Some(100));
        assert_eq!(t.collect_keys(), vec![5, 10, 15]);
        assert!(t.remove(&h, 10)); // two children -> tombstone
        assert!(!t.contains(&h, 10));
        assert!(!t.remove(&h, 10));
        assert_eq!(t.collect_keys(), vec![5, 15]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn two_child_delete_allocates_and_retires_nothing() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        t.insert(&h, 10, 1);
        t.insert(&h, 5, 1);
        t.insert(&h, 15, 1);
        let before = t.smr().stats();
        assert!(t.remove(&h, 10));
        let after = t.smr().stats();
        assert_eq!(after.retired - before.retired, 0, "routing node stays");
    }

    #[test]
    fn tombstone_revival_allocates_nothing() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        t.insert(&h, 10, 1);
        t.insert(&h, 5, 1);
        t.insert(&h, 15, 1);
        t.remove(&h, 10); // tombstone
        let allocs_before = t.alloc.snapshot().totals.allocs;
        assert!(t.insert(&h, 10, 42), "revival counts as insert");
        assert_eq!(
            t.alloc.snapshot().totals.allocs,
            allocs_before,
            "no allocation on revival"
        );
        assert_eq!(t.get(&h, 10), Some(42));
    }

    #[test]
    fn leaf_delete_unlinks_physically() {
        let t = tree(SmrKind::Debra, 1);
        let h = t.smr().register(0);
        t.insert(&h, 10, 1);
        t.insert(&h, 5, 1);
        let before = t.smr().stats().retired;
        assert!(t.remove(&h, 5)); // leaf -> physical unlink
        assert_eq!(t.smr().stats().retired - before, 1);
        assert_eq!(t.collect_keys(), vec![10]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn concurrent_stress_every_scheme() {
        for kind in SmrKind::ALL {
            let t = Arc::new(tree(kind, 4));
            let handles: Vec<_> = (0..4usize)
                .map(|tid| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || {
                        let h = t.smr().register(tid);
                        let base = tid as u64;
                        for round in 0..300u64 {
                            for i in 0..8u64 {
                                let k = base + 4 * (i + 8 * (round % 3));
                                if round % 2 == 0 {
                                    t.insert(&h, k, k + 1);
                                } else {
                                    t.remove(&h, k);
                                }
                            }
                            for i in 0..8u64 {
                                let _ = t.get(&h, i * 13 % 97);
                            }
                        }
                        h.detach();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            t.check_invariants()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            let mut oracle = std::collections::BTreeSet::new();
            for tid in 0..4u64 {
                for round in 0..300u64 {
                    for i in 0..8u64 {
                        let k = tid + 4 * (i + 8 * (round % 3));
                        if round % 2 == 0 {
                            oracle.insert(k);
                        } else {
                            oracle.remove(&k);
                        }
                    }
                }
            }
            let want: Vec<u64> = oracle.into_iter().collect();
            assert_eq!(t.collect_keys(), want, "{kind:?} diverged from oracle");
        }
    }

    #[test]
    fn drop_frees_all_pool_blocks() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1).with_bag_cap(16);
        {
            let t = OccTree::new(build_smr(SmrKind::Debra, Arc::clone(&alloc), cfg));
            let h = t.smr().register(0);
            for k in 0..100 {
                t.insert(&h, k, k);
            }
            for k in 0..100 {
                t.remove(&h, k);
            }
        }
        let snap = alloc.snapshot();
        assert_eq!(
            snap.totals.allocs, snap.totals.deallocs,
            "node leak at drop"
        );
    }
}
