//! # epic-ds — the concurrent ordered maps of the paper's evaluation
//!
//! Three trees over pluggable SMR + allocator, chosen to reproduce the
//! paper's allocation profiles (§3, Fig. 1):
//!
//! * [`AbTree`] — leaf-oriented (a,b)-tree à la Brown: lock-free reads,
//!   copy-on-write leaves/internals. **Allocates 1–2 large (~240 B) nodes
//!   per insert or delete** — the structure whose garbage volume exposes
//!   the remote-batch-free problem.
//! * [`OccTree`] — Bronson-style partially-external BST with optimistic
//!   version validation. **Allocates one small (64 B) node per insert and
//!   nothing per delete** (two-child deletes leave a routing node) — the
//!   structure that keeps scaling in Fig. 1.
//! * [`DgtTree`] — the David–Guerraoui–Trigonakis external BST with
//!   per-node ticket locks (appendix D): insert allocates 2 nodes, delete
//!   unlinks 2.
//!
//! Plus one structure beyond the paper's evaluation, for generality
//! testing:
//!
//! * [`HmList`] — the canonical Harris–Michael lock-free sorted linked
//!   list (the paper cites Harris \[19\] as the origin of batched
//!   reclamation): 1 small node per insert, 1 retire per delete.
//!
//! ## SMR discipline
//!
//! Operations run against a thread-bound [`SmrHandle`] (DESIGN.md §7):
//! each hop is one [`OpGuard::protect_load`] call, which owns the whole
//! publish → re-read/validate → neutralization-poll protocol — the trees
//! never touch the raw tid-indexed scheme surface. Epoch/token schemes
//! compile a hop down to a plain `Acquire` load; slot/era schemes publish
//! through pointers the handle resolved once at registration.
//!
//! Nodes are plain-old-data carved from the pool allocator via
//! [`OpGuard::alloc`] (object pool + birth-era stamp fused); reclamation
//! is exactly "return the block". Trees free all remaining nodes on
//! `Drop`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod abtree;
pub mod dgt;
pub mod hmlist;
pub mod occ;

pub use abtree::AbTree;
pub use dgt::DgtTree;
pub use hmlist::HmList;
pub use occ::OccTree;

use epic_alloc::PoolAllocator;
use epic_smr::{OpGuard, Smr, SmrHandle};
use std::sync::Arc;

/// Largest usable key: the trees reserve `u64::MAX` (and `u64::MAX - 1`)
/// for sentinels.
pub const MAX_KEY: u64 = u64::MAX - 2;

/// Largest usable value: `u64::MAX` is the OCC tree's tombstone.
pub const MAX_VALUE: u64 = u64::MAX - 1;

/// The concurrent ordered-map interface the harness benchmarks.
///
/// All operations take the calling thread's [`SmrHandle`] (obtained once
/// per thread via [`Smr::register`]; same one-thread-per-tid contract as
/// the allocator). `size`, `collect_keys` and `check_invariants` require
/// quiescence — call them only when no other thread is operating.
pub trait ConcurrentMap: Send + Sync {
    /// Inserts `key → value`; returns true if the key was absent.
    fn insert(&self, h: &SmrHandle, key: u64, value: u64) -> bool;

    /// Removes `key`; returns true if it was present.
    fn remove(&self, h: &SmrHandle, key: u64) -> bool;

    /// Looks up `key`.
    fn get(&self, h: &SmrHandle, key: u64) -> Option<u64>;

    /// Membership test.
    fn contains(&self, h: &SmrHandle, key: u64) -> bool {
        self.get(h, key).is_some()
    }

    /// Number of keys (quiescent).
    fn size(&self) -> usize;

    /// All keys in ascending order (quiescent).
    fn collect_keys(&self) -> Vec<u64>;

    /// Structural invariant check (quiescent); `Err` describes the first
    /// violation found.
    fn check_invariants(&self) -> Result<(), String>;

    /// Data-structure name for reports.
    fn ds_name(&self) -> &'static str;

    /// The reclamation scheme in use.
    fn smr(&self) -> &Smr;

    /// Average nodes freed per delete — the paper's §7 guidance for tuning
    /// the amortized-free drain rate (`per_op`).
    fn frees_per_delete_hint(&self) -> usize;
}

/// Which map to build (harness configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeKind {
    /// Brown-style (a,b)-tree.
    Ab,
    /// Bronson-style OCC BST.
    Occ,
    /// DGT ticket-lock external BST.
    Dgt,
    /// Harris–Michael lock-free sorted linked list.
    Hm,
}

impl TreeKind {
    /// Every map, in the order reports use.
    pub const ALL: [TreeKind; 4] = [TreeKind::Ab, TreeKind::Occ, TreeKind::Dgt, TreeKind::Hm];

    /// Parses "ab"/"abtree", "occ"/"occtree", "dgt", "hm"/"hmlist"/"list".
    pub fn parse(s: &str) -> Option<TreeKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ab" | "abtree" => Some(TreeKind::Ab),
            "occ" | "occtree" => Some(TreeKind::Occ),
            "dgt" | "dgttree" => Some(TreeKind::Dgt),
            "hm" | "hmlist" | "list" => Some(TreeKind::Hm),
            _ => None,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TreeKind::Ab => "abtree",
            TreeKind::Occ => "occtree",
            TreeKind::Dgt => "dgttree",
            TreeKind::Hm => "hmlist",
        }
    }
}

/// Builds a map of the given kind over `smr` (which carries the
/// allocator). Briefly registers tid 0 to allocate the sentinels, so no
/// tid-0 [`SmrHandle`] may be live at call time.
pub fn build_tree(kind: TreeKind, smr: Smr) -> Arc<dyn ConcurrentMap> {
    match kind {
        TreeKind::Ab => Arc::new(AbTree::new(smr)),
        TreeKind::Occ => Arc::new(OccTree::new(smr)),
        TreeKind::Dgt => Arc::new(DgtTree::new(smr)),
        TreeKind::Hm => Arc::new(HmList::new(smr)),
    }
}

/// Allocates and placement-initializes a node of type `T` through the
/// guard: object pool first (under [`epic_smr::FreeMode::Pooled`]), then
/// the allocator, with the scheme's birth-era stamp and amortized-free
/// tick already applied.
///
/// # Safety
/// `T` must be plain-old-data (no `Drop`), and the caller must eventually
/// either `retire` the node through the guard or return it with
/// [`dealloc_node`].
pub(crate) unsafe fn alloc_node<T>(g: &OpGuard<'_>, value: T) -> *mut T {
    let ptr = g.alloc(std::mem::size_of::<T>());
    let node = ptr.as_ptr() as *mut T;
    // SAFETY: a block of >= size_of::<T>() bytes (fresh, or recycled from
    // the same size class), 16-aligned (block layout), which satisfies the
    // trees' node alignments (<= 16). The header precedes user memory, so
    // the birth-era stamp `g.alloc` already wrote is untouched.
    unsafe { node.write(value) };
    node
}

/// Returns an *unpublished* node straight to the allocator (failed CAS /
/// validation paths — the node was never visible to other threads).
///
/// # Safety
/// `node` must come from [`alloc_node`] under the same handle and must not
/// have been published.
pub(crate) unsafe fn dealloc_node<T>(g: &OpGuard<'_>, node: *mut T) {
    // SAFETY: forwarded to caller; POD nodes need no drop.
    unsafe { g.dealloc_unpublished(std::ptr::NonNull::new_unchecked(node as *mut u8)) };
}

/// Frees a node during quiescent teardown (`Drop` walks), straight through
/// the allocator under tid 0.
///
/// # Safety
/// The caller must have exclusive access (drop/quiescence) and `node` must
/// be a live block of `alloc` freed exactly once.
pub(crate) unsafe fn free_node_quiescent<T>(alloc: &Arc<dyn PoolAllocator>, node: *mut T) {
    // SAFETY: forwarded to caller; POD nodes need no drop.
    unsafe {
        alloc.dealloc(0, std::ptr::NonNull::new_unchecked(node as *mut u8));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_kind_parse() {
        assert_eq!(TreeKind::parse("abtree"), Some(TreeKind::Ab));
        assert_eq!(TreeKind::parse("OCC"), Some(TreeKind::Occ));
        assert_eq!(TreeKind::parse("dgt"), Some(TreeKind::Dgt));
        assert_eq!(TreeKind::parse("xyz"), None);
        for k in TreeKind::ALL {
            assert_eq!(TreeKind::parse(k.name()), Some(k));
        }
    }
}
