//! A Harris–Michael lock-free sorted linked list (`HmList`).
//!
//! Not one of the paper's three benchmark structures, but the canonical
//! SMR client (the paper cites Harris's non-blocking linked list \[19\] as
//! the origin of batched reclamation): every delete retires exactly one
//! node, every insert allocates exactly one, and traversals hold no locks
//! — so it exercises the full `epic-smr` protocol (protect/validate for
//! slot-based schemes, neutralization polls for NBR) on a fourth,
//! maximally simple shape. Useful for testing scheme generality and for
//! the `ablation_ds_generality` bench.
//!
//! ## Algorithm
//!
//! The list is sorted ascending with a permanent head sentinel and a
//! permanent tail sentinel of key `u64::MAX`. Each node's `next` field
//! carries a **mark bit** (bit 0): removal first marks the victim's
//! `next` (the logical delete, the linearization point), then tries to
//! swing the predecessor's link past it (the physical unlink). Traversals
//! that encounter a marked node help unlink it; whichever thread's unlink
//! CAS succeeds retires the node (exactly once — see the safety argument
//! on the private `HmList::find` helper).

use crate::{alloc_node, dealloc_node, free_node_quiescent, ConcurrentMap, MAX_KEY};
use epic_alloc::PoolAllocator;
use epic_smr::sync::{AtomicUsize, Ordering};
use epic_smr::{OpGuard, Restart, Smr, SmrHandle};
use std::sync::Arc;

/// Mark bit stored in the low bit of `next` (nodes are ≥ 8-aligned).
const MARK: usize = 1;

#[inline]
fn unmark(raw: usize) -> usize {
    raw & !MARK
}

#[inline]
fn is_marked(raw: usize) -> bool {
    raw & MARK != 0
}

/// One list node. Padded to 64 bytes so it lands in the same small size
/// class as the OCC tree's nodes (the "small node" allocation profile).
#[repr(C)]
pub(crate) struct Node {
    key: u64,
    value: u64,
    /// Successor address; bit 0 is the logical-delete mark.
    next: AtomicUsize,
    _pad: [u64; 5],
}

/// Shorthand: dereference a node address.
///
/// # Safety
/// `addr` must be a node pointer obtained from this list's links while
/// protected under the SMR discipline (or during quiescence).
#[inline]
unsafe fn node<'a>(addr: usize) -> &'a Node {
    debug_assert!(addr != 0);
    // SAFETY: forwarded to caller.
    unsafe { &*(addr as *const Node) }
}

/// The traversal window: `pred` (unmarked when validated) and the first
/// node with `key >= search key`.
struct Window {
    pred: usize,
    curr: usize,
}

/// Harris–Michael sorted linked list. See module docs.
pub struct HmList {
    smr: Smr,
    alloc: Arc<dyn PoolAllocator>,
    head: usize,
}

// SAFETY: all shared state is atomics + SMR-protected nodes.
unsafe impl Send for HmList {}
unsafe impl Sync for HmList {}

impl HmList {
    /// Builds an empty list over `smr`'s allocator.
    ///
    /// Briefly registers tid 0 to allocate the sentinels.
    ///
    /// # Panics
    /// If another [`epic_smr::SmrHandle`] for tid 0 is live at call time
    /// (register after construction, or drop the handle first).
    pub fn new(smr: Smr) -> Self {
        let alloc = Arc::clone(smr.allocator());
        let head = {
            let handle = smr.register(0);
            let guard = handle.begin_op();
            let mk = |key: u64, next: usize| -> usize {
                // SAFETY: Node is POD; sentinels live for the list's
                // lifetime.
                unsafe {
                    alloc_node(
                        &guard,
                        Node {
                            key,
                            value: 0,
                            next: AtomicUsize::new(next),
                            _pad: [0; 5],
                        },
                    ) as usize
                }
            };
            let tail = mk(u64::MAX, 0);
            mk(0, tail)
        };
        HmList { smr, alloc, head }
    }

    /// One protected hop: [`OpGuard::protect_load`] over `from.next` —
    /// publish (tag-stripped), re-read/validate, poll. Returns the raw
    /// word (successor | mark); `Err(Restart)` means restart.
    ///
    /// The returned successor is safe to dereference because (a) for
    /// validating schemes the link was re-read after protection was
    /// published, and a retired `from` would have a *marked* `next`, which
    /// callers treat as "help or skip", never as a stable window; (b) for
    /// epoch/token/NBR schemes the grace period covers the whole operation.
    #[inline]
    fn read_next(&self, g: &OpGuard<'_>, slot: usize, from: &Node) -> Result<usize, Restart> {
        g.protect_load(slot, &from.next)
    }

    /// Michael's `find`: descends to the first node with `key >= key`,
    /// helping to physically unlink any marked node encountered.
    /// `Err(Restart)` means the operation must restart (neutralization or
    /// lost race).
    ///
    /// Exactly-once retirement: only the thread whose unlink CAS succeeds
    /// retires the victim. A stale window cannot double-unlink because a
    /// retired predecessor's `next` is itself marked (removal marks before
    /// unlinking), so a CAS expecting an *unmarked* value on it must fail.
    fn find(&self, g: &OpGuard<'_>, key: u64) -> Result<Window, Restart> {
        let mut pred = self.head;
        // SAFETY: head is a permanent sentinel.
        let mut pred_node = unsafe { node(pred) };
        // The head sentinel is never marked; its link is the current first
        // node.
        let mut curr = unmark(self.read_next(g, 0, pred_node)?);
        let mut depth = 1usize;
        loop {
            // SAFETY: curr was protected by the previous read_next hop.
            let curr_node = unsafe { node(curr) };
            let next_raw = self.read_next(g, depth % 3, curr_node)?;
            if is_marked(next_raw) {
                // curr is logically deleted: help unlink it from pred.
                let succ = unmark(next_raw);
                if pred_node
                    .next
                    .compare_exchange(curr, succ, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // The window moved under us; retry from the head.
                    return Err(Restart);
                }
                // SAFETY: the successful CAS above made `curr` unreachable,
                // and (per the mark argument in the doc comment) no other
                // thread's unlink of `curr` can also succeed.
                unsafe {
                    g.retire(std::ptr::NonNull::new_unchecked(curr as *mut u8));
                }
                // `succ` inherits curr's protection obligations: re-run the
                // protected hop on pred's link; any outcome other than
                // `succ` means the window moved.
                if g.validating() && self.read_next(g, depth % 3, pred_node)? != succ {
                    return Err(Restart);
                }
                curr = succ;
                continue;
            }
            if curr_node.key >= key {
                return Ok(Window { pred, curr });
            }
            pred = curr;
            pred_node = curr_node;
            curr = unmark(next_raw);
            depth += 1;
        }
    }

    fn drop_rec(&self) {
        // SAFETY: exclusive access during drop; walk the physical list.
        let mut addr = self.head;
        while addr != 0 {
            // SAFETY: exclusive access; nodes freed exactly once (retired
            // nodes are already physically unlinked and were drained by
            // quiesce_and_drain).
            let next = unsafe { unmark(node(addr).next.load(Ordering::Relaxed)) };
            // SAFETY: node came from this list's allocator.
            unsafe { free_node_quiescent(&self.alloc, addr as *mut Node) };
            addr = next;
        }
    }
}

impl ConcurrentMap for HmList {
    fn insert(&self, h: &SmrHandle, key: u64, value: u64) -> bool {
        assert!(key <= MAX_KEY, "key space reserved for the tail sentinel");
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.find(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let curr_node = unsafe { node(w.curr) };
            if curr_node.key == key {
                break false;
            }
            guard.enter_write_phase(&[w.pred, w.curr]);
            // SAFETY: fresh POD node, published by the CAS below or
            // returned on failure.
            let new = unsafe {
                alloc_node(
                    &guard,
                    Node {
                        key,
                        value,
                        next: AtomicUsize::new(w.curr),
                        _pad: [0; 5],
                    },
                ) as usize
            };
            // SAFETY: pred is protected; a retired pred has a marked next,
            // so this CAS (expecting the unmarked value) would fail.
            let pred_node = unsafe { node(w.pred) };
            if pred_node
                .next
                .compare_exchange(w.curr, new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
            // SAFETY: the new node was never published.
            unsafe { dealloc_node(&guard, new as *mut Node) };
            guard.restart(); // re-enter read phase (NBR) and re-tick
        };
        drop(guard);
        result
    }

    fn remove(&self, h: &SmrHandle, key: u64) -> bool {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.find(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let curr_node = unsafe { node(w.curr) };
            if curr_node.key != key {
                break false;
            }
            guard.enter_write_phase(&[w.pred, w.curr]);
            let raw = curr_node.next.load(Ordering::Acquire);
            if is_marked(raw) {
                // Lost the race: someone else logically deleted it first.
                guard.restart();
                continue;
            }
            // The logical delete (linearization point).
            if curr_node
                .next
                .compare_exchange(raw, raw | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                guard.restart();
                continue;
            }
            // Best-effort physical unlink; on failure some traversal's
            // helping path performs it (and retires).
            // SAFETY: pred is protected; see find() for the exactly-once
            // unlink/retire argument.
            let pred_node = unsafe { node(w.pred) };
            if pred_node
                .next
                .compare_exchange(w.curr, unmark(raw), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: unlinked by the CAS above, exactly once.
                unsafe {
                    guard.retire(std::ptr::NonNull::new_unchecked(w.curr as *mut u8));
                }
            }
            break true;
        };
        drop(guard);
        result
    }

    fn get(&self, h: &SmrHandle, key: u64) -> Option<u64> {
        assert!(key <= MAX_KEY);
        let guard = h.begin_op();
        let result = loop {
            let Ok(w) = self.find(&guard, key) else {
                continue;
            };
            // SAFETY: protected by the traversal discipline.
            let curr_node = unsafe { node(w.curr) };
            break if curr_node.key == key {
                Some(curr_node.value)
            } else {
                None
            };
        };
        drop(guard);
        result
    }

    fn size(&self) -> usize {
        self.collect_keys().len()
    }

    fn collect_keys(&self) -> Vec<u64> {
        // Quiescent walk; skip logically deleted (marked) stragglers.
        let mut out = Vec::new();
        // SAFETY: quiescent traversal (caller contract).
        let mut addr = unsafe { unmark(node(self.head).next.load(Ordering::Acquire)) };
        while addr != 0 {
            // SAFETY: quiescent traversal.
            let n = unsafe { node(addr) };
            let raw = n.next.load(Ordering::Acquire);
            if n.key <= MAX_KEY && !is_marked(raw) {
                out.push(n.key);
            }
            addr = unmark(raw);
        }
        out
    }

    fn check_invariants(&self) -> Result<(), String> {
        let mut report = Vec::new();
        let mut last: Option<u64> = None;
        let mut saw_tail = false;
        // SAFETY: quiescent traversal.
        let mut addr = unsafe { unmark(node(self.head).next.load(Ordering::Acquire)) };
        while addr != 0 {
            // SAFETY: quiescent traversal.
            let n = unsafe { node(addr) };
            let raw = n.next.load(Ordering::Acquire);
            if n.key == u64::MAX {
                saw_tail = true;
                if unmark(raw) != 0 {
                    report.push("tail sentinel has a successor".into());
                }
            } else if !is_marked(raw) {
                if let Some(prev) = last {
                    if n.key <= prev {
                        report.push(format!("keys out of order: {prev} then {}", n.key));
                    }
                }
                last = Some(n.key);
            }
            addr = unmark(raw);
        }
        if !saw_tail {
            report.push("tail sentinel unreachable".into());
        }
        if report.is_empty() {
            Ok(())
        } else {
            Err(report.join("; "))
        }
    }

    fn ds_name(&self) -> &'static str {
        "hmlist"
    }

    fn smr(&self) -> &Smr {
        &self.smr
    }

    fn frees_per_delete_hint(&self) -> usize {
        1
    }
}

impl Drop for HmList {
    fn drop(&mut self) {
        // Free everything still in limbo, then the live list (including
        // marked-but-never-unlinked stragglers, which were never retired).
        self.smr.quiesce_and_drain();
        self.drop_rec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};
    use epic_smr::{build_smr, SmrConfig, SmrKind};

    fn list(kind: SmrKind, threads: usize) -> HmList {
        let alloc = build_allocator(AllocatorKind::Sys, threads, CostModel::zero());
        let cfg = SmrConfig::new(threads).with_bag_cap(32);
        HmList::new(build_smr(kind, alloc, cfg))
    }

    #[test]
    fn sequential_semantics() {
        let l = list(SmrKind::Debra, 1);
        let h = l.smr().register(0);
        assert!(!l.contains(&h, 5));
        assert!(l.insert(&h, 5, 50));
        assert!(!l.insert(&h, 5, 51), "duplicate insert");
        assert_eq!(l.get(&h, 5), Some(50));
        assert!(l.insert(&h, 3, 30));
        assert!(l.insert(&h, 8, 80));
        assert_eq!(l.collect_keys(), vec![3, 5, 8]);
        assert!(l.remove(&h, 5));
        assert!(!l.remove(&h, 5), "double remove");
        assert_eq!(l.collect_keys(), vec![3, 8]);
        l.check_invariants().unwrap();
    }

    #[test]
    fn ordered_insertion_any_order() {
        let l = list(SmrKind::Rcu, 1);
        let h = l.smr().register(0);
        for k in [9u64, 1, 7, 3, 5, 2, 8, 4, 6] {
            assert!(l.insert(&h, k, k * 10));
        }
        assert_eq!(l.collect_keys(), (1..=9).collect::<Vec<_>>());
        for k in 1..=9 {
            assert_eq!(l.get(&h, k), Some(k * 10));
        }
        l.check_invariants().unwrap();
    }

    #[test]
    fn empty_then_refill() {
        let l = list(SmrKind::Qsbr, 1);
        let h = l.smr().register(0);
        for k in 1..=64 {
            assert!(l.insert(&h, k, k));
        }
        for k in 1..=64 {
            assert!(l.remove(&h, k));
        }
        assert_eq!(l.size(), 0);
        l.check_invariants().unwrap();
        for k in (1..=64).rev() {
            assert!(l.insert(&h, k, k * 2));
        }
        assert_eq!(l.size(), 64);
        assert_eq!(l.get(&h, 10), Some(20));
        l.check_invariants().unwrap();
    }

    #[test]
    fn deletes_retire_one_node() {
        let l = list(SmrKind::Debra, 1);
        let h = l.smr().register(0);
        l.insert(&h, 1, 1);
        l.insert(&h, 2, 2);
        let before = l.smr().stats().retired;
        l.remove(&h, 1);
        assert_eq!(l.smr().stats().retired - before, 1);
        assert_eq!(l.frees_per_delete_hint(), 1);
    }

    #[test]
    fn concurrent_stress_every_scheme() {
        for kind in SmrKind::ALL {
            let l = Arc::new(list(kind, 4));
            let handles: Vec<_> = (0..4usize)
                .map(|tid| {
                    let l = Arc::clone(&l);
                    std::thread::spawn(move || {
                        let h = l.smr().register(tid);
                        // Keys ≡ tid (mod 4), shifted to avoid key 0.
                        let base = tid as u64 + 1;
                        for round in 0..200u64 {
                            for i in 0..8u64 {
                                let k = base + 4 * (i + 8 * (round % 3));
                                if round % 2 == 0 {
                                    l.insert(&h, k, k + 1);
                                } else {
                                    l.remove(&h, k);
                                }
                            }
                            for i in 1..8u64 {
                                let _ = l.get(&h, i * 13 % 97 + 1);
                            }
                        }
                        h.detach();
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            l.check_invariants()
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            // Sequential replay oracle (per-thread keys are disjoint).
            let mut oracle = std::collections::BTreeSet::new();
            for tid in 0..4u64 {
                for round in 0..200u64 {
                    for i in 0..8u64 {
                        let k = tid + 1 + 4 * (i + 8 * (round % 3));
                        if round % 2 == 0 {
                            oracle.insert(k);
                        } else {
                            oracle.remove(&k);
                        }
                    }
                }
            }
            let got = l.collect_keys();
            let want: Vec<u64> = oracle.into_iter().collect();
            assert_eq!(got, want, "{kind:?} diverged from oracle");
        }
    }

    #[test]
    fn reclamation_happens_under_churn() {
        let l = list(SmrKind::Debra, 1);
        let h = l.smr().register(0);
        for round in 0..2_000u64 {
            l.insert(&h, round % 16 + 1, round);
            l.remove(&h, round % 16 + 1);
        }
        let s = l.smr().stats();
        assert!(s.retired > 1_500, "churn retires: {s:?}");
        assert!(s.freed > 1_000, "and reclaims: {s:?}");
    }

    #[test]
    fn drop_frees_all_pool_blocks() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1).with_bag_cap(16);
        {
            let l = HmList::new(build_smr(SmrKind::Debra, Arc::clone(&alloc), cfg));
            let h = l.smr().register(0);
            for k in 1..=100 {
                l.insert(&h, k, k);
            }
            for k in 1..=50 {
                l.remove(&h, k);
            }
        }
        let snap = alloc.snapshot();
        assert_eq!(
            snap.totals.allocs, snap.totals.deallocs,
            "node leak at drop"
        );
    }

    #[test]
    fn node_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Node>(), 64);
    }

    #[test]
    fn pooled_mode_recycles_nodes() {
        // Churn one key under FreeMode::Pooled: after warm-up every insert
        // should be served from the pool, not the allocator.
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1)
            .with_mode(epic_smr::FreeMode::Pooled)
            .with_bag_cap(16);
        let l = HmList::new(build_smr(SmrKind::Debra, Arc::clone(&alloc), cfg));
        let h = l.smr().register(0);
        for round in 0..2_000u64 {
            l.insert(&h, round % 8 + 1, round);
            l.remove(&h, round % 8 + 1);
        }
        let s = l.smr().stats();
        assert!(
            s.pool_hits > 500,
            "pool must serve steady-state churn: {s:?}"
        );
        let a = alloc.snapshot().totals;
        assert!(
            a.allocs < 2_000 / 2,
            "most allocations must bypass the allocator: {} allocs",
            a.allocs
        );
        l.check_invariants().unwrap();
        drop(l);
        // Teardown still returns every allocator block exactly once.
        let a = alloc.snapshot().totals;
        assert_eq!(a.allocs, a.deallocs, "pooled blocks leaked at drop");
    }

    #[test]
    fn key_zero_is_usable() {
        // The head sentinel's key field is never compared, so the full
        // [0, MAX_KEY] space is usable.
        let l = list(SmrKind::Debra, 1);
        let h = l.smr().register(0);
        assert!(l.insert(&h, 0, 7));
        assert_eq!(l.get(&h, 0), Some(7));
        assert!(l.insert(&h, MAX_KEY, 9));
        assert_eq!(l.collect_keys(), vec![0, MAX_KEY]);
        assert!(l.remove(&h, 0));
        assert_eq!(l.collect_keys(), vec![MAX_KEY]);
        l.check_invariants().unwrap();
    }
}
