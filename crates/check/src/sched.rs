//! Scheduling policies ("choosers").
//!
//! A chooser is asked, at every scheduler decision point, to pick one
//! agent from the currently available set. Three policies:
//!
//! * [`Chooser::random`] — burst-random: pick a uniformly random agent
//!   and let it run for a random burst of 1..=16 steps before
//!   re-deciding. Bursts matter: many SMR races need one thread to run a
//!   short *sequence* (e.g. publish-then-validate) uninterrupted and
//!   then lose the CPU at exactly one point; per-step uniform choice
//!   makes such windows exponentially unlikely.
//! * [`Chooser::pct`] — PCT (Burckhardt et al.): random static
//!   priorities per agent, run the highest-priority available one, with
//!   `d` priority-change points pre-sampled from the seed. Good at bugs
//!   of small "depth". A thread's flush agent runs at priority just
//!   below the thread itself, so publications drain promptly unless the
//!   schedule decides otherwise.
//! * [`Chooser::path`] — follow an explicit decision path, recording the
//!   number of available choices (width) at each point; the exhaustive
//!   driver uses the widths to backtrack depth-first, and seed replay
//!   uses it to re-execute a printed `path:...` schedule.
//!
//! Whatever the policy, the chosen sequence is fully determined by the
//! seed (or path), which is what makes replay exact.

use epic_util::rng::XorShift64;

/// A schedulable agent: a virtual thread, or the store-buffer flush
/// agent of a virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Agent {
    /// Virtual thread `vtid` takes its next step.
    Thread(usize),
    /// The oldest buffered store of vtid's buffer writes through.
    Flush(usize),
}

pub(crate) enum Chooser {
    Random {
        rng: XorShift64,
        current: Option<Agent>,
        burst_left: usize,
    },
    Pct {
        rng: XorShift64,
        /// Lazily assigned static priority per vtid (higher runs first).
        prios: Vec<u64>,
        /// Pre-sampled steps at which the last-run thread is demoted.
        change_points: Vec<usize>,
        /// Monotonically decreasing "lowest priority so far" for demotions.
        low: u64,
        last: Option<usize>,
    },
    Path {
        /// Decision indices to follow; extended with 0 when exhausted.
        path: Vec<usize>,
        /// Recorded number of available agents at each decision.
        widths: Vec<usize>,
        pos: usize,
    },
    /// Placeholder (used only when the real chooser is taken out).
    Noop,
}

impl Chooser {
    pub(crate) fn random(seed: u64) -> Chooser {
        Chooser::Random {
            rng: XorShift64::new(seed),
            current: None,
            burst_left: 0,
        }
    }

    pub(crate) fn pct(seed: u64, changes: usize, max_steps: usize) -> Chooser {
        let mut rng = XorShift64::new(seed ^ 0x9E37_79B9_7F4A_7C15);
        // Change points must land inside the schedule actually executed,
        // which is usually far shorter than the step *budget*; cap the
        // sampling range so short models still see demotions.
        let cap = max_steps.clamp(1, 512) as u64;
        let mut change_points: Vec<usize> = (0..changes)
            .map(|_| rng.next_bounded(cap) as usize)
            .collect();
        change_points.sort_unstable();
        Chooser::Pct {
            rng: XorShift64::new(seed),
            prios: Vec::new(),
            change_points,
            low: 1 << 16,
            last: None,
        }
    }

    pub(crate) fn path(path: Vec<usize>) -> Chooser {
        Chooser::Path {
            path,
            widths: Vec::new(),
            pos: 0,
        }
    }

    pub(crate) fn noop() -> Chooser {
        Chooser::Noop
    }

    /// The recorded decision path and widths (meaningful for `Path`).
    pub(crate) fn recorded(&self) -> (Vec<usize>, Vec<usize>) {
        match self {
            Chooser::Path { path, widths, .. } => (path.clone(), widths.clone()),
            _ => (Vec::new(), Vec::new()),
        }
    }

    /// Picks one agent from `agents` (non-empty, deterministic order:
    /// threads by vtid, then flush agents by vtid).
    pub(crate) fn choose(&mut self, agents: &[Agent], step: usize) -> Agent {
        debug_assert!(!agents.is_empty());
        match self {
            Chooser::Random {
                rng,
                current,
                burst_left,
            } => {
                if *burst_left > 0 {
                    if let Some(cur) = *current {
                        if agents.contains(&cur) {
                            *burst_left -= 1;
                            return cur;
                        }
                    }
                }
                let pick = agents[rng.next_bounded(agents.len() as u64) as usize];
                *current = Some(pick);
                *burst_left = rng.next_bounded(16) as usize;
                pick
            }
            Chooser::Pct {
                rng,
                prios,
                change_points,
                low,
                last,
            } => {
                let need = agents
                    .iter()
                    .map(|a| match a {
                        Agent::Thread(t) | Agent::Flush(t) => *t,
                    })
                    .max()
                    .unwrap_or(0);
                while prios.len() <= need {
                    // Priorities live well above the demotion band.
                    prios.push((1 << 20) + rng.next_bounded(1 << 20));
                }
                if let Some(l) = *last {
                    // A change point demotes the thread that ran into it.
                    while change_points.first().is_some_and(|&c| c <= step) {
                        change_points.remove(0);
                        *low -= 1;
                        prios[l] = *low;
                    }
                }
                let pick = *agents
                    .iter()
                    .max_by_key(|a| match a {
                        Agent::Thread(t) => (prios[*t], 1u8),
                        // Flushes run just below their thread: buffered
                        // stores drain "soon" by default, and get delayed
                        // across other threads only via demotion.
                        Agent::Flush(t) => (prios[*t], 0u8),
                    })
                    .unwrap();
                if let Agent::Thread(t) = pick {
                    *last = Some(t);
                }
                pick
            }
            Chooser::Path { path, widths, pos } => {
                widths.push(agents.len());
                let idx = if *pos < path.len() {
                    path[*pos]
                } else {
                    path.push(0);
                    0
                };
                *pos += 1;
                agents[idx.min(agents.len() - 1)]
            }
            Chooser::Noop => agents[0],
        }
    }
}
