//! `epic-check`: a deterministic, seed-replayable concurrency model
//! checker for the `epic-smr` core.
//!
//! The container this project builds in is offline, so instead of loom
//! or shuttle we carry our own small checker: virtual threads under a
//! controlled scheduler (the private `rt` module), instrumented atomics that model TSO
//! store buffers ([`atomic`]), and a handful of scheduling policies
//! ([burst-random, PCT, bounded-exhaustive](Mode)).
//!
//! # Writing a model
//!
//! ```
//! use epic_check::{check, Config};
//! use epic_check::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let cfg = Config::random(200).with_seed(7);
//! check(cfg, || {
//!     let x = Arc::new(AtomicUsize::new(0));
//!     let x2 = x.clone();
//!     let t = epic_check::thread::spawn(move || {
//!         x2.store(1, Ordering::SeqCst);
//!     });
//!     t.join().unwrap();
//!     assert_eq!(x.load(Ordering::SeqCst), 1);
//! });
//! ```
//!
//! The closure runs once per explored schedule. Any panic inside it (an
//! `assert!`, a model-allocator double-free, ...) fails the exploration;
//! [`check`] then panics with a report containing the iteration seed and
//! the tail of the schedule trace. Re-running the same test with
//! `EPIC_CHECK_SEED=<seed>` replays exactly that schedule — the trace is
//! byte-identical.
//!
//! # Environment
//!
//! * `EPIC_CHECK_SEED` — replay a single schedule: a decimal iteration
//!   seed, or `path:0,1,2` for a decision path from exhaustive mode.
//! * `EPIC_CHECK_ITERS` — override the iteration budget.
//! * `EPIC_CHECK_MASTER` — override the master seed (CI uses the run id
//!   here for its one randomized exploration).
//! * `EPIC_CHECK_TRACE_DIR` — on failure, also write the full schedule
//!   trace to a file in this directory (CI uploads it as an artifact).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod atomic;
mod rt;
mod sched;
pub mod thread;

use std::panic::{catch_unwind, AssertUnwindSafe};

use epic_util::rng::SplitMix64;

use sched::Chooser;

/// Scheduling policy for an exploration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Burst-random: uniformly random agent, random burst length. The
    /// workhorse — best at deep races that need an uninterrupted run-up.
    Random,
    /// PCT-style randomized priorities with `changes` priority-change
    /// points per schedule. Best at small-depth ordering bugs.
    Pct {
        /// Number of priority-change points per schedule.
        changes: usize,
    },
    /// Bounded-exhaustive depth-first enumeration of decision paths
    /// (first-decision-first). Only feasible for tiny models; the
    /// iteration budget bounds how many paths are explored.
    Exhaustive,
}

/// Exploration configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Schedules to explore (or paths, in exhaustive mode).
    pub iters: usize,
    /// Scheduled-step budget per schedule. Exceeding it truncates the
    /// schedule (a pass, not a failure) so random walks cannot hang.
    pub max_steps: usize,
    /// Scheduling policy.
    pub mode: Mode,
    /// Master seed; per-iteration seeds derive from it.
    pub seed: u64,
    /// Model context bits, readable inside the model via [`ctx`].
    /// Model tests use these as mutant masks.
    pub ctx: u64,
}

impl Config {
    /// Burst-random exploration with `iters` schedules.
    pub fn random(iters: usize) -> Config {
        Config {
            iters,
            max_steps: 20_000,
            mode: Mode::Random,
            seed: 0x5EED_CAFE,
            ctx: 0,
        }
    }

    /// PCT exploration with `iters` schedules and 3 change points.
    pub fn pct(iters: usize) -> Config {
        Config {
            mode: Mode::Pct { changes: 3 },
            ..Config::random(iters)
        }
    }

    /// Bounded-exhaustive exploration of up to `budget` paths.
    pub fn exhaustive(budget: usize) -> Config {
        Config {
            mode: Mode::Exhaustive,
            ..Config::random(budget)
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }

    /// Sets the per-schedule step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Config {
        self.max_steps = max_steps;
        self
    }

    /// Sets the model context bits (mutant mask).
    pub fn with_ctx(mut self, ctx: u64) -> Config {
        self.ctx = ctx;
        self
    }
}

/// A failed exploration: everything needed to reproduce and debug it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The value to put in `EPIC_CHECK_SEED` to replay this schedule
    /// (a decimal seed, or `path:...` from exhaustive mode).
    pub seed: String,
    /// The failure message (panic text or deadlock report).
    pub message: String,
    /// Scheduled steps taken when the failure hit.
    pub steps: usize,
    /// The full schedule trace.
    pub trace: Vec<String>,
}

impl Failure {
    /// Renders the human-facing failure report (seed line, message,
    /// trace tail).
    pub fn report(&self) -> String {
        let tail_from = self.trace.len().saturating_sub(40);
        let mut s = format!(
            "model check FAILED after {} steps\n  {}\n  replay: EPIC_CHECK_SEED={}\n  trace tail:\n",
            self.steps, self.message, self.seed
        );
        for line in &self.trace[tail_from..] {
            s.push_str(line);
            s.push('\n');
        }
        s
    }
}

/// Outcome of [`explore`].
#[derive(Clone, Debug)]
pub enum Outcome {
    /// All explored schedules passed.
    Pass {
        /// Number of schedules explored.
        iters: usize,
    },
    /// A schedule failed.
    Fail(Box<Failure>),
}

impl Outcome {
    /// Whether the exploration failed.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail(_))
    }
}

/// The model context bits of the current checker run (0 when the
/// calling thread is not under a checker). `epic-smr`'s seeded mutants
/// read these to decide whether to misbehave.
pub fn ctx() -> u64 {
    rt::with_rt(|rt, _| rt.ctx(), || 0)
}

/// An explicit schedule point with no memory action: under a checker,
/// yields to the scheduler; otherwise a no-op. Models use this to give
/// the scheduler a decision point around non-atomic oracle reads.
pub fn yield_now() {
    rt::with_rt(|rt, me| rt.op_yield(me), || {});
}

/// Drains the calling thread's store buffer without a schedule point.
/// Model allocators call this before releasing memory that shimmed
/// atomics may live in, so no buffered store can later write through
/// into freed memory.
pub fn flush_self() {
    rt::with_rt(|rt, me| rt.flush_self(me), || {});
}

fn run_one(chooser: Chooser, max_steps: usize, ctx_bits: u64, f: &(impl Fn() + Sync)) -> RunResult {
    let rt = rt::Rt::new(chooser, max_steps, ctx_bits);
    {
        let _bind = rt::Binding::new(rt.clone(), 0);
        let res = catch_unwind(AssertUnwindSafe(f));
        let msg = res.err().map(|p| panic_message(p.as_ref()));
        rt.thread_finished(0, msg);
    }
    rt.wait_all_finished();
    let (failure, truncated, steps, trace) = rt.results();
    let (path, widths) = rt.take_chooser().recorded();
    let _ = truncated; // truncation is a benign pass; kept for debugging
    RunResult {
        failure,
        steps,
        trace,
        path,
        widths,
    }
}

struct RunResult {
    failure: Option<String>,
    steps: usize,
    trace: Vec<String>,
    path: Vec<usize>,
    widths: Vec<usize>,
}

fn chooser_for(mode: Mode, seed: u64, max_steps: usize) -> Chooser {
    match mode {
        Mode::Random => Chooser::random(seed),
        Mode::Pct { changes } => Chooser::pct(seed, changes, max_steps),
        Mode::Exhaustive => Chooser::path(Vec::new()),
    }
}

/// Runs the model under every schedule the config asks for and returns
/// the outcome. Honors the `EPIC_CHECK_*` environment overrides (see the
/// crate docs). Mutant tests use this directly and assert
/// [`Outcome::is_fail`]; regular models go through [`check`].
pub fn explore(cfg: Config, f: impl Fn() + Sync) -> Outcome {
    if let Ok(seed) = std::env::var("EPIC_CHECK_SEED") {
        return replay(cfg, &seed, f);
    }
    let iters = std::env::var("EPIC_CHECK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.iters);
    let master = std::env::var("EPIC_CHECK_MASTER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.seed);

    if cfg.mode == Mode::Exhaustive {
        return explore_exhaustive(cfg, iters, &f);
    }

    let mut seeds = SplitMix64::new(master);
    for _ in 0..iters {
        let iter_seed = seeds.next_u64();
        let r = run_one(
            chooser_for(cfg.mode, iter_seed, cfg.max_steps),
            cfg.max_steps,
            cfg.ctx,
            &f,
        );
        if let Some(message) = r.failure {
            return Outcome::Fail(Box::new(Failure {
                seed: iter_seed.to_string(),
                message,
                steps: r.steps,
                trace: r.trace,
            }));
        }
    }
    Outcome::Pass { iters }
}

/// Depth-first enumeration of decision paths, budget-bounded.
fn explore_exhaustive(cfg: Config, budget: usize, f: &(impl Fn() + Sync)) -> Outcome {
    let mut path: Vec<usize> = Vec::new();
    let mut done = 0;
    loop {
        let r = run_one(Chooser::path(path.clone()), cfg.max_steps, cfg.ctx, f);
        done += 1;
        if let Some(message) = r.failure {
            let seed = format!(
                "path:{}",
                r.path
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            return Outcome::Fail(Box::new(Failure {
                seed,
                message,
                steps: r.steps,
                trace: r.trace,
            }));
        }
        if done >= budget {
            return Outcome::Pass { iters: done };
        }
        // Backtrack: bump the deepest decision that still has siblings.
        path = r.path;
        let widths = r.widths;
        loop {
            match path.pop() {
                None => return Outcome::Pass { iters: done },
                Some(last) => {
                    let width = widths.get(path.len()).copied().unwrap_or(1);
                    if last + 1 < width {
                        path.push(last + 1);
                        break;
                    }
                }
            }
        }
    }
}

/// Replays exactly one schedule from a seed string (`"12345"` or
/// `"path:0,1,2"`).
pub fn replay(cfg: Config, seed: &str, f: impl Fn() + Sync) -> Outcome {
    let chooser = if let Some(p) = seed.strip_prefix("path:") {
        let path = if p.is_empty() {
            Vec::new()
        } else {
            p.split(',')
                .map(|d| d.trim().parse().expect("bad path element"))
                .collect()
        };
        Chooser::path(path)
    } else {
        let iter_seed: u64 = seed
            .trim()
            .parse()
            .expect("EPIC_CHECK_SEED must be a u64 or path:...");
        chooser_for(cfg.mode, iter_seed, cfg.max_steps)
    };
    let r = run_one(chooser, cfg.max_steps, cfg.ctx, &f);
    match r.failure {
        Some(message) => Outcome::Fail(Box::new(Failure {
            seed: seed.to_string(),
            message,
            steps: r.steps,
            trace: r.trace,
        })),
        None => Outcome::Pass { iters: 1 },
    }
}

/// Explores the model and panics with a replayable report on failure.
/// This is the entry point regular (non-mutant) model tests use.
pub fn check(cfg: Config, f: impl Fn() + Sync) {
    match explore(cfg, f) {
        Outcome::Pass { .. } => {}
        Outcome::Fail(failure) => {
            maybe_dump_trace(&failure);
            panic!("{}", failure.report());
        }
    }
}

/// Writes the full trace to `$EPIC_CHECK_TRACE_DIR/<name>.trace` when the
/// env var is set (CI uploads the directory as an artifact on failure).
fn maybe_dump_trace(failure: &Failure) {
    if let Ok(dir) = std::env::var("EPIC_CHECK_TRACE_DIR") {
        let name: String = failure
            .seed
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("seed_{name}.trace"));
        let mut body = format!("{}\nfull trace:\n", failure.report());
        for line in &failure.trace {
            body.push_str(line);
            body.push('\n');
        }
        let _ = std::fs::create_dir_all(&dir);
        let _ = std::fs::write(path, body);
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
