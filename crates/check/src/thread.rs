//! Scheduler-aware thread spawn/join.
//!
//! Models spawn workers through [`spawn`] instead of `std::thread::spawn`
//! so the children become virtual threads under the current checker. On
//! a thread with no checker bound, this is a plain passthrough.
//!
//! Children run on real OS threads but only execute while the scheduler
//! has granted them the token; a child panic is captured as the
//! iteration's failure (with its message) and aborts the schedule, then
//! resumes unwinding so the real `join` still returns `Err`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread as std_thread;

use crate::rt::{self, Rt};

/// Handle to a spawned (possibly virtual) thread.
pub struct JoinHandle<T> {
    inner: std_thread::JoinHandle<T>,
    virt: Option<(Arc<Rt>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Joins the thread. Under a checker this first blocks *virtually*
    /// (a schedulable decision) until the target vthread finishes, then
    /// performs the real join.
    pub fn join(self) -> std_thread::Result<T> {
        if let Some((rt, target)) = &self.virt {
            rt::with_rt(
                |_, me| rt.join_block(me, *target),
                // Joining from outside the schedule (e.g. the driver):
                // just fall through to the real join.
                || (),
            );
        }
        self.inner.join()
    }
}

/// Spawns a thread; a virtual one when the caller is bound to a checker
/// runtime, a plain `std::thread` otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let cur = rt::with_rt(|rt, me| Some((rt.clone(), me)), || None);
    match cur {
        None => JoinHandle {
            inner: std_thread::spawn(f),
            virt: None,
        },
        Some((rt, me)) => {
            // Real `thread::spawn` is a release point: everything the
            // spawner wrote happens-before the child runs. Mirror that by
            // draining the spawner's store buffer.
            rt.flush_self(me);
            let vtid = rt.register_thread();
            let rt2 = rt.clone();
            let inner = std_thread::spawn(move || {
                let _bind = rt::Binding::new(rt2.clone(), vtid);
                rt2.wait_first(vtid);
                let res = catch_unwind(AssertUnwindSafe(f));
                match res {
                    Ok(v) => {
                        rt2.thread_finished(vtid, None);
                        v
                    }
                    Err(payload) => {
                        rt2.thread_finished(vtid, Some(crate::panic_message(payload.as_ref())));
                        resume_unwind(payload)
                    }
                }
            });
            JoinHandle {
                inner,
                virt: Some((rt, vtid)),
            }
        }
    }
}
