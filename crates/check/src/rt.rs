//! The cooperative scheduler runtime.
//!
//! One [`Rt`] drives one *iteration* (one explored schedule) of a model.
//! Virtual threads are real OS threads, but exactly one is ever
//! `Running`: every instrumented atomic operation first parks the caller
//! at a *yield point*, lets the [`Chooser`] pick who goes next, and only
//! then performs the memory operation — all under the single global
//! scheduler lock, so the whole iteration is sequentially consistent *at
//! the level of scheduler steps* and therefore fully determined by the
//! chooser's decisions.
//!
//! # Memory model: TSO store buffers
//!
//! Plain sequential consistency over scheduler steps would hide exactly
//! the bugs this checker exists to find (a `Relaxed` publish where
//! `SeqCst` is required is *invisible* under SC). We therefore model a
//! TSO-style machine, the weakest model that still keeps the
//! implementation tractable and deterministic:
//!
//! * every non-`SeqCst` store goes into the executing thread's FIFO
//!   *store buffer* instead of memory;
//! * a `SeqCst` store or `SeqCst` fence first drains the thread's own
//!   buffer, then writes through;
//! * loads forward from the thread's own buffer (newest matching entry —
//!   x86 store-forwarding) and otherwise read memory;
//! * RMWs (`swap`, `fetch_add`, `compare_exchange`, ...) drain the
//!   buffer and act directly on memory;
//! * for every thread with a non-empty buffer the scheduler exposes a
//!   *flush agent*: an extra schedulable agent whose only action is to
//!   write the oldest buffered store through to memory. The chooser can
//!   interleave flushes arbitrarily with real steps, which is what makes
//!   delayed-publication bugs observable.
//!
//! This is weaker than x86-TSO in no respect and weaker than C11 in
//! many; a data race the model finds is a real bug, while races that
//! need non-TSO reordering (e.g. load-load) are out of scope and
//! documented as such in DESIGN.md §9.
//!
//! # Determinism
//!
//! All scheduling randomness comes from the iteration seed. Trace lines
//! identify atomics by first-seen index (`a#0`, `a#1`, ...), never by
//! address, and large values (pointers) print as `big`, so a replay of
//! the same seed produces byte-identical traces even under ASLR.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::sched::{Agent, Chooser};

/// Width of a shimmed atomic cell (values are carried as `u64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Width {
    /// `AtomicBool` (backed by one byte, values 0/1).
    U8,
    /// `AtomicU64`.
    U64,
    /// `AtomicUsize`.
    Usize,
}

/// A store sitting in a thread's store buffer, not yet visible to
/// other threads.
#[derive(Clone, Copy, Debug)]
struct BufferedStore {
    addr: usize,
    val: u64,
    width: Width,
}

/// Virtual-thread run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Run {
    /// Schedulable.
    Ready,
    /// The (single) thread currently allowed to execute.
    Running,
    /// Waiting for the given vtid to finish (a `join`).
    Blocked(usize),
    /// Done (returned or panicked).
    Finished,
}

struct VThread {
    run: Run,
    buffer: VecDeque<BufferedStore>,
}

pub(crate) struct SchedState {
    threads: Vec<VThread>,
    /// Scheduled steps so far (yield points + flush-agent actions).
    step: usize,
    max_steps: usize,
    /// Set when the iteration is being torn down (failure, panic or step
    /// budget). All yield points become no-ops and stores write through
    /// directly so every real thread can run to completion unscheduled.
    abort: bool,
    /// Whether the step budget was hit (a truncated, *passing* run).
    truncated: bool,
    /// First failure message (panic text or deadlock report).
    failure: Option<String>,
    chooser: Chooser,
    trace: Vec<String>,
    /// addr -> first-seen id, for stable trace names.
    addr_ids: Vec<usize>,
}

impl SchedState {
    fn addr_id(&mut self, addr: usize) -> usize {
        match self.addr_ids.iter().position(|&a| a == addr) {
            Some(i) => i,
            None => {
                self.addr_ids.push(addr);
                self.addr_ids.len() - 1
            }
        }
    }

    fn fmt_val(v: u64) -> String {
        // Pointers differ run to run under ASLR; mask anything that
        // cannot be a small counter/flag so traces replay byte-identically.
        if v < (1 << 32) {
            v.to_string()
        } else {
            "big".to_string()
        }
    }

    fn trace_op(
        &mut self,
        me: usize,
        kind: &str,
        addr: usize,
        val: u64,
        loc: &'static Location<'static>,
        note: &str,
    ) {
        let id = self.addr_id(addr);
        let step = self.step;
        self.trace.push(format!(
            "{step:>5} t{me} {kind} a#{id} = {}{note} @{}:{}",
            Self::fmt_val(val),
            loc.file(),
            loc.line()
        ));
    }

    fn begin_abort(&mut self) {
        if debug_log() {
            eprintln!(
                "begin_abort at step {} (failure={:?}, truncated={})",
                self.step, self.failure, self.truncated
            );
        }
        if !self.abort {
            self.abort = true;
            // Nobody will schedule flush agents any more: write every
            // buffered store through so direct (abort-mode) operation
            // sees a consistent memory.
            for t in 0..self.threads.len() {
                self.flush_all_of(t);
            }
        }
    }

    fn flush_oldest_of(&mut self, t: usize) {
        if let Some(b) = self.threads[t].buffer.pop_front() {
            // SAFETY: the address belongs to a live shim atomic; models
            // must drain buffers (thread exit / `flush_self`) before the
            // memory backing an atomic is released.
            unsafe { raw_store(b.addr, b.val, b.width) };
            let id = self.addr_id(b.addr);
            let step = self.step;
            self.trace.push(format!(
                "{step:>5} -- flush t{t} a#{id} = {}",
                Self::fmt_val(b.val)
            ));
        }
    }

    fn flush_all_of(&mut self, t: usize) {
        while !self.threads[t].buffer.is_empty() {
            self.flush_oldest_of(t);
        }
    }

    /// Newest buffered value for `addr` in `t`'s buffer, if any
    /// (store-forwarding).
    fn forwarded(&self, t: usize, addr: usize) -> Option<u64> {
        self.threads[t]
            .buffer
            .iter()
            .rev()
            .find(|b| b.addr == addr)
            .map(|b| b.val)
    }

    /// Pick and start the next agent. On entry no thread is `Running`
    /// (the caller just gave up the token). On exit either one thread is
    /// `Running`, or the iteration is over/aborted.
    fn schedule(&mut self) {
        loop {
            if self.abort {
                return;
            }
            if self.step >= self.max_steps {
                self.truncated = true;
                self.begin_abort();
                return;
            }
            let mut agents = Vec::new();
            for (i, t) in self.threads.iter().enumerate() {
                if t.run == Run::Ready {
                    agents.push(Agent::Thread(i));
                }
            }
            let no_ready = agents.is_empty();
            for (i, t) in self.threads.iter().enumerate() {
                if !t.buffer.is_empty() {
                    agents.push(Agent::Flush(i));
                }
            }
            if no_ready {
                // No runnable thread. Drain all buffers, then decide:
                // everyone finished (normal end) or a deadlock.
                for t in 0..self.threads.len() {
                    self.flush_all_of(t);
                }
                if self.threads.iter().all(|t| t.run == Run::Finished) {
                    return;
                }
                let blocked: Vec<String> = self
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.run, Run::Blocked(_)))
                    .map(|(i, t)| format!("t{i}:{:?}", t.run))
                    .collect();
                if self.failure.is_none() {
                    self.failure = Some(format!(
                        "deadlock: no runnable thread ({})",
                        blocked.join(", ")
                    ));
                }
                self.begin_abort();
                return;
            }
            let picked = self.chooser.choose(&agents, self.step);
            if debug_log() {
                eprintln!(
                    "schedule: step {} agents {:?} -> {:?}",
                    self.step, agents, picked
                );
            }
            match picked {
                Agent::Flush(t) => {
                    self.step += 1;
                    self.flush_oldest_of(t);
                    // Flushes are pure memory actions; keep choosing
                    // until a real thread gets the token.
                    continue;
                }
                Agent::Thread(t) => {
                    if self.threads[t].run != Run::Running {
                        let step = self.step;
                        self.trace.push(format!("{step:>5} -- switch -> t{t}"));
                    }
                    self.threads[t].run = Run::Running;
                    return;
                }
            }
        }
    }
}

/// One iteration's runtime: the scheduler lock, the wakeup condvar and
/// the model context bits.
pub struct Rt {
    ctx: u64,
    state: Mutex<SchedState>,
    cv: Condvar,
}

fn lock(m: &Mutex<SchedState>) -> MutexGuard<'_, SchedState> {
    // A panicking vthread poisons the lock while unwinding through a
    // yield point; the state itself stays consistent (we only ever
    // mutate it in small complete steps), so keep going.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Rt {
    pub(crate) fn new(chooser: Chooser, max_steps: usize, ctx: u64) -> Arc<Rt> {
        Arc::new(Rt {
            ctx,
            state: Mutex::new(SchedState {
                // vtid 0 is the model's root thread, born Running.
                threads: vec![VThread {
                    run: Run::Running,
                    buffer: VecDeque::new(),
                }],
                step: 0,
                max_steps,
                abort: false,
                truncated: false,
                failure: None,
                chooser,
                trace: Vec::new(),
                addr_ids: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn ctx(&self) -> u64 {
        self.ctx
    }

    /// Park at a yield point: give up the token, let the chooser run
    /// other agents, resume when re-chosen. Returns the state guard with
    /// `me` running (or the iteration aborting), under which the caller
    /// performs its memory operation atomically w.r.t. scheduling.
    fn yield_point(&self, me: usize) -> MutexGuard<'_, SchedState> {
        let mut st = lock(&self.state);
        if st.abort {
            return st;
        }
        st.step += 1;
        st.threads[me].run = Run::Ready;
        st.schedule();
        self.cv.notify_all();
        while st.threads[me].run != Run::Running && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st
    }

    pub(crate) fn op_load(
        &self,
        me: usize,
        addr: usize,
        w: Width,
        loc: &'static Location<'static>,
    ) -> u64 {
        let mut st = self.yield_point(me);
        let fwd = st.forwarded(me, addr);
        let v = match fwd {
            Some(v) => v,
            // SAFETY: `addr` is the address of the caller's live atomic.
            None => unsafe { raw_load(addr, w) },
        };
        if !st.abort {
            let note = if fwd.is_some() { " (fwd)" } else { "" };
            st.trace_op(me, "load", addr, v, loc, note);
        }
        v
    }

    pub(crate) fn op_store(
        &self,
        me: usize,
        addr: usize,
        val: u64,
        w: Width,
        ord: Ordering,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.yield_point(me);
        if st.abort {
            // SAFETY: as above; buffers were drained at abort.
            unsafe { raw_store(addr, val, w) };
            return;
        }
        if matches!(ord, Ordering::SeqCst) {
            st.flush_all_of(me);
            // SAFETY: as above.
            unsafe { raw_store(addr, val, w) };
            st.trace_op(me, "store.sc", addr, val, loc, "");
        } else {
            st.threads[me].buffer.push_back(BufferedStore {
                addr,
                val,
                width: w,
            });
            st.trace_op(me, "store", addr, val, loc, " (buffered)");
        }
    }

    /// RMW: drains the buffer (RMWs are full barriers on TSO), applies
    /// `f` to the current memory value, writes the result through, and
    /// returns the old value.
    pub(crate) fn op_rmw(
        &self,
        me: usize,
        addr: usize,
        w: Width,
        kind: &str,
        loc: &'static Location<'static>,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut st = self.yield_point(me);
        if !st.abort {
            st.flush_all_of(me);
        }
        // SAFETY: as above; we hold the scheduler lock, no other vthread
        // is running, so read-modify-write is atomic.
        let old = unsafe { raw_load(addr, w) };
        let new = f(old);
        // SAFETY: as above.
        unsafe { raw_store(addr, new, w) };
        if !st.abort {
            st.trace_op(me, kind, addr, new, loc, "");
        }
        old
    }

    /// Compare-exchange: drains the buffer, compares against memory,
    /// conditionally writes. Returns `Ok(current)` / `Err(current)`.
    pub(crate) fn op_cas(
        &self,
        me: usize,
        addr: usize,
        current: u64,
        new: u64,
        w: Width,
        loc: &'static Location<'static>,
    ) -> Result<u64, u64> {
        let mut st = self.yield_point(me);
        if !st.abort {
            st.flush_all_of(me);
        }
        // SAFETY: as in `op_rmw`.
        let old = unsafe { raw_load(addr, w) };
        let ok = old == current;
        if ok {
            // SAFETY: as in `op_rmw`.
            unsafe { raw_store(addr, new, w) };
        }
        if !st.abort {
            let note = if ok { "" } else { " (failed)" };
            st.trace_op(me, "cas", addr, if ok { new } else { old }, loc, note);
        }
        if ok {
            Ok(old)
        } else {
            Err(old)
        }
    }

    pub(crate) fn op_fence(&self, me: usize, ord: Ordering, loc: &'static Location<'static>) {
        let mut st = self.yield_point(me);
        if st.abort {
            return;
        }
        if matches!(ord, Ordering::SeqCst) {
            st.flush_all_of(me);
        }
        let step = st.step;
        st.trace.push(format!(
            "{step:>5} t{me} fence @{}:{}",
            loc.file(),
            loc.line()
        ));
    }

    /// An explicit schedule point with no memory action. Models use this
    /// to widen race windows around non-atomic oracle reads.
    pub(crate) fn op_yield(&self, me: usize) {
        let _st = self.yield_point(me);
    }

    /// Drains the calling vthread's store buffer *without* a schedule
    /// point. Called before memory backing shimmed atomics is released
    /// (e.g. a model allocator's `dealloc`), so no pending store can
    /// later write through into freed memory.
    pub(crate) fn flush_self(&self, me: usize) {
        let mut st = lock(&self.state);
        st.flush_all_of(me);
    }

    /// Registers a new vthread (born `Ready`); returns its vtid. Called
    /// by the *spawner*, before the real thread starts.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = lock(&self.state);
        st.threads.push(VThread {
            run: Run::Ready,
            buffer: VecDeque::new(),
        });
        st.threads.len() - 1
    }

    /// First wait of a freshly spawned vthread: block until scheduled.
    pub(crate) fn wait_first(&self, me: usize) {
        let mut st = lock(&self.state);
        while st.threads[me].run != Run::Running && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks `me` until `target` finishes (a virtual `join`).
    pub(crate) fn join_block(&self, me: usize, target: usize) {
        let mut st = lock(&self.state);
        if st.abort || st.threads[target].run == Run::Finished {
            return;
        }
        st.step += 1;
        st.threads[me].run = Run::Blocked(target);
        let step = st.step;
        st.trace.push(format!("{step:>5} t{me} join t{target}"));
        st.schedule();
        self.cv.notify_all();
        while st.threads[me].run != Run::Running && !st.abort {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks `me` finished (flushing its buffer — thread exit is a
    /// release), records a panic as the iteration's failure, wakes any
    /// joiners and hands the token on.
    ///
    /// A clean exit is itself a *scheduled* event: without the extra
    /// yield point, a thread's last operation and its exit drain would
    /// be atomic, and weak outcomes that need another thread to read
    /// *between* them (the classic store-buffering litmus) would be
    /// unreachable.
    pub(crate) fn thread_finished(&self, me: usize, panic_msg: Option<String>) {
        if panic_msg.is_none() {
            drop(self.yield_point(me));
        }
        let mut st = lock(&self.state);
        st.flush_all_of(me);
        st.threads[me].run = Run::Finished;
        if let Some(msg) = panic_msg {
            let step = st.step;
            st.trace.push(format!("{step:>5} t{me} panic: {msg}"));
            if st.failure.is_none() {
                st.failure = Some(format!("t{me} panicked: {msg}"));
            }
            st.begin_abort();
        } else {
            let step = st.step;
            st.trace.push(format!("{step:>5} t{me} exit"));
            for t in st.threads.iter_mut() {
                if t.run == Run::Blocked(me) {
                    t.run = Run::Ready;
                }
            }
            if !st.abort {
                st.schedule();
            }
        }
        self.cv.notify_all();
    }

    /// Waits (on the driver thread, outside the schedule) until every
    /// vthread has finished.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = lock(&self.state);
        while !st.threads.iter().all(|t| t.run == Run::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// (failure, truncated, steps, trace) — consumed by the driver after
    /// the iteration.
    pub(crate) fn results(&self) -> (Option<String>, bool, usize, Vec<String>) {
        let st = lock(&self.state);
        (st.failure.clone(), st.truncated, st.step, st.trace.clone())
    }

    /// Hands back the chooser (the exhaustive driver needs the recorded
    /// path and widths).
    pub(crate) fn take_chooser(&self) -> Chooser {
        let mut st = lock(&self.state);
        std::mem::replace(&mut st.chooser, Chooser::noop())
    }
}

/// Whether `EPIC_CHECK_DEBUG` verbose scheduler logging is on
/// (checked once per process).
fn debug_log() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var("EPIC_CHECK_DEBUG").is_ok())
}

/// SAFETY: `addr` must point at a live `std` atomic of the given width.
unsafe fn raw_load(addr: usize, w: Width) -> u64 {
    match w {
        // SAFETY: caller contract.
        Width::U8 => {
            unsafe { &*(addr as *const std::sync::atomic::AtomicU8) }.load(Ordering::Relaxed) as u64
        }
        // SAFETY: caller contract.
        Width::U64 => {
            unsafe { &*(addr as *const std::sync::atomic::AtomicU64) }.load(Ordering::Relaxed)
        }
        // SAFETY: caller contract.
        Width::Usize => unsafe { &*(addr as *const std::sync::atomic::AtomicUsize) }
            .load(Ordering::Relaxed) as u64,
    }
}

/// SAFETY: as [`raw_load`].
unsafe fn raw_store(addr: usize, val: u64, w: Width) {
    match w {
        // SAFETY: caller contract.
        Width::U8 => unsafe { &*(addr as *const std::sync::atomic::AtomicU8) }
            .store(val as u8, Ordering::Relaxed),
        // SAFETY: caller contract.
        Width::U64 => {
            unsafe { &*(addr as *const std::sync::atomic::AtomicU64) }.store(val, Ordering::Relaxed)
        }
        // SAFETY: caller contract.
        Width::Usize => unsafe { &*(addr as *const std::sync::atomic::AtomicUsize) }
            .store(val as usize, Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Thread-local binding: which Rt (if any) the current OS thread belongs
// to, and its vtid.
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn install(rt: Arc<Rt>, vtid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, vtid)));
}

pub(crate) fn clear() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Runs `f` with the current thread's runtime binding, or `fallback` if
/// this thread is not under a checker (normal test code, or a model's
/// helper thread outside the schedule).
pub(crate) fn with_rt<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R, fallback: impl FnOnce() -> R) -> R {
    let cur = CURRENT.with(|c| c.borrow().clone());
    match cur {
        Some((rt, vtid)) => f(&rt, vtid),
        None => fallback(),
    }
}

/// A guard that installs the binding and clears it on drop (even on
/// panic), used by the driver and by spawned vthreads.
pub(crate) struct Binding;

impl Binding {
    pub(crate) fn new(rt: Arc<Rt>, vtid: usize) -> Binding {
        install(rt, vtid);
        Binding
    }
}

impl Drop for Binding {
    fn drop(&mut self) {
        clear();
    }
}
