//! Instrumented drop-in replacements for `std::sync::atomic` types.
//!
//! Same-size wrappers around the real `std` atomics. On a thread that is
//! *not* bound to a checker runtime, every operation is a plain
//! passthrough with the caller's ordering — so code compiled against
//! these shims still works outside `epic_check::check` (and the shims
//! are only compiled in at all under `--cfg epic_model_check`).
//!
//! On a bound thread, every operation becomes a scheduler step and goes
//! through the TSO store-buffer model (see the private `rt` module).

use std::panic::Location;
use std::sync::atomic as std_atomic;

pub use std::sync::atomic::Ordering;

use crate::rt::{with_rt, Width};

macro_rules! shim_atomic {
    ($name:ident, $std:ident, $prim:ty, $width:expr) => {
        /// Instrumented drop-in for the `std` atomic of the same name.
        #[repr(transparent)]
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std_atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: std_atomic::$std::new(v),
                }
            }

            fn addr(&self) -> usize {
                &self.inner as *const _ as usize
            }

            /// Loads the value (a scheduler step under a checker).
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| rt.op_load(me, self.addr(), $width, loc) as $prim,
                    || self.inner.load(ord),
                )
            }

            /// Stores a value; non-`SeqCst` stores are buffered under a
            /// checker (TSO).
            #[track_caller]
            pub fn store(&self, val: $prim, ord: Ordering) {
                let loc = Location::caller();
                with_rt(
                    |rt, me| rt.op_store(me, self.addr(), val as u64, $width, ord, loc),
                    || self.inner.store(val, ord),
                )
            }

            /// Swaps the value, returning the previous one.
            #[track_caller]
            pub fn swap(&self, val: $prim, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_rmw(me, self.addr(), $width, "swap", loc, |_| val as u64) as $prim
                    },
                    || self.inner.swap(val, ord),
                )
            }

            /// Compare-exchange (a full barrier under the checker's TSO
            /// model, like every RMW).
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_cas(me, self.addr(), current as u64, new as u64, $width, loc)
                            .map(|v| v as $prim)
                            .map_err(|v| v as $prim)
                    },
                    || self.inner.compare_exchange(current, new, ok, err),
                )
            }

            /// Weak compare-exchange (never fails spuriously under the
            /// checker: spurious failure only adds schedules that real
            /// success already covers).
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                ok: Ordering,
                err: Ordering,
            ) -> Result<$prim, $prim> {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_cas(me, self.addr(), current as u64, new as u64, $width, loc)
                            .map(|v| v as $prim)
                            .map_err(|v| v as $prim)
                    },
                    || self.inner.compare_exchange_weak(current, new, ok, err),
                )
            }
        }
    };
}

macro_rules! shim_fetch_ops {
    ($name:ident, $prim:ty, $width:expr) => {
        impl $name {
            /// Adds to the value, returning the previous one.
            #[track_caller]
            pub fn fetch_add(&self, val: $prim, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_rmw(me, self.addr(), $width, "faa", loc, |old| {
                            (old as $prim).wrapping_add(val) as u64
                        }) as $prim
                    },
                    || self.inner.fetch_add(val, ord),
                )
            }

            /// Subtracts from the value, returning the previous one.
            #[track_caller]
            pub fn fetch_sub(&self, val: $prim, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_rmw(me, self.addr(), $width, "fsub", loc, |old| {
                            (old as $prim).wrapping_sub(val) as u64
                        }) as $prim
                    },
                    || self.inner.fetch_sub(val, ord),
                )
            }

            /// Bitwise-ORs into the value, returning the previous one.
            #[track_caller]
            pub fn fetch_or(&self, val: $prim, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_rmw(me, self.addr(), $width, "for", loc, |old| {
                            ((old as $prim) | val) as u64
                        }) as $prim
                    },
                    || self.inner.fetch_or(val, ord),
                )
            }

            /// Maximum of the value and the argument, returning the
            /// previous value.
            #[track_caller]
            pub fn fetch_max(&self, val: $prim, ord: Ordering) -> $prim {
                let loc = Location::caller();
                with_rt(
                    |rt, me| {
                        rt.op_rmw(me, self.addr(), $width, "fmax", loc, |old| {
                            (old as $prim).max(val) as u64
                        }) as $prim
                    },
                    || self.inner.fetch_max(val, ord),
                )
            }
        }
    };
}

shim_atomic!(AtomicU64, AtomicU64, u64, Width::U64);
shim_atomic!(AtomicUsize, AtomicUsize, usize, Width::Usize);
shim_fetch_ops!(AtomicU64, u64, Width::U64);
shim_fetch_ops!(AtomicUsize, usize, Width::Usize);

/// Instrumented drop-in for `std::sync::atomic::AtomicBool`.
#[repr(transparent)]
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std_atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std_atomic::AtomicBool::new(v),
        }
    }

    fn addr(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Loads the value (a scheduler step under a checker).
    #[track_caller]
    pub fn load(&self, ord: Ordering) -> bool {
        let loc = Location::caller();
        with_rt(
            |rt, me| rt.op_load(me, self.addr(), Width::U8, loc) != 0,
            || self.inner.load(ord),
        )
    }

    /// Stores a value; non-`SeqCst` stores are buffered under a checker.
    #[track_caller]
    pub fn store(&self, val: bool, ord: Ordering) {
        let loc = Location::caller();
        with_rt(
            |rt, me| rt.op_store(me, self.addr(), val as u64, Width::U8, ord, loc),
            || self.inner.store(val, ord),
        )
    }

    /// Swaps the value, returning the previous one.
    #[track_caller]
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        let loc = Location::caller();
        with_rt(
            |rt, me| rt.op_rmw(me, self.addr(), Width::U8, "swap", loc, |_| val as u64) != 0,
            || self.inner.swap(val, ord),
        )
    }

    /// Compare-exchange (a full barrier under the checker).
    #[track_caller]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        ok: Ordering,
        err: Ordering,
    ) -> Result<bool, bool> {
        let loc = Location::caller();
        with_rt(
            |rt, me| {
                rt.op_cas(me, self.addr(), current as u64, new as u64, Width::U8, loc)
                    .map(|v| v != 0)
                    .map_err(|v| v != 0)
            },
            || self.inner.compare_exchange(current, new, ok, err),
        )
    }
}

/// Instrumented drop-in for `std::sync::atomic::fence`. A `SeqCst` fence
/// drains the calling thread's store buffer; weaker fences are pure
/// schedule points (TSO already orders everything they would).
#[track_caller]
pub fn fence(ord: Ordering) {
    let loc = Location::caller();
    with_rt(
        |rt, me| rt.op_fence(me, ord, loc),
        || std_atomic::fence(ord),
    );
}
