//! Self-tests for the checker itself: litmus tests proving the TSO
//! store-buffer model finds the weak behaviors it must (and not the ones
//! it must not), replay determinism, and the no-runtime passthrough.

use std::sync::Arc;

use epic_check::atomic::{fence, AtomicUsize, Ordering};
use epic_check::{check, ctx, explore, replay, thread, Config, Outcome};

/// The classic store-buffering (SB) litmus: with plain (buffered)
/// stores, both threads may read 0 — the checker must find it.
fn sb_model(store_ord: Ordering, fence_between: bool) -> impl Fn() + Sync {
    move || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x1, y1) = (x.clone(), y.clone());
        let t1 = thread::spawn(move || {
            x1.store(1, store_ord);
            if fence_between {
                fence(Ordering::SeqCst);
            }
            y1.load(Ordering::SeqCst)
        });
        let (x2, y2) = (x.clone(), y.clone());
        let t2 = thread::spawn(move || {
            y2.store(1, store_ord);
            if fence_between {
                fence(Ordering::SeqCst);
            }
            x2.load(Ordering::SeqCst)
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            !(r1 == 0 && r2 == 0),
            "store buffering observed: r1 == r2 == 0"
        );
    }
}

#[test]
fn sb_with_relaxed_stores_is_found() {
    let out = explore(
        Config::random(500).with_seed(11),
        sb_model(Ordering::Release, false),
    );
    match out {
        Outcome::Fail(f) => assert!(
            f.message.contains("store buffering observed"),
            "{}",
            f.message
        ),
        Outcome::Pass { .. } => panic!("checker missed the store-buffering behavior"),
    }
}

#[test]
fn sb_with_relaxed_stores_is_found_exhaustively() {
    let out = explore(
        Config::exhaustive(50_000),
        sb_model(Ordering::Relaxed, false),
    );
    assert!(
        out.is_fail(),
        "exhaustive exploration missed store buffering"
    );
}

#[test]
fn sb_with_seqcst_stores_passes_exhaustively() {
    // SeqCst stores write through: both-read-zero must be impossible in
    // EVERY schedule, which exhaustive mode proves for this tiny model.
    match explore(
        Config::exhaustive(200_000),
        sb_model(Ordering::SeqCst, false),
    ) {
        Outcome::Pass { iters } => {
            assert!(
                iters < 200_000,
                "path space not fully enumerated ({iters} paths)"
            )
        }
        Outcome::Fail(f) => panic!("false positive under SeqCst stores:\n{}", f.report()),
    }
}

#[test]
fn sb_with_seqcst_fence_passes_exhaustively() {
    // store(Relaxed); fence(SeqCst); load — the fence drains the buffer,
    // which also forbids the weak outcome.
    match explore(
        Config::exhaustive(200_000),
        sb_model(Ordering::Relaxed, true),
    ) {
        Outcome::Pass { iters } => {
            assert!(
                iters < 200_000,
                "path space not fully enumerated ({iters} paths)"
            )
        }
        Outcome::Fail(f) => panic!("false positive under SeqCst fences:\n{}", f.report()),
    }
}

#[test]
fn pct_mode_also_finds_sb() {
    let out = explore(
        Config::pct(500).with_seed(23),
        sb_model(Ordering::Relaxed, false),
    );
    assert!(out.is_fail(), "PCT exploration missed store buffering");
}

#[test]
fn failing_seed_replays_byte_identically() {
    let f1 = match explore(
        Config::random(500).with_seed(99),
        sb_model(Ordering::Relaxed, false),
    ) {
        Outcome::Fail(f) => f,
        Outcome::Pass { .. } => panic!("expected a failure to replay"),
    };
    for _ in 0..2 {
        let f2 = match replay(
            Config::random(500),
            &f1.seed,
            sb_model(Ordering::Relaxed, false),
        ) {
            Outcome::Fail(f) => f,
            Outcome::Pass { .. } => panic!("replay of seed {} did not fail", f1.seed),
        };
        assert_eq!(f1.message, f2.message);
        assert_eq!(f1.trace, f2.trace, "replayed trace differs from original");
        assert_eq!(f1.steps, f2.steps);
    }
}

#[test]
fn rmw_is_atomic_under_contention() {
    // Two threads of 10 fetch_adds each; any lost update would show.
    check(Config::random(100).with_seed(3), || {
        let c = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..10 {
                        c.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(c.load(Ordering::SeqCst), 20);
    });
}

#[test]
fn child_panic_is_captured_with_message() {
    let out = explore(Config::random(5).with_seed(1), || {
        let t = thread::spawn(|| panic!("boom-12345"));
        let _ = t.join();
    });
    match out {
        Outcome::Fail(f) => {
            assert!(
                f.message.contains("boom-12345"),
                "message lost: {}",
                f.message
            );
            assert!(
                f.seed.parse::<u64>().is_ok(),
                "seed not replayable: {}",
                f.seed
            );
        }
        Outcome::Pass { .. } => panic!("child panic not captured"),
    }
}

#[test]
fn ctx_bits_reach_the_model() {
    check(Config::random(2).with_seed(5).with_ctx(0b101), || {
        assert_eq!(ctx(), 0b101);
    });
    assert_eq!(ctx(), 0, "ctx() must be 0 outside a checker");
}

#[test]
fn shims_pass_through_without_a_runtime() {
    // No checker bound: shim ops behave exactly like std atomics and
    // thread::spawn is a plain std spawn.
    let a = AtomicUsize::new(5);
    assert_eq!(a.load(Ordering::SeqCst), 5);
    a.store(7, Ordering::Release);
    assert_eq!(a.swap(9, Ordering::AcqRel), 7);
    assert_eq!(a.fetch_add(1, Ordering::Relaxed), 9);
    assert_eq!(
        a.compare_exchange(10, 11, Ordering::SeqCst, Ordering::Relaxed),
        Ok(10)
    );
    fence(Ordering::SeqCst);
    epic_check::yield_now();
    epic_check::flush_self();
    let t = thread::spawn(|| 42);
    assert_eq!(t.join().unwrap(), 42);
}

#[test]
fn spin_loop_truncates_benignly() {
    // A spin loop can eat the whole step budget; hitting the budget must
    // truncate the schedule (a pass) and still run everything to
    // completion, never hang or fail.
    check(Config::random(3).with_seed(8).with_max_steps(200), || {
        let stop = Arc::new(AtomicUsize::new(0));
        let s2 = stop.clone();
        let t = thread::spawn(move || {
            // Spins forever; the step budget truncates the schedule.
            while s2.load(Ordering::SeqCst) == 0 {}
        });
        stop.store(1, Ordering::SeqCst);
        t.join().unwrap();
    });
}
