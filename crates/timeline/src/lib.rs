//! # epic-timeline
//!
//! The paper's **timeline graphs** (§3.1): "a highly efficient mechanism to
//! allow threads to record data (specifically two time stamps and a user
//! specified value) in memory to be printed to files at the end of an
//! experiment, with very little impact on performance."
//!
//! * [`Recorder`] — per-thread fixed-capacity event buffers; recording one
//!   event is two timestamps and a handful of plain stores (~40 ns), no
//!   atomics, no locks, no allocation after setup. When a buffer fills,
//!   further events are counted but dropped (the paper records up to
//!   100 000 events per thread without measurable impact).
//! * [`render`] — produces the figures: SVG timeline graphs (rows =
//!   threads, boxes = reclamation events, blue dots = epoch changes with a
//!   bottom projection row — the exact visual grammar of Figures 2–9) and
//!   ASCII timelines for terminal output.
//! * [`series`] — (x, y) series used by the "number of garbage nodes per
//!   epoch" lower panels of Figures 4 and 6–9, with CSV and sparkline
//!   output.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod event;
pub mod recorder;
pub mod render;
pub mod series;

pub use event::{Event, EventKind};
pub use recorder::Recorder;
pub use render::{
    event_stats, render_ascii, render_svg, visible_events, EventStats, RenderOptions,
};
pub use series::Series;
