//! (x, y) series: the "number of garbage nodes in each epoch" panels.
//!
//! Figures 4 and 6–9 plot, per epoch, the total unreclaimed garbage across
//! all threads' limbo bags at epoch entry. SMR schemes append points here;
//! the harness renders CSV and a terminal sparkline.

use parking_lot::Mutex;

/// A named, append-only (x, y) series.
#[derive(Debug, Default)]
pub struct Series {
    name: String,
    points: Mutex<Vec<(f64, f64)>>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Mutex::new(Vec::new()),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point (thread-safe; called from whichever thread advances
    /// the epoch).
    pub fn push(&self, x: f64, y: f64) {
        self.points.lock().push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.lock().len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.lock().is_empty()
    }

    /// A sorted-by-x copy of the points.
    pub fn sorted_points(&self) -> Vec<(f64, f64)> {
        let mut pts = self.points.lock().clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        pts
    }

    /// Largest y value (0 if empty).
    pub fn max_y(&self) -> f64 {
        self.points.lock().iter().map(|p| p.1).fold(0.0, f64::max)
    }

    /// Mean y value (0 if empty).
    pub fn mean_y(&self) -> f64 {
        let pts = self.points.lock();
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().map(|p| p.1).sum::<f64>() / pts.len() as f64
    }

    /// Number of *peaks*: points strictly greater than both neighbours.
    /// The paper's Fig. 4 observation is that amortized freeing
    /// "substantially reduces the number of peaks".
    pub fn peak_count(&self) -> usize {
        let pts = self.sorted_points();
        pts.windows(3)
            .filter(|w| w[1].1 > w[0].1 && w[1].1 > w[2].1)
            .count()
    }

    /// The y values in x order — the shape the structured-result layer
    /// stores for monotonicity / crossover oracles.
    pub fn sorted_ys(&self) -> Vec<f64> {
        self.sorted_points().into_iter().map(|p| p.1).collect()
    }

    /// CSV with header `x,y`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y\n");
        for (x, y) in self.sorted_points() {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }

    /// A one-line unicode sparkline of y over sorted x, `width` buckets
    /// wide (mean-pooled).
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let pts = self.sorted_points();
        if pts.is_empty() || width == 0 {
            return String::new();
        }
        let max = self.max_y().max(1e-12);
        let mut out = String::with_capacity(width * 3);
        for b in 0..width {
            let lo = b * pts.len() / width;
            let hi = (((b + 1) * pts.len()) / width).max(lo + 1).min(pts.len());
            if lo >= pts.len() {
                break;
            }
            let mean: f64 = pts[lo..hi].iter().map(|p| p.1).sum::<f64>() / (hi - lo) as f64;
            let idx = ((mean / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            out.push(BARS[idx]);
        }
        out
    }

    /// Writes the CSV to a path, creating parent directories.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_stats() {
        let s = Series::new("garbage");
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        s.push(2.0, 20.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_y(), 30.0);
        assert!((s.mean_y() - 20.0).abs() < 1e-12);
        assert_eq!(s.name(), "garbage");
    }

    #[test]
    fn sorted_ys_follow_x_order() {
        let s = Series::new("y");
        s.push(2.0, 20.0);
        s.push(0.0, 10.0);
        s.push(1.0, 30.0);
        assert_eq!(s.sorted_ys(), vec![10.0, 30.0, 20.0]);
    }

    #[test]
    fn peaks_counted() {
        let s = Series::new("p");
        // y: 1, 5, 2, 8, 3 -> peaks at 5 and 8.
        for (i, y) in [1.0, 5.0, 2.0, 8.0, 3.0].into_iter().enumerate() {
            s.push(i as f64, y);
        }
        assert_eq!(s.peak_count(), 2);
    }

    #[test]
    fn sorted_by_x_regardless_of_insertion() {
        let s = Series::new("p");
        s.push(2.0, 20.0);
        s.push(0.0, 0.0);
        s.push(1.0, 10.0);
        let xs: Vec<f64> = s.sorted_points().iter().map(|p| p.0).collect();
        assert_eq!(xs, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn csv_format() {
        let s = Series::new("p");
        s.push(1.0, 2.5);
        assert_eq!(s.to_csv(), "x,y\n1,2.5\n");
    }

    #[test]
    fn sparkline_scales() {
        let s = Series::new("p");
        for i in 0..100 {
            s.push(i as f64, i as f64);
        }
        let line = s.sparkline(10);
        assert_eq!(line.chars().count(), 10);
        let first = line.chars().next().unwrap();
        let last = line.chars().last().unwrap();
        assert!(
            first < last,
            "monotone series should produce rising sparkline"
        );
    }

    #[test]
    fn empty_series_harmless() {
        let s = Series::new("e");
        assert!(s.is_empty());
        assert_eq!(s.sparkline(10), "");
        assert_eq!(s.peak_count(), 0);
        assert_eq!(s.mean_y(), 0.0);
    }

    #[test]
    fn concurrent_pushes() {
        use std::sync::Arc;
        let s = Arc::new(Series::new("c"));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..250 {
                        s.push((t * 250 + i) as f64, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 1000);
    }
}
