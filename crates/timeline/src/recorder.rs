//! The low-overhead per-thread event recorder.

use crate::event::{Event, EventKind};
use epic_util::{now_ns, TidSlots};
use std::sync::atomic::{AtomicBool, Ordering};

/// Default per-thread event capacity — the paper validated "up to 100,000
/// timeline events per thread" with no measurable overhead.
pub const DEFAULT_CAPACITY: usize = 100_000;

struct Buffer {
    events: Vec<Event>,
    dropped: u64,
}

/// Per-thread timeline recorder.
///
/// Recording is wait-free and allocation-free: a bounds check and a `Vec`
/// push into pre-reserved capacity. Disabled recorders cost one relaxed
/// load per call, so instrumentation can stay compiled-in.
///
/// ```
/// use epic_timeline::{Recorder, EventKind};
///
/// let rec = Recorder::new(2, 1024);
/// let t0 = epic_util::now_ns();
/// // ... do the work being measured ...
/// rec.record(0, EventKind::BatchFree, t0, epic_util::now_ns(), 128);
/// assert_eq!(rec.events(0).len(), 1);
/// ```
pub struct Recorder {
    buffers: TidSlots<Buffer>,
    enabled: AtomicBool,
}

impl Recorder {
    /// Creates a recorder for `max_threads` threads with `capacity` events
    /// each. All memory is reserved up front.
    pub fn new(max_threads: usize, capacity: usize) -> Self {
        Recorder {
            buffers: TidSlots::new_with(max_threads, |_| Buffer {
                events: Vec::with_capacity(capacity),
                dropped: 0,
            }),
            enabled: AtomicBool::new(true),
        }
    }

    /// A recorder that starts disabled (for throughput-only runs).
    pub fn disabled(max_threads: usize) -> Self {
        let r = Recorder::new(max_threads, 0);
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Number of thread slots.
    pub fn max_threads(&self) -> usize {
        self.buffers.len()
    }

    /// Globally enables/disables recording.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// True if recording is on.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records an interval event. Caller supplies both timestamps (from
    /// [`epic_util::now_ns`]) so the measured interval excludes recorder
    /// overhead.
    #[inline]
    pub fn record(&self, tid: usize, kind: EventKind, start_ns: u64, end_ns: u64, value: u64) {
        if !self.is_enabled() {
            return;
        }
        // SAFETY: tid-exclusivity is the workspace-wide contract.
        let buf = unsafe { self.buffers.get_mut(tid) };
        if buf.events.len() < buf.events.capacity() {
            buf.events.push(Event {
                start_ns,
                end_ns,
                kind: kind as u16,
                tid: tid as u16,
                value,
            });
        } else {
            buf.dropped += 1;
        }
    }

    /// Records an instant (start == end == now).
    #[inline]
    pub fn mark(&self, tid: usize, kind: EventKind, value: u64) {
        if !self.is_enabled() {
            return;
        }
        let t = now_ns();
        self.record(tid, kind, t, t, value);
    }

    /// The events recorded by `tid`.
    ///
    /// Callers must ensure the owning thread is quiescent (experiment
    /// teardown) — enforced by convention, as in the paper's harness.
    pub fn events(&self, tid: usize) -> &[Event] {
        // SAFETY: read-at-teardown convention; see docs.
        unsafe { &self.buffers.peek(tid).events }
    }

    /// Events dropped by `tid` due to a full buffer.
    pub fn dropped(&self, tid: usize) -> u64 {
        // SAFETY: read-at-teardown convention.
        unsafe { self.buffers.peek(tid).dropped }
    }

    /// All events from all threads, sorted by start time.
    pub fn all_events(&self) -> Vec<Event> {
        let mut all: Vec<Event> = (0..self.buffers.len())
            .flat_map(|tid| self.events(tid).iter().copied())
            .collect();
        all.sort_by_key(|e| e.start_ns);
        all
    }

    /// Clears all buffers (between trials).
    pub fn clear(&self) {
        for tid in 0..self.buffers.len() {
            // SAFETY: only called between trials when workers are quiescent.
            let buf = unsafe { self.buffers.get_mut(tid) };
            buf.events.clear();
            buf.dropped = 0;
        }
    }

    /// Serializes every event as CSV: `tid,kind,start_ns,end_ns,duration_ns,value`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tid,kind,start_ns,end_ns,duration_ns,value\n");
        for e in self.all_events() {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                e.tid,
                e.kind().label(),
                e.start_ns,
                e.end_ns,
                e.duration_ns(),
                e.value
            ));
        }
        out
    }

    /// Writes the CSV to a file path, creating parent directories.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let r = Recorder::new(2, 16);
        r.record(0, EventKind::BatchFree, 10, 50, 7);
        r.record(1, EventKind::EpochAdvance, 20, 20, 1);
        assert_eq!(r.events(0).len(), 1);
        let e = r.events(0)[0];
        assert_eq!(e.duration_ns(), 40);
        assert_eq!(e.value, 7);
        assert_eq!(e.tid, 0);
        assert_eq!(r.events(1)[0].kind(), EventKind::EpochAdvance);
    }

    #[test]
    fn capacity_overflow_drops_not_grows() {
        let r = Recorder::new(1, 4);
        for i in 0..10 {
            r.record(0, EventKind::FreeCall, i, i + 1, 0);
        }
        assert_eq!(r.events(0).len(), 4);
        assert_eq!(r.dropped(0), 6);
    }

    #[test]
    fn disabled_recorder_ignores() {
        let r = Recorder::disabled(1);
        r.record(0, EventKind::FreeCall, 0, 1, 0);
        r.mark(0, EventKind::EpochAdvance, 0);
        assert!(r.events(0).is_empty());
        assert_eq!(r.dropped(0), 0);
    }

    #[test]
    fn all_events_sorted_across_threads() {
        let r = Recorder::new(3, 8);
        r.record(2, EventKind::FreeCall, 30, 31, 0);
        r.record(0, EventKind::FreeCall, 10, 11, 0);
        r.record(1, EventKind::FreeCall, 20, 21, 0);
        let starts: Vec<u64> = r.all_events().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![10, 20, 30]);
    }

    #[test]
    fn csv_shape() {
        let r = Recorder::new(1, 4);
        r.record(0, EventKind::BatchFree, 5, 9, 3);
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "tid,kind,start_ns,end_ns,duration_ns,value"
        );
        assert_eq!(lines.next().unwrap(), "0,batch_free,5,9,4,3");
    }

    #[test]
    fn clear_resets() {
        let r = Recorder::new(1, 2);
        r.record(0, EventKind::FreeCall, 0, 1, 0);
        r.record(0, EventKind::FreeCall, 0, 1, 0);
        r.record(0, EventKind::FreeCall, 0, 1, 0);
        assert_eq!(r.dropped(0), 1);
        r.clear();
        assert!(r.events(0).is_empty());
        assert_eq!(r.dropped(0), 0);
    }

    #[test]
    fn concurrent_recording_from_owner_threads() {
        use std::sync::Arc;
        let r = Arc::new(Recorder::new(4, 1000));
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        r.record(tid, EventKind::FreeCall, i, i + 1, i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for tid in 0..4 {
            assert_eq!(r.events(tid).len(), 1000);
        }
        assert_eq!(r.all_events().len(), 4000);
    }
}
