//! Timeline events: two timestamps, a kind, and a user value.

/// What a recorded interval (or instant) represents. Encoded as `u16` in
/// the event so the hot recording path stays branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// Time spent freeing a whole batch of nodes (the boxes of Fig. 2 and
    /// the upper panels of Figs. 6–9). `value` = number of objects freed.
    BatchFree = 0,
    /// One individual `free` call (Fig. 3, Fig. 17). `value` = block addr
    /// low bits (diagnostic only).
    FreeCall = 1,
    /// The thread advanced the global epoch / passed the token (the blue
    /// dots). Instant: start == end. `value` = new epoch number.
    EpochAdvance = 2,
    /// The thread received the token (Token-EBR). `value` = epoch.
    TokenReceive = 3,
    /// A reader was neutralized and restarted (NBR). `value` = restart
    /// count.
    Neutralize = 4,
    /// A data-structure operation interval (used by op-latency debugging).
    Operation = 5,
    /// Free-form user event.
    Custom = 6,
}

impl EventKind {
    /// Decodes the `u16` representation (inverse of `as u16`).
    pub fn from_u16(raw: u16) -> EventKind {
        match raw {
            0 => EventKind::BatchFree,
            1 => EventKind::FreeCall,
            2 => EventKind::EpochAdvance,
            3 => EventKind::TokenReceive,
            4 => EventKind::Neutralize,
            5 => EventKind::Operation,
            _ => EventKind::Custom,
        }
    }

    /// Short label used in CSV headers and SVG tooltips.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::BatchFree => "batch_free",
            EventKind::FreeCall => "free_call",
            EventKind::EpochAdvance => "epoch_advance",
            EventKind::TokenReceive => "token_receive",
            EventKind::Neutralize => "neutralize",
            EventKind::Operation => "operation",
            EventKind::Custom => "custom",
        }
    }

    /// True for zero-duration marker events rendered as dots.
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            EventKind::EpochAdvance | EventKind::TokenReceive | EventKind::Neutralize
        )
    }
}

/// One recorded event: `[start_ns, end_ns]` on the shared process clock,
/// a kind, and a user value. 32 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Interval start (shared-origin nanoseconds).
    pub start_ns: u64,
    /// Interval end; equals `start_ns` for instants.
    pub end_ns: u64,
    /// Event kind (see [`EventKind`]).
    pub kind: u16,
    /// Recording thread (filled by the recorder).
    pub tid: u16,
    /// User value (e.g. batch size, epoch number).
    pub value: u64,
}

impl Event {
    /// Interval length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Decoded kind.
    pub fn kind(&self) -> EventKind {
        EventKind::from_u16(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for k in [
            EventKind::BatchFree,
            EventKind::FreeCall,
            EventKind::EpochAdvance,
            EventKind::TokenReceive,
            EventKind::Neutralize,
            EventKind::Operation,
            EventKind::Custom,
        ] {
            assert_eq!(EventKind::from_u16(k as u16), k);
        }
        assert_eq!(EventKind::from_u16(999), EventKind::Custom);
    }

    #[test]
    fn instants_are_marked() {
        assert!(EventKind::EpochAdvance.is_instant());
        assert!(!EventKind::BatchFree.is_instant());
    }

    #[test]
    fn event_is_32_bytes() {
        assert_eq!(std::mem::size_of::<Event>(), 32);
    }

    #[test]
    fn duration_saturates() {
        let e = Event {
            start_ns: 100,
            end_ns: 50,
            kind: 0,
            tid: 0,
            value: 0,
        };
        assert_eq!(e.duration_ns(), 0);
    }
}
