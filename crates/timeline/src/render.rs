//! Rendering timeline graphs.
//!
//! Reproduces the visual grammar of the paper's Figures 2–3 and 6–9:
//! rows are threads, the x-axis is time, coloured boxes are interval events
//! (alternating palette "to make it easier to differentiate neighbouring
//! events"), blue dots are epoch changes, and every blue dot is also
//! projected onto a bottom strip "to give a visual indication of how often
//! the epoch changes overall".

use crate::event::{Event, EventKind};
use crate::recorder::Recorder;

/// Options controlling both renderers.
#[derive(Debug, Clone)]
pub struct RenderOptions {
    /// Only render this many thread rows (the paper shows 20 of 192).
    pub max_rows: usize,
    /// Clip to `[t0_ns, t1_ns)` on the shared clock; `None` = full range.
    pub window_ns: Option<(u64, u64)>,
    /// Drop interval events shorter than this (Fig. 9 shows only calls
    /// longer than 0.1 ms).
    pub min_duration_ns: u64,
    /// Width of the drawing area in pixels (SVG) or columns (ASCII).
    pub width: usize,
    /// Height of one thread row in pixels (SVG only).
    pub row_height: usize,
    /// Chart title.
    pub title: String,
}

impl Default for RenderOptions {
    fn default() -> Self {
        RenderOptions {
            max_rows: 20,
            window_ns: None,
            min_duration_ns: 0,
            width: 1000,
            row_height: 14,
            title: String::new(),
        }
    }
}

/// Alternating box palette (the paper colours neighbouring events
/// differently).
const PALETTE: [&str; 4] = ["#e6550d", "#31a354", "#756bb1", "#636363"];
/// Epoch-advance dot colour ("blue dots").
const DOT_COLOR: &str = "#1f77b4";

struct Prepared {
    rows: Vec<Vec<Event>>, // interval events per rendered thread row
    dots: Vec<Event>,      // instant events (all threads, for projection)
    t0: u64,
    t1: u64,
}

fn prepare(rec: &Recorder, opts: &RenderOptions) -> Prepared {
    let all = rec.all_events();
    let (t0, mut t1) = opts.window_ns.unwrap_or_else(|| {
        let lo = all.iter().map(|e| e.start_ns).min().unwrap_or(0);
        let hi = all.iter().map(|e| e.end_ns).max().unwrap_or(1);
        (lo, hi)
    });
    if t1 <= t0 {
        t1 = t0 + 1;
    }
    let nrows = rec.max_threads().min(opts.max_rows);
    let mut rows: Vec<Vec<Event>> = vec![Vec::new(); nrows];
    let mut dots = Vec::new();
    for e in all {
        let visible = e.end_ns > t0 && e.start_ns < t1;
        if !visible {
            continue;
        }
        if e.kind().is_instant() {
            dots.push(e);
        } else if e.duration_ns() >= opts.min_duration_ns {
            if let Some(row) = rows.get_mut(e.tid as usize) {
                row.push(e);
            }
        }
    }
    Prepared { rows, dots, t0, t1 }
}

/// Renders an SVG timeline graph (string; no external dependencies).
pub fn render_svg(rec: &Recorder, opts: &RenderOptions) -> String {
    let p = prepare(rec, opts);
    let span = (p.t1 - p.t0) as f64;
    let w = opts.width as f64;
    let rh = opts.row_height;
    let margin_left = 46;
    let title_h = if opts.title.is_empty() { 0 } else { 18 };
    let proj_h = 10; // bottom projection strip
    let height = title_h + p.rows.len() * rh + proj_h + 24;
    let x_of = |ns: u64| margin_left as f64 + (ns.saturating_sub(p.t0)) as f64 / span * w;

    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" font-family=\"sans-serif\" font-size=\"10\">\n",
        margin_left + opts.width + 10,
        height
    ));
    svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    if !opts.title.is_empty() {
        svg.push_str(&format!(
            "<text x=\"{}\" y=\"13\" font-size=\"12\">{}</text>\n",
            margin_left,
            xml_escape(&opts.title)
        ));
    }
    // Thread rows with boxes.
    for (row_idx, events) in p.rows.iter().enumerate() {
        let y = title_h + row_idx * rh;
        svg.push_str(&format!(
            "<text x=\"2\" y=\"{}\" fill=\"#444\">T{}</text>\n",
            y + rh - 3,
            row_idx
        ));
        for (i, e) in events.iter().enumerate() {
            let x = x_of(e.start_ns.max(p.t0));
            let xe = x_of(e.end_ns.min(p.t1));
            let bw = (xe - x).max(0.5);
            let color = PALETTE[i % PALETTE.len()];
            svg.push_str(&format!(
                "<rect x=\"{x:.2}\" y=\"{}\" width=\"{bw:.2}\" height=\"{}\" fill=\"{color}\"><title>{}: {} ns, value {}</title></rect>\n",
                y + 1,
                rh - 2,
                e.kind().label(),
                e.duration_ns(),
                e.value
            ));
        }
    }
    // Blue dots on their rows plus the projection strip.
    let proj_y = title_h + p.rows.len() * rh + 4;
    for e in &p.dots {
        let x = x_of(e.start_ns);
        if (e.tid as usize) < p.rows.len() {
            let y = title_h + e.tid as usize * rh + rh / 2;
            svg.push_str(&format!(
                "<circle cx=\"{x:.2}\" cy=\"{y}\" r=\"2\" fill=\"{DOT_COLOR}\"/>\n"
            ));
        }
        svg.push_str(&format!(
            "<circle cx=\"{x:.2}\" cy=\"{}\" r=\"1.5\" fill=\"{DOT_COLOR}\"/>\n",
            proj_y + 3
        ));
    }
    // Time axis label.
    svg.push_str(&format!(
        "<text x=\"{}\" y=\"{}\" fill=\"#444\">{:.1} ms window</text>\n",
        margin_left,
        height - 6,
        span / 1e6
    ));
    svg.push_str("</svg>\n");
    svg
}

/// Renders an ASCII timeline: one line per thread, `#` where an interval
/// event covers the bucket, `.` where idle; a bottom `^` projection line
/// marks epoch advances.
pub fn render_ascii(rec: &Recorder, opts: &RenderOptions) -> String {
    let p = prepare(rec, opts);
    let span = (p.t1 - p.t0) as f64;
    let cols = opts.width.clamp(10, 400);
    let col_of = |ns: u64| {
        (((ns.saturating_sub(p.t0)) as f64 / span) * cols as f64)
            .floor()
            .min(cols as f64 - 1.0) as usize
    };

    let mut out = String::new();
    if !opts.title.is_empty() {
        out.push_str(&opts.title);
        out.push('\n');
    }
    for (row_idx, events) in p.rows.iter().enumerate() {
        let mut line = vec![b'.'; cols];
        for e in events {
            let c0 = col_of(e.start_ns.max(p.t0));
            let c1 = col_of(e.end_ns.min(p.t1).max(e.start_ns));
            for cell in &mut line[c0..=c1] {
                *cell = b'#';
            }
        }
        // Overlay dots for this row.
        for d in p.dots.iter().filter(|d| d.tid as usize == row_idx) {
            line[col_of(d.start_ns)] = b'o';
        }
        out.push_str(&format!("T{row_idx:>3} |"));
        out.push_str(std::str::from_utf8(&line).expect("ascii"));
        out.push('\n');
    }
    // Projection strip.
    let mut strip = vec![b' '; cols];
    for d in &p.dots {
        strip[col_of(d.start_ns)] = b'^';
    }
    out.push_str("epoch|");
    out.push_str(std::str::from_utf8(&strip).expect("ascii"));
    out.push('\n');
    out.push_str(&format!("      window = {:.3} ms\n", span / 1e6));
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Filters a recorder's events to those of one kind with duration ≥
/// `min_ns` — the Appendix F "visible free calls" analysis (Fig. 17).
pub fn visible_events(rec: &Recorder, kind: EventKind, min_ns: u64) -> Vec<Event> {
    rec.all_events()
        .into_iter()
        .filter(|e| e.kind() == kind && e.duration_ns() >= min_ns)
        .collect()
}

/// Aggregate duration statistics for one event kind — what a rendered
/// timeline *shows* (how many boxes, how long), captured as numbers so the
/// oracle layer can assert on it instead of a human eyeballing the SVG.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventStats {
    /// Number of matching events.
    pub count: usize,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Mean duration (ns; 0 if no events).
    pub mean_ns: u64,
    /// Longest single event (ns).
    pub max_ns: u64,
}

/// Computes [`EventStats`] over one kind of event with duration ≥ `min_ns`.
pub fn event_stats(rec: &Recorder, kind: EventKind, min_ns: u64) -> EventStats {
    let events = visible_events(rec, kind, min_ns);
    let total_ns: u64 = events.iter().map(|e| e.duration_ns()).sum();
    let max_ns = events.iter().map(|e| e.duration_ns()).max().unwrap_or(0);
    EventStats {
        count: events.len(),
        total_ns,
        mean_ns: if events.is_empty() {
            0
        } else {
            total_ns / events.len() as u64
        },
        max_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_stats_aggregates_durations() {
        let r = sample_recorder();
        // BatchFree durations: 4000, 1000, 7000.
        let all = event_stats(&r, EventKind::BatchFree, 0);
        assert_eq!(all.count, 3);
        assert_eq!(all.total_ns, 12_000);
        assert_eq!(all.mean_ns, 4_000);
        assert_eq!(all.max_ns, 7_000);
        // Threshold filters the 1000 ns event.
        let long = event_stats(&r, EventKind::BatchFree, 2_000);
        assert_eq!(long.count, 2);
        assert_eq!(long.total_ns, 11_000);
        // No FreeCall events that long.
        let none = event_stats(&r, EventKind::FreeCall, 1_000_000);
        assert_eq!(none, EventStats::default());
    }

    fn sample_recorder() -> Recorder {
        let r = Recorder::new(3, 64);
        r.record(0, EventKind::BatchFree, 1_000, 5_000, 10);
        r.record(0, EventKind::BatchFree, 6_000, 7_000, 3);
        r.record(1, EventKind::BatchFree, 2_000, 9_000, 20);
        r.record(2, EventKind::FreeCall, 4_000, 4_100, 0);
        r.record(0, EventKind::EpochAdvance, 5_500, 5_500, 1);
        r.record(1, EventKind::EpochAdvance, 8_000, 8_000, 2);
        r
    }

    #[test]
    fn svg_contains_rows_boxes_and_dots() {
        let r = sample_recorder();
        let svg = render_svg(
            &r,
            &RenderOptions {
                title: "test".into(),
                ..Default::default()
            },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("</svg>"));
        assert!(
            svg.matches("<rect").count() >= 4,
            "expect boxes plus background"
        );
        // 2 dots x (row + projection) = 4 circles.
        assert_eq!(svg.matches("<circle").count(), 4);
        assert!(svg.contains(">T0<") && svg.contains(">T2<"));
        assert!(svg.contains("test"));
    }

    #[test]
    fn ascii_marks_busy_and_epochs() {
        let r = sample_recorder();
        let art = render_ascii(
            &r,
            &RenderOptions {
                width: 40,
                ..Default::default()
            },
        );
        assert!(art.contains('#'), "busy cells");
        assert!(art.contains('^'), "projection strip");
        assert!(art.lines().count() >= 5, "3 rows + strip + footer");
    }

    #[test]
    fn window_clips_events() {
        let r = sample_recorder();
        let opts = RenderOptions {
            window_ns: Some((6_500, 9_500)),
            width: 40,
            ..Default::default()
        };
        let art = render_ascii(&r, &opts);
        // Thread 0's 1k-5k batch is outside the window; T0's row shows only
        // the tail of its 6-7k event.
        let t0_line = art.lines().find(|l| l.starts_with("T  0")).unwrap();
        assert!(t0_line.contains('#'));
        let svg = render_svg(&r, &opts);
        assert!(svg.contains("3.0 ms window") || svg.contains("0.0 ms window"));
    }

    #[test]
    fn min_duration_filters_short_events() {
        let r = sample_recorder();
        let opts = RenderOptions {
            min_duration_ns: 2_000,
            width: 40,
            ..Default::default()
        };
        let art = render_ascii(&r, &opts);
        let t2_line = art.lines().find(|l| l.starts_with("T  2")).unwrap();
        assert!(
            !t2_line.contains('#'),
            "100ns free call must be filtered: {t2_line}"
        );
    }

    #[test]
    fn visible_events_filter() {
        let r = sample_recorder();
        let vis = visible_events(&r, EventKind::BatchFree, 3_000);
        assert_eq!(vis.len(), 2, "4000ns and 7000ns batches");
        assert!(visible_events(&r, EventKind::FreeCall, 1_000).is_empty());
    }

    #[test]
    fn empty_recorder_renders_without_panic() {
        let r = Recorder::new(2, 4);
        let svg = render_svg(&r, &RenderOptions::default());
        assert!(svg.contains("</svg>"));
        let art = render_ascii(&r, &RenderOptions::default());
        assert!(art.contains("epoch|"));
    }

    #[test]
    fn xml_escaping() {
        assert_eq!(xml_escape("a<b&c>d"), "a&lt;b&amp;c&gt;d");
    }
}
