//! Retire-pipeline ownership stress: the intrusive limbo lists thread
//! retired blocks through their own headers, so the failure modes to rule
//! out are a block linked onto two lists (freed twice), a splice dropping
//! a chain suffix (lost retirement), and header corruption while a block
//! sits in limbo.
//!
//! An accounting wrapper around the allocator checks every transition
//! against a ledger: each block must alternate alloc → free (per-block
//! free-count exactly 1 per lifetime) and must come back for freeing with
//! the same header class it was allocated with. Multi-threaded churn with
//! tiny bags forces constant rotation, scanning, and cross-epoch splicing
//! through every disposal mode; at quiescence the ledger must balance to
//! zero live blocks with nothing lost.

use epic_alloc::{
    build_allocator, AllocSnapshot, AllocatorKind, BlockHeader, CostModel, PoolAllocator,
    ThreadAllocStats, Tid,
};
use epic_smr::{build_smr, FreeMode, SmrConfig, SmrKind};

use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::{Arc, Mutex};

/// Per-block ledger entry: liveness plus the header class observed at
/// allocation time.
struct Entry {
    live: bool,
    class: u32,
    frees: u64,
}

/// Allocator wrapper asserting alloc/free alternation per block address.
struct AccountingAlloc {
    inner: Arc<dyn PoolAllocator>,
    ledger: Mutex<HashMap<usize, Entry>>,
}

impl AccountingAlloc {
    fn new(inner: Arc<dyn PoolAllocator>) -> Self {
        AccountingAlloc {
            inner,
            ledger: Mutex::new(HashMap::new()),
        }
    }

    /// Verifies the ledger at quiescence: nothing still live, and every
    /// block address that was ever handed out came back at least once.
    /// (The per-lifetime "freed exactly once" half of the contract is
    /// enforced eagerly inside [`dealloc`](PoolAllocator::dealloc) via the
    /// `live` assertion.)
    fn assert_balanced(&self) {
        let ledger = self.ledger.lock().unwrap();
        let live = ledger.values().filter(|e| e.live).count();
        assert_eq!(live, 0, "blocks leaked past quiesce_and_drain");
        assert!(
            ledger.values().all(|e| e.frees >= 1),
            "a block was allocated but never came back for freeing"
        );
    }
}

impl PoolAllocator for AccountingAlloc {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let p = self.inner.alloc(tid, size);
        // SAFETY: fresh block from the inner pool allocator.
        let class = unsafe { BlockHeader::from_user(p) }.class;
        let mut ledger = self.ledger.lock().unwrap();
        let entry = ledger.entry(p.as_ptr() as usize).or_insert(Entry {
            live: false,
            class,
            frees: 0,
        });
        assert!(
            !entry.live,
            "allocator handed out a block still accounted live (double handout)"
        );
        // A freed address may legally reincarnate as a different class;
        // the class must only stay stable *within* a lifetime.
        entry.class = class;
        entry.live = true;
        p
    }

    fn dealloc(&self, tid: Tid, ptr: NonNull<u8>) {
        // SAFETY: the caller's contract says this block came from `alloc`.
        let class = unsafe { BlockHeader::from_user(ptr) }.class;
        {
            let mut ledger = self.ledger.lock().unwrap();
            let entry = ledger
                .get_mut(&(ptr.as_ptr() as usize))
                .expect("freeing a block this allocator never handed out");
            assert!(
                entry.live,
                "double free: block reached dealloc twice in one lifetime \
                 (an intrusive list linked it onto two chains)"
            );
            assert_eq!(
                entry.class, class,
                "header class clobbered while the block sat in limbo"
            );
            entry.live = false;
            entry.frees += 1;
        }
        self.inner.dealloc(tid, ptr);
    }

    fn snapshot(&self) -> AllocSnapshot {
        self.inner.snapshot()
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.inner.thread_stats(tid)
    }

    fn peak_bytes(&self) -> usize {
        self.inner.peak_bytes()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

/// Multi-threaded churn through one scheme/mode pair, with every retired
/// block's lifetime audited.
fn stress(kind: SmrKind, mode: FreeMode, threads: usize, ops_per_thread: usize) {
    let inner = build_allocator(AllocatorKind::Sys, threads, CostModel::zero());
    let accounting = Arc::new(AccountingAlloc::new(Arc::clone(&inner)));
    let alloc: Arc<dyn PoolAllocator> = Arc::clone(&accounting) as Arc<dyn PoolAllocator>;
    // Tiny bags: rotation, scans and cross-epoch splices fire constantly.
    let mut cfg = SmrConfig::new(threads).with_mode(mode).with_bag_cap(16);
    cfg.epoch_check_every = 2;
    cfg.era_freq = 4;
    cfg.af_backlog_cap = 64;
    let smr = build_smr(kind, Arc::clone(&alloc), cfg);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let smr = smr.clone();
            scope.spawn(move || {
                let handle = smr.register(tid);
                for i in 0..ops_per_thread {
                    let guard = handle.begin_op();
                    let _ = guard.poll_restart();
                    let size = 32 + (i % 3) * 64; // three size classes in flight
                    let p = guard.alloc(size); // pool-alloc + on_alloc fused
                    guard.enter_write_phase(&[p.as_ptr() as usize]);
                    guard.retire(p);
                }
                handle.detach();
            });
        }
    });
    smr.quiesce_and_drain();

    let s = smr.stats();
    let expected = (threads * ops_per_thread) as u64;
    assert_eq!(s.retired, expected, "{kind:?} {mode:?}: retire undercount");
    assert_eq!(
        s.freed, expected,
        "{kind:?} {mode:?}: lost retirement (retired != freed at quiescence)"
    );
    assert_eq!(s.garbage, 0, "{kind:?} {mode:?}: garbage gauge unbalanced");
    // Balanced accounting never drives the gauge negative; a clamp here
    // means a double free or double count slipped through.
    debug_assert_eq!(
        s.garbage_clamps, 0,
        "{kind:?} {mode:?}: garbage gauge clamped (double-count bug)"
    );

    // The ledger has the ground truth: every lifetime freed exactly once.
    accounting.assert_balanced();

    // Scan scratch must be recycled, not re-allocated per scan: the
    // counted retire-path allocations stay a small per-thread constant
    // even though scans/rotations number in the thousands.
    assert!(
        s.retire_path_allocs <= (threads as u64) * 4,
        "{kind:?} {mode:?}: segment pool failed to recycle \
         ({} retire-path allocations)",
        s.retire_path_allocs
    );
}

#[test]
fn epoch_family_never_double_frees_or_loses_blocks() {
    for kind in [SmrKind::Debra, SmrKind::Qsbr, SmrKind::Rcu] {
        for mode in [FreeMode::Batch, FreeMode::amortized(), FreeMode::Adaptive] {
            stress(kind, mode, 4, 2_000);
        }
    }
}

#[test]
fn token_ring_never_double_frees_or_loses_blocks() {
    for mode in [
        FreeMode::Batch,
        FreeMode::amortized(),
        FreeMode::Pooled,
        FreeMode::Adaptive,
    ] {
        stress(SmrKind::TokenPeriodic, mode, 4, 2_000);
    }
}

#[test]
fn scan_family_never_double_frees_or_loses_blocks() {
    for kind in [
        SmrKind::Hp,
        SmrKind::He,
        SmrKind::Ibr,
        SmrKind::Wfe,
        SmrKind::Nbr,
        SmrKind::NbrPlus,
    ] {
        stress(kind, FreeMode::Batch, 4, 1_500);
        stress(kind, FreeMode::amortized(), 4, 1_500);
        stress(kind, FreeMode::Adaptive, 4, 1_500);
    }
}
