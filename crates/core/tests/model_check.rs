//! Model-checked concurrency tests for the SmrHandle/limbo-bag core.
//!
//! Only compiled under `RUSTFLAGS="--cfg epic_model_check"`, where
//! `epic_smr::sync` resolves to epic-check's instrumented atomics: every
//! atomic access in the retire/drain hot paths becomes a scheduler step,
//! interleaved (with TSO store-buffer weakness) by a seed-deterministic
//! chooser. Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg epic_model_check" cargo test -p epic-smr --test model_check
//! ```
//!
//! Reproduce any reported failure byte-identically by prepending
//! `EPIC_CHECK_SEED=<printed seed>`.
//!
//! Each model comes in two flavors:
//! * a *clean* run asserting the real protocols survive every explored
//!   schedule (no false positives), and
//! * *mutant-kill* runs asserting that a deliberately broken protocol
//!   variant (see `epic_smr::mutants`) is caught within the schedule
//!   budget — the evidence that the checker can actually see the bugs
//!   these protocols exist to prevent.

#![cfg(epic_model_check)]

use std::collections::HashSet;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Mutex};

use epic_alloc::{
    build_allocator, AllocSnapshot, AllocatorKind, CostModel, PoolAllocator, ThreadAllocStats, Tid,
};
use epic_check::{check, explore, thread, yield_now, Config, Outcome};
use epic_smr::mutants::{
    M_HP_PUBLISH_RELAXED, M_IBR_BUMP_RELAXED, M_QSBR_DETACH_SKIP, M_SPLICE_KEEP_SOURCE,
};
use epic_smr::sync::{AtomicUsize, Ordering};
use epic_smr::{build_smr, Smr, SmrConfig, SmrKind};

// ---------------------------------------------------------------------
// TrackingAlloc: the model oracle.
//
// Wraps the Sys passthrough model and enforces exactly-once freeing: a
// double free panics (failing the schedule) instead of corrupting the
// heap. Freed blocks are NOT returned to the system until the tracker
// drops, so even a buggy (mutant) schedule that traverses an
// already-freed intrusive chain reads stable memory — the checker
// reports the double free as a model failure, never as a crash.
//
// Lock discipline: the live-set Mutex is a real std mutex, which is
// safe under the cooperative scheduler only because no instrumented
// atomic is ever touched while it is held (the holder cannot yield, so
// the lock is never contended).
// ---------------------------------------------------------------------
struct TrackingAlloc {
    inner: Arc<dyn PoolAllocator>,
    live: Mutex<HashSet<usize>>,
    ever: Mutex<Vec<usize>>,
    freed: StdAtomicUsize,
    allocs: StdAtomicUsize,
}

impl TrackingAlloc {
    fn new(max_threads: usize) -> Arc<TrackingAlloc> {
        Arc::new(TrackingAlloc {
            inner: build_allocator(AllocatorKind::Sys, max_threads, CostModel::zero()),
            live: Mutex::new(HashSet::new()),
            ever: Mutex::new(Vec::new()),
            freed: StdAtomicUsize::new(0),
            allocs: StdAtomicUsize::new(0),
        })
    }

    fn is_live(&self, addr: usize) -> bool {
        self.live.lock().unwrap().contains(&addr)
    }

    fn live_count(&self) -> usize {
        self.live.lock().unwrap().len()
    }

    fn freed_count(&self) -> usize {
        self.freed.load(StdOrdering::SeqCst)
    }

    fn alloc_count(&self) -> usize {
        self.allocs.load(StdOrdering::SeqCst)
    }
}

impl PoolAllocator for TrackingAlloc {
    fn alloc(&self, tid: Tid, size: usize) -> NonNull<u8> {
        let p = self.inner.alloc(tid, size);
        let addr = p.as_ptr() as usize;
        let mut live = self.live.lock().unwrap();
        assert!(live.insert(addr), "allocator handed out a live block");
        drop(live);
        self.ever.lock().unwrap().push(addr);
        self.allocs.fetch_add(1, StdOrdering::SeqCst);
        p
    }

    fn dealloc(&self, _tid: Tid, ptr: NonNull<u8>) {
        // Drain this thread's store buffer first: pending buffered
        // stores into the block's header must not write through after
        // the block is (logically) dead.
        epic_check::flush_self();
        let addr = ptr.as_ptr() as usize;
        // No address in the message: raw pointers are ASLR-noise and
        // would break byte-identical replay comparison. The schedule
        // trace names the block by its stable `a#k` id.
        let removed = self.live.lock().unwrap().remove(&addr);
        assert!(removed, "double free of a retired block");
        self.freed.fetch_add(1, StdOrdering::SeqCst);
        // The real dealloc is deferred to Drop (see struct docs).
    }

    fn snapshot(&self) -> AllocSnapshot {
        self.inner.snapshot()
    }

    fn thread_stats(&self, tid: Tid) -> ThreadAllocStats {
        self.inner.thread_stats(tid)
    }

    fn peak_bytes(&self) -> usize {
        self.inner.peak_bytes()
    }

    fn name(&self) -> &'static str {
        "tracking-sys"
    }

    fn reset_stats(&self) {
        self.inner.reset_stats();
    }
}

impl Drop for TrackingAlloc {
    fn drop(&mut self) {
        for addr in self.ever.lock().unwrap().drain(..) {
            // SAFETY: every address came from `inner.alloc` and is
            // released exactly once, here.
            self.inner
                .dealloc(0, NonNull::new(addr as *mut u8).unwrap());
        }
    }
}

fn smr_with(kind: SmrKind, alloc: Arc<TrackingAlloc>, cfg: SmrConfig) -> Smr {
    build_smr(kind, alloc as Arc<dyn PoolAllocator>, cfg)
}

// ---------------------------------------------------------------------
// Model 1: limbo-bag splice/drain, free-count==1 oracle.
//
// qsbr + amortized freeing drives the full splice pipeline: retire into
// epoch bags -> bag rotation disposes into the FreeBuffer (the
// RetiredList::append splice) -> alloc-coupled drain + teardown drain.
// The M_SPLICE_KEEP_SOURCE mutant leaves the spliced chain owned by
// both lists; teardown then frees it twice — deterministically, in
// every schedule, so the mutant dies on the first iteration.
// ---------------------------------------------------------------------
fn splice_drain_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_amortized(1);
    cfg.epoch_check_every = 1;
    let s = smr_with(SmrKind::Qsbr, alloc.clone(), cfg);

    let workers: Vec<_> = (0..2)
        .map(|tid| {
            let s = s.clone();
            thread::spawn(move || {
                let h = s.register(tid);
                for _ in 0..4 {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    s.quiesce_and_drain();
    assert_eq!(
        alloc.freed_count(),
        alloc.alloc_count(),
        "every retired block freed exactly once"
    );
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn splice_drain_clean_passes() {
    check(Config::random(300).with_seed(0xba61), splice_drain_model);
}

#[test]
fn splice_keep_source_mutant_is_killed() {
    let out = explore(
        Config::random(5)
            .with_seed(0xba62)
            .with_ctx(M_SPLICE_KEEP_SOURCE),
        splice_drain_model,
    );
    match out {
        Outcome::Fail(f) => {
            assert!(
                f.message.contains("double free"),
                "unexpected failure: {}",
                f.message
            )
        }
        Outcome::Pass { .. } => panic!("splice mutant survived the checker"),
    }
}

// ---------------------------------------------------------------------
// Model 2: SmrHandle register/detach churn racing retires (hp).
//
// One thread repeatedly registers, retires and detaches tid 0 while the
// other holds tid 1 and keeps retiring. Oracles: registration never
// spuriously panics, and teardown frees everything exactly once.
// ---------------------------------------------------------------------
fn churn_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_bag_cap(4);
    cfg.hp_slots = 1;
    let s = smr_with(SmrKind::Hp, alloc.clone(), cfg);

    let churner = {
        let s = s.clone();
        thread::spawn(move || {
            for _ in 0..3 {
                let h = s.register(0);
                {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            }
        })
    };
    let retirer = {
        let s = s.clone();
        thread::spawn(move || {
            let h = s.register(1);
            for _ in 0..4 {
                let g = h.begin_op();
                let p = g.alloc(64);
                g.retire(p);
            }
            h.detach();
        })
    };
    churner.join().unwrap();
    retirer.join().unwrap();
    s.quiesce_and_drain();
    assert_eq!(
        alloc.freed_count(),
        7,
        "3 churner + 4 retirer blocks, each freed once"
    );
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn register_detach_churn_clean_passes() {
    check(Config::random(300).with_seed(0xc4a1), churn_model);
}

// ---------------------------------------------------------------------
// Model 3: OpGuard protect_load vs concurrent retire (hp and ibr).
//
// The reader protects a victim through a shared link while the
// reclaimer unlinks and retires it plus enough filler to force a scan.
// The liveness oracle: after a successful protect_load, the victim must
// still be allocated. Clean protocols pass every schedule; the
// Relaxed-publication mutants leave the protection in the reader's
// store buffer where the scanner cannot see it, and the checker catches
// the resulting premature free.
//
// The two sides are sequenced through `phase`, a PLAIN std atomic: it is
// invisible to the scheduler (no yield, no buffering), so it pins the
// protocol-level order (protect before unlink, scan before the liveness
// check) without constraining the one thing under test — whether the
// reader's buffered protection store reaches memory before the scan.
// Spins are bounded; a schedule that starves a phase sets `bailed` and
// degrades to a vacuous pass (the reclaimer still owns the victim's
// exactly-once retirement, so the teardown oracles keep holding).
// ---------------------------------------------------------------------
const SPIN: usize = 400;

fn await_phase(phase: &StdAtomicUsize, at_least: usize) -> bool {
    for _ in 0..SPIN {
        if phase.load(StdOrdering::SeqCst) >= at_least {
            return true;
        }
        yield_now();
    }
    false
}

fn hp_protect_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_bag_cap(4);
    cfg.hp_slots = 1;
    let s = smr_with(SmrKind::Hp, alloc.clone(), cfg);

    // Victim born before the race, published through `link`.
    let victim = {
        let h = s.register(1);
        let g = h.begin_op();
        g.alloc(64).as_ptr() as usize
        // guard and handle drop: tid 1 is free for the reclaimer.
    };
    let link = Arc::new(AtomicUsize::new(victim));
    let phase = Arc::new(StdAtomicUsize::new(0));
    let bailed = Arc::new(StdAtomicUsize::new(0));

    let reader = {
        let s = s.clone();
        let link = link.clone();
        let alloc = alloc.clone();
        let phase = phase.clone();
        let bailed = bailed.clone();
        thread::spawn(move || {
            let h = s.register(0);
            let g = h.begin_op();
            let p = g.protect_load(0, &link).expect("hp never restarts");
            if bailed.load(StdOrdering::SeqCst) != 0 {
                return; // starved reclaimer cleaned up; nothing to check
            }
            assert_eq!(p, victim, "link is unlinked only after phase 1");
            phase.store(1, StdOrdering::SeqCst); // protected; reclaimer may go
            if await_phase(&phase, 2) && bailed.load(StdOrdering::SeqCst) == 0 {
                // The scan ran. Under the real protocol our hazard was
                // visible to it; the victim must have survived.
                assert!(
                    alloc.is_live(p),
                    "protected block was freed under the guard"
                );
            }
        })
    };
    let reclaimer = {
        let s = s.clone();
        let link = link.clone();
        let phase = phase.clone();
        let bailed = bailed.clone();
        thread::spawn(move || {
            let h = s.register(1);
            let g = h.begin_op();
            if !await_phase(&phase, 1) {
                // Reader starved: flag first (so the reader skips its
                // asserts), then clean up — the victim still must be
                // retired exactly once.
                bailed.store(1, StdOrdering::SeqCst);
            }
            link.store(0, Ordering::SeqCst); // unlink
                                             // SAFETY: unlinked above, retired exactly once here.
            g.retire(NonNull::new(victim as *mut u8).unwrap());
            for _ in 0..3 {
                let p = g.alloc(64);
                g.retire(p); // filler: reaches the scan threshold (4)
            }
            phase.store(2, StdOrdering::SeqCst); // scanned; reader may check
        })
    };
    reader.join().unwrap();
    reclaimer.join().unwrap();
    s.quiesce_and_drain();
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn hp_protect_clean_passes() {
    check(Config::random(400).with_seed(0x4421), hp_protect_model);
}

#[test]
fn hp_publish_relaxed_mutant_is_killed() {
    let out = explore(
        Config::random(600)
            .with_seed(0x4422)
            .with_ctx(M_HP_PUBLISH_RELAXED),
        hp_protect_model,
    );
    match out {
        Outcome::Fail(f) => assert!(
            f.message.contains("freed under the guard") || f.message.contains("double free"),
            "unexpected failure: {}",
            f.message
        ),
        Outcome::Pass { .. } => panic!("hp relaxed-publish mutant survived the checker"),
    }
}

fn ibr_protect_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_bag_cap(2);
    cfg.era_freq = 1;
    let s = smr_with(SmrKind::Ibr, alloc.clone(), cfg);
    let link = Arc::new(AtomicUsize::new(0));
    let phase = Arc::new(StdAtomicUsize::new(0));
    let bailed = Arc::new(StdAtomicUsize::new(0));

    let reader = {
        let s = s.clone();
        let link = link.clone();
        let alloc = alloc.clone();
        let phase = phase.clone();
        let bailed = bailed.clone();
        thread::spawn(move || {
            let h = s.register(0);
            // begin_op pins [lo, hi] at the current era, BEFORE the
            // reclaimer's era bump: protecting the later-born victim
            // then requires the interval-widening store the mutant
            // weakens.
            let g = h.begin_op();
            phase.store(1, StdOrdering::SeqCst); // interval pinned
            if !await_phase(&phase, 2) {
                return; // reclaimer starved; it allocated nothing
            }
            // Victim is published and born in a newer era than our pinned
            // interval: this hop must widen [lo, hi].
            let p = g.protect_load(0, &link).expect("ibr never restarts");
            if bailed.load(StdOrdering::SeqCst) != 0 {
                return; // starved reclaimer cleaned up; nothing to check
            }
            assert_ne!(p, 0, "link is unlinked only after phase 3");
            phase.store(3, StdOrdering::SeqCst); // protected; reclaimer may go
            if await_phase(&phase, 4) && bailed.load(StdOrdering::SeqCst) == 0 {
                assert!(
                    alloc.is_live(p),
                    "protected block was freed under the guard"
                );
            }
        })
    };
    let reclaimer = {
        let s = s.clone();
        let link = link.clone();
        let phase = phase.clone();
        let bailed = bailed.clone();
        thread::spawn(move || {
            let h = s.register(1);
            let g = h.begin_op();
            if !await_phase(&phase, 1) {
                return; // nothing allocated yet: safe to walk away
            }
            // Advance the era past the reader's snapshot…
            let warm = g.alloc(64);
            g.retire(warm); // era_freq=1: every retire bumps the era
                            // …then publish a victim born in the newer era.
            let victim = g.alloc(64);
            link.store(victim.as_ptr() as usize, Ordering::SeqCst);
            phase.store(2, StdOrdering::SeqCst);
            if !await_phase(&phase, 3) {
                // Reader starved: flag first, then clean up (the victim
                // still must be retired exactly once).
                bailed.store(1, StdOrdering::SeqCst);
            }
            link.store(0, Ordering::SeqCst); // unlink
            g.retire(victim); // bag hits cap (2): scan runs here
            phase.store(4, StdOrdering::SeqCst); // scanned; reader may check
        })
    };
    reader.join().unwrap();
    reclaimer.join().unwrap();
    s.quiesce_and_drain();
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn ibr_protect_clean_passes() {
    check(Config::random(400).with_seed(0x1b41), ibr_protect_model);
}

#[test]
fn ibr_bump_relaxed_mutant_is_killed() {
    let out = explore(
        Config::random(600)
            .with_seed(0x1b42)
            .with_ctx(M_IBR_BUMP_RELAXED),
        ibr_protect_model,
    );
    match out {
        Outcome::Fail(f) => assert!(
            f.message.contains("freed under the guard") || f.message.contains("double free"),
            "unexpected failure: {}",
            f.message
        ),
        Outcome::Pass { .. } => panic!("ibr relaxed-bump mutant survived the checker"),
    }
}

// ---------------------------------------------------------------------
// Model 4: detach must quiesce (qsbr).
//
// Two workers retire and detach; then a fresh solo thread runs a few
// ops. Clean: the departed threads' OFFLINE announcements let the
// fuzzy barrier advance, so the solo phase provably frees (the delta
// oracle). The M_QSBR_DETACH_SKIP mutant leaves a frozen announcement
// pinning the barrier: the delta is zero in every schedule.
// ---------------------------------------------------------------------
fn qsbr_detach_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2);
    cfg.epoch_check_every = 1;
    let s = smr_with(SmrKind::Qsbr, alloc.clone(), cfg);

    let workers: Vec<_> = (0..2)
        .map(|tid| {
            let s = s.clone();
            thread::spawn(move || {
                let h = s.register(tid);
                for _ in 0..3 {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Solo phase: single-threaded, so the freed delta is deterministic.
    let freed_before = alloc.freed_count();
    let h = s.register(0);
    for _ in 0..8 {
        let g = h.begin_op();
        let p = g.alloc(64);
        g.retire(p);
    }
    assert!(
        alloc.freed_count() > freed_before,
        "epoch pinned: detach left the barrier stuck, nothing frees"
    );
    drop(h);
    s.quiesce_and_drain();
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn qsbr_detach_clean_passes() {
    check(Config::random(300).with_seed(0x45b1), qsbr_detach_model);
}

#[test]
fn qsbr_detach_skip_mutant_is_killed() {
    let out = explore(
        Config::random(5)
            .with_seed(0x45b2)
            .with_ctx(M_QSBR_DETACH_SKIP),
        qsbr_detach_model,
    );
    match out {
        Outcome::Fail(f) => {
            assert!(
                f.message.contains("epoch pinned"),
                "unexpected failure: {}",
                f.message
            )
        }
        Outcome::Pass { .. } => panic!("qsbr detach-skip mutant survived the checker"),
    }
}

// ---------------------------------------------------------------------
// Model 5: FreeBuffer flush under contention (hp + amortized).
//
// Both threads feed the per-thread FreeBuffers through scans while the
// alloc-coupled drain pulls from them concurrently; teardown drains the
// rest. Oracle: exactly-once frees, nothing leaked.
// ---------------------------------------------------------------------
fn freebuf_contention_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_bag_cap(2).with_amortized(1);
    cfg.hp_slots = 1;
    let s = smr_with(SmrKind::Hp, alloc.clone(), cfg);

    let workers: Vec<_> = (0..2)
        .map(|tid| {
            let s = s.clone();
            thread::spawn(move || {
                let h = s.register(tid);
                for _ in 0..4 {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    s.quiesce_and_drain();
    assert_eq!(
        alloc.freed_count(),
        8,
        "2 threads x 4 blocks, each freed once"
    );
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
}

#[test]
fn freebuf_contention_clean_passes() {
    check(
        Config::random(300).with_seed(0xfb01),
        freebuf_contention_model,
    );
}

// ---------------------------------------------------------------------
// Models: the adaptive retire path (FreeMode::Adaptive).
//
// Two shapes. (1) qsbr_adapt mirrors Model 1's splice pipeline — epoch
// rotation disposes into the FreeBuffer, but in Adaptive mode every
// disposal also runs the controller retune, so the retune sits exactly
// on the splice boundary the M_SPLICE_KEEP_SOURCE mutant corrupts.
// (2) hp_adapt drives the threshold path, where every retire reads the
// per-thread controller's cap and scans feed the alloc-coupled drain at
// the controller's (possibly retuned) rate. Shared oracles: exactly-once
// frees under every explored schedule, nothing leaked, a balanced
// garbage gauge with ZERO clamp events (the new accounting-bug detector
// must stay silent on the real protocol).
// ---------------------------------------------------------------------
fn adaptive_splice_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2).with_mode(epic_smr::FreeMode::Adaptive);
    cfg.epoch_check_every = 1;
    let s = smr_with(SmrKind::Qsbr, alloc.clone(), cfg);

    let workers: Vec<_> = (0..2)
        .map(|tid| {
            let s = s.clone();
            thread::spawn(move || {
                let h = s.register(tid);
                for _ in 0..4 {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    s.quiesce_and_drain();
    assert_eq!(
        alloc.freed_count(),
        alloc.alloc_count(),
        "every retired block freed exactly once"
    );
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
    let stats = s.stats();
    assert_eq!(stats.garbage, 0, "gauge balanced at quiescence");
    assert_eq!(
        stats.garbage_clamps, 0,
        "garbage gauge clamped on the adaptive path (double-count bug)"
    );
}

fn adaptive_threshold_model() {
    let alloc = TrackingAlloc::new(2);
    let mut cfg = SmrConfig::new(2)
        .with_bag_cap(2)
        .with_mode(epic_smr::FreeMode::Adaptive);
    cfg.hp_slots = 1;
    let s = smr_with(SmrKind::Hp, alloc.clone(), cfg);

    let workers: Vec<_> = (0..2)
        .map(|tid| {
            let s = s.clone();
            thread::spawn(move || {
                let h = s.register(tid);
                for _ in 0..4 {
                    let g = h.begin_op();
                    let p = g.alloc(64);
                    g.retire(p);
                }
                h.detach();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    s.quiesce_and_drain();
    assert_eq!(
        alloc.freed_count(),
        8,
        "2 threads x 4 blocks, each freed once"
    );
    assert_eq!(alloc.live_count(), 0, "nothing leaked");
    let stats = s.stats();
    assert_eq!(stats.garbage, 0, "gauge balanced at quiescence");
    assert_eq!(stats.garbage_clamps, 0, "gauge clamped (double-count bug)");
}

#[test]
fn adaptive_splice_clean_passes() {
    check(Config::random(300).with_seed(0xada1), adaptive_splice_model);
}

#[test]
fn adaptive_threshold_clean_passes() {
    check(
        Config::random(300).with_seed(0xada3),
        adaptive_threshold_model,
    );
}

#[test]
fn adaptive_splice_mutant_is_killed() {
    // The same splice mutant must also die through the adaptive disposal
    // path — the controller retune must not mask the corrupted splice.
    let out = explore(
        Config::random(5)
            .with_seed(0xada2)
            .with_ctx(M_SPLICE_KEEP_SOURCE),
        adaptive_splice_model,
    );
    match out {
        Outcome::Fail(f) => {
            assert!(
                f.message.contains("double free"),
                "unexpected failure: {}",
                f.message
            )
        }
        Outcome::Pass { .. } => panic!("splice mutant survived the adaptive path"),
    }
}

// ---------------------------------------------------------------------
// Checker metadata: failures replay byte-identically under this cfg too
// (the splice mutant fails deterministically, so it makes a good probe).
// ---------------------------------------------------------------------
#[test]
fn mutant_failure_replays_byte_identically() {
    let cfg = Config::random(5)
        .with_seed(0xd0d0)
        .with_ctx(M_SPLICE_KEEP_SOURCE);
    let f1 = match explore(cfg.clone(), splice_drain_model) {
        Outcome::Fail(f) => f,
        Outcome::Pass { .. } => panic!("expected the splice mutant to fail"),
    };
    let f2 = match epic_check::replay(cfg, &f1.seed, splice_drain_model) {
        Outcome::Fail(f) => f,
        Outcome::Pass { .. } => panic!("replay of seed {} did not fail", f1.seed),
    };
    assert_eq!(f1.message, f2.message);
    assert_eq!(f1.trace, f2.trace, "replayed trace differs from original");
}
