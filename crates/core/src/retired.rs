//! Retired-object records and the intrusive limbo list they live on.
//!
//! Between unlink and free, a retired block is dead memory the reclamation
//! scheme owns — including its [`BlockHeader`], whose free-list link and
//! era words are idle in that window. [`RetiredList`] threads limbo bags,
//! freeable lists and object pools directly through those header fields,
//! so pushing a retirement, rotating a bag, splicing a safe batch onto the
//! freeable list, and draining it back to the allocator are all pointer
//! writes: the steady-state retire pipeline performs **zero heap
//! allocations**, and nothing the measurement harness does shows up as
//! allocator traffic attributed to the scheme under test.

use crate::sync::Ordering;
use epic_alloc::BlockHeader;
use std::ptr::NonNull;

/// One retired (unlinked but not yet freed) object.
///
/// Carries the metadata era-based schemes need to decide freeability:
/// the block's birth era (stamped at allocation via
/// [`crate::RawSmr::on_alloc`]) and the era at retirement. Epoch/token
/// schemes ignore both fields. This is a *view*: while the object sits on
/// a [`RetiredList`], the canonical copy of both eras lives in the block's
/// own header.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// User pointer of the block (as handed out by the allocator).
    pub ptr: NonNull<u8>,
    /// Era at allocation (0 for schemes that do not stamp).
    pub birth_era: u64,
    /// Era at retirement (0 for schemes that do not stamp).
    pub retire_era: u64,
}

// SAFETY: a Retired is a capability to free the block; ownership semantics
// are enforced by the schemes (exactly one bag holds it). The raw pointer
// itself is Send.
unsafe impl Send for Retired {}

impl Retired {
    /// A record without era metadata.
    pub fn new(ptr: NonNull<u8>) -> Self {
        Retired {
            ptr,
            birth_era: 0,
            retire_era: 0,
        }
    }

    /// A record with era interval `[birth, retire]`.
    pub fn with_eras(ptr: NonNull<u8>, birth_era: u64, retire_era: u64) -> Self {
        Retired {
            ptr,
            birth_era,
            retire_era,
        }
    }

    /// The block address as an integer (hazard-set membership tests).
    #[inline]
    pub fn addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }
}

/// An intrusive FIFO list of retired blocks, threaded through each block's
/// [`BlockHeader::next`] link with the era interval parked in the header's
/// era words.
///
/// Every mutation is O(1) — push, pop, and whole-list splice — and none
/// allocates: the spine *is* the retired memory. The list is single-owner
/// (a scheme's per-tid state); transferring it across threads (background
/// reclaimer, teardown) is sound because every hand-off point synchronizes
/// (channel send, thread join).
///
/// `push` is unsafe because linking writes through the pointer's header:
/// every entry must be a live block of a [`epic_alloc::PoolAllocator`]
/// that the caller exclusively owns from retirement to free — the same
/// contract [`crate::RawSmr::retire`] already imposes. Dropping a non-empty
/// list does not free its blocks; they stay owned by the allocator's chunk
/// store until it drops (identical to dropping the old `Vec<Retired>`).
#[derive(Debug, Default)]
pub struct RetiredList {
    /// Header address of the oldest entry (0 = empty).
    head: usize,
    /// Header address of the newest entry (0 = empty).
    tail: usize,
    len: usize,
}

// SAFETY: the list owns its blocks exclusively; hand-off between threads
// happens only through synchronizing operations (see type docs).
unsafe impl Send for RetiredList {}

impl RetiredList {
    /// An empty list.
    pub const fn new() -> Self {
        RetiredList {
            head: 0,
            tail: 0,
            len: 0,
        }
    }

    /// Entries on the list.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the list holds nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn link_back(&mut self, hdr: &BlockHeader) {
        hdr.next.store(0, Ordering::Relaxed);
        let addr = hdr.addr();
        if self.tail == 0 {
            self.head = addr;
        } else {
            // SAFETY: `tail` was linked by a prior push from a valid header
            // this list exclusively owns.
            let tail = unsafe { &*(self.tail as *const BlockHeader) };
            tail.next.store(addr, Ordering::Relaxed);
        }
        self.tail = addr;
        self.len += 1;
    }

    /// Appends a retirement, stamping both era words into the header.
    ///
    /// # Safety
    /// `r.ptr` must be a live block of a pool allocator, exclusively owned
    /// by the caller (retired: unlinked, on no other list) until popped.
    #[inline]
    pub unsafe fn push(&mut self, r: Retired) {
        // SAFETY: caller guarantees a valid, exclusively-owned block.
        let hdr = unsafe { BlockHeader::from_user(r.ptr) };
        hdr.birth_era.store(r.birth_era, Ordering::Release);
        hdr.retire_era.store(r.retire_era, Ordering::Release);
        self.link_back(hdr);
    }

    /// Appends a retirement on the hot path: stamps only the retire era,
    /// leaving the birth era the scheme wrote at allocation untouched.
    ///
    /// # Safety
    /// Same contract as [`push`](Self::push).
    #[inline]
    pub unsafe fn push_retire(&mut self, ptr: NonNull<u8>, retire_era: u64) {
        // SAFETY: caller guarantees a valid, exclusively-owned block.
        let hdr = unsafe { BlockHeader::from_user(ptr) };
        hdr.retire_era.store(retire_era, Ordering::Release);
        self.link_back(hdr);
    }

    /// Prepends a retirement (LIFO use: object pools pop the warmest block
    /// first).
    ///
    /// # Safety
    /// Same contract as [`push`](Self::push).
    #[inline]
    pub unsafe fn push_front(&mut self, r: Retired) {
        // SAFETY: caller guarantees a valid, exclusively-owned block.
        let hdr = unsafe { BlockHeader::from_user(r.ptr) };
        hdr.birth_era.store(r.birth_era, Ordering::Release);
        hdr.retire_era.store(r.retire_era, Ordering::Release);
        hdr.next.store(self.head, Ordering::Relaxed);
        self.head = hdr.addr();
        if self.tail == 0 {
            self.tail = self.head;
        }
        self.len += 1;
    }

    /// Removes and returns the oldest entry, reconstructing its era view
    /// from the header.
    #[inline]
    pub fn pop(&mut self) -> Option<Retired> {
        if self.head == 0 {
            return None;
        }
        // SAFETY: `head` was linked by a push from a valid header this list
        // exclusively owns.
        let hdr = unsafe { &*(self.head as *const BlockHeader) };
        self.head = hdr.next.load(Ordering::Relaxed);
        if self.head == 0 {
            self.tail = 0;
        } else {
            // A linked drain is a serial dependent-load chain; the Vec it
            // replaced enjoyed memory-level parallelism. One-ahead
            // prefetch restores the overlap: the successor's header line
            // is fetched while the caller frees this entry.
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `head` is a valid header address; prefetch has no
            // memory effects.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    self.head as *const i8,
                );
            }
        }
        self.len -= 1;
        Some(Retired {
            ptr: hdr.user_ptr(),
            birth_era: hdr.birth_era.load(Ordering::Acquire),
            retire_era: hdr.retire_era.load(Ordering::Acquire),
        })
    }

    /// Splices all of `other` onto this list's tail in O(1), leaving
    /// `other` empty. FIFO order is preserved: `other`'s oldest entry
    /// follows this list's newest.
    pub fn append(&mut self, other: &mut RetiredList) {
        if other.head == 0 {
            return;
        }
        if self.tail == 0 {
            self.head = other.head;
        } else {
            // SAFETY: `tail` is a valid header this list exclusively owns.
            let tail = unsafe { &*(self.tail as *const BlockHeader) };
            tail.next.store(other.head, Ordering::Relaxed);
        }
        self.tail = other.tail;
        self.len += other.len;
        if !crate::mutants::active(crate::mutants::M_SPLICE_KEEP_SOURCE) {
            *other = RetiredList::new();
        }
    }

    /// Takes the whole list by value, leaving this one empty.
    pub fn take(&mut self) -> RetiredList {
        std::mem::take(self)
    }

    /// In-place partition for reclamation scans: entries failing `keep`
    /// move to `freeable`, kept entries stay on `self`. FIFO order is
    /// preserved on both sides, and no allocation happens — every move is
    /// a relink of blocks this list already owns.
    pub fn partition_into(
        &mut self,
        mut keep: impl FnMut(&Retired) -> bool,
        freeable: &mut RetiredList,
    ) {
        let mut kept = RetiredList::new();
        while let Some(r) = self.pop() {
            let target = if keep(&r) { &mut kept } else { &mut *freeable };
            // SAFETY: popped from this list: a live block we exclusively
            // own until it is freed.
            unsafe { target.push(r) };
        }
        self.append(&mut kept);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel, PoolAllocator};
    use std::sync::Arc;

    #[test]
    fn construction_and_addr() {
        let mut word = 0u64;
        let p = NonNull::new(&mut word as *mut u64 as *mut u8).unwrap();
        let r = Retired::new(p);
        assert_eq!(r.addr(), p.as_ptr() as usize);
        assert_eq!(r.birth_era, 0);
        let r2 = Retired::with_eras(p, 3, 9);
        assert_eq!((r2.birth_era, r2.retire_era), (3, 9));
    }

    fn arena() -> Arc<dyn PoolAllocator> {
        build_allocator(AllocatorKind::Sys, 1, CostModel::zero())
    }

    fn free_all(a: &Arc<dyn PoolAllocator>, mut list: RetiredList) {
        while let Some(r) = list.pop() {
            a.dealloc(0, r.ptr);
        }
    }

    #[test]
    fn fifo_push_pop_roundtrips_eras() {
        let a = arena();
        let mut list = RetiredList::new();
        let ptrs: Vec<_> = (0..3).map(|_| a.alloc(0, 64)).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            // SAFETY: live blocks of `a`, exclusively ours.
            unsafe { list.push(Retired::with_eras(p, i as u64, i as u64 + 10)) };
        }
        assert_eq!(list.len(), 3);
        for (i, &p) in ptrs.iter().enumerate() {
            let r = list.pop().expect("fifo entry");
            assert_eq!(r.ptr, p, "oldest first");
            assert_eq!((r.birth_era, r.retire_era), (i as u64, i as u64 + 10));
        }
        assert!(list.pop().is_none());
        assert_eq!(list.len(), 0);
        for p in ptrs {
            a.dealloc(0, p);
        }
    }

    #[test]
    fn push_retire_preserves_birth_era() {
        let a = arena();
        let p = a.alloc(0, 64);
        // SAFETY: live block.
        unsafe { epic_alloc::block::set_birth_era(p, 7) };
        let mut list = RetiredList::new();
        // SAFETY: live block, exclusively ours.
        unsafe { list.push_retire(p, 21) };
        let r = list.pop().unwrap();
        assert_eq!((r.birth_era, r.retire_era), (7, 21));
        a.dealloc(0, p);
    }

    #[test]
    fn push_front_is_lifo() {
        let a = arena();
        let mut list = RetiredList::new();
        let ptrs: Vec<_> = (0..3).map(|_| a.alloc(0, 64)).collect();
        for &p in &ptrs {
            // SAFETY: live blocks, exclusively ours.
            unsafe { list.push_front(Retired::new(p)) };
        }
        assert_eq!(list.pop().unwrap().ptr, ptrs[2], "newest first");
        assert_eq!(list.pop().unwrap().ptr, ptrs[1]);
        assert_eq!(list.pop().unwrap().ptr, ptrs[0]);
        for p in ptrs {
            a.dealloc(0, p);
        }
    }

    #[test]
    fn append_splices_in_order_and_empties_source() {
        let a = arena();
        let mut front = RetiredList::new();
        let mut back = RetiredList::new();
        let ptrs: Vec<_> = (0..4).map(|_| a.alloc(0, 64)).collect();
        // SAFETY: live blocks, exclusively ours.
        unsafe {
            front.push(Retired::new(ptrs[0]));
            front.push(Retired::new(ptrs[1]));
            back.push(Retired::new(ptrs[2]));
            back.push(Retired::new(ptrs[3]));
        }
        front.append(&mut back);
        assert_eq!(front.len(), 4);
        assert!(back.is_empty());
        back.append(&mut RetiredList::new()); // empty-into-empty is a no-op
        for &p in &ptrs {
            assert_eq!(front.pop().unwrap().ptr, p, "splice keeps FIFO order");
        }
        // Appending onto an emptied list re-links head and tail.
        let q = a.alloc(0, 64);
        let mut single = RetiredList::new();
        // SAFETY: live block, exclusively ours.
        unsafe { single.push(Retired::new(q)) };
        front.append(&mut single);
        assert_eq!(front.len(), 1);
        free_all(&a, front);
        for p in ptrs {
            a.dealloc(0, p);
        }
    }

    #[test]
    fn take_moves_everything() {
        let a = arena();
        let mut list = RetiredList::new();
        let p = a.alloc(0, 64);
        // SAFETY: live block, exclusively ours.
        unsafe { list.push(Retired::new(p)) };
        let moved = list.take();
        assert!(list.is_empty());
        assert_eq!(moved.len(), 1);
        free_all(&a, moved);
    }
}
