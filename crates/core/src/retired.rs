//! Retired-object records.

use std::ptr::NonNull;

/// One retired (unlinked but not yet freed) object.
///
/// Carries the metadata era-based schemes need to decide freeability:
/// the block's birth era (stamped at allocation via
/// [`crate::Smr::on_alloc`]) and the era at retirement. Epoch/token
/// schemes ignore both fields.
#[derive(Debug, Clone, Copy)]
pub struct Retired {
    /// User pointer of the block (as handed out by the allocator).
    pub ptr: NonNull<u8>,
    /// Era at allocation (0 for schemes that do not stamp).
    pub birth_era: u64,
    /// Era at retirement (0 for schemes that do not stamp).
    pub retire_era: u64,
}

// SAFETY: a Retired is a capability to free the block; ownership semantics
// are enforced by the schemes (exactly one bag holds it). The raw pointer
// itself is Send.
unsafe impl Send for Retired {}

impl Retired {
    /// A record without era metadata.
    pub fn new(ptr: NonNull<u8>) -> Self {
        Retired {
            ptr,
            birth_era: 0,
            retire_era: 0,
        }
    }

    /// A record with era interval `[birth, retire]`.
    pub fn with_eras(ptr: NonNull<u8>, birth_era: u64, retire_era: u64) -> Self {
        Retired {
            ptr,
            birth_era,
            retire_era,
        }
    }

    /// The block address as an integer (hazard-set membership tests).
    #[inline]
    pub fn addr(&self) -> usize {
        self.ptr.as_ptr() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_addr() {
        let mut word = 0u64;
        let p = NonNull::new(&mut word as *mut u64 as *mut u8).unwrap();
        let r = Retired::new(p);
        assert_eq!(r.addr(), p.as_ptr() as usize);
        assert_eq!(r.birth_era, 0);
        let r2 = Retired::with_eras(p, 3, 9);
        assert_eq!((r2.birth_era, r2.retire_era), (3, 9));
    }
}
