//! # epic-smr — safe memory reclamation with batch vs amortized freeing
//!
//! The paper's core contribution, as a library:
//!
//! * **Amortized Free (AF)** (§3.3): every scheme here takes a
//!   [`FreeMode`] — `Batch` frees a safe batch immediately (the traditional
//!   "optimization" the paper shows is an anti-pattern), `Amortized` parks
//!   safe batches in a per-thread freeable list and frees a constant number
//!   of objects at each subsequent operation, letting the allocator's
//!   thread cache absorb and recycle them.
//! * **Token-EBR** (§4): epochs established by a token circulating a ring
//!   of threads, in all four variants of the paper (Naive, Pass-first,
//!   Periodic, and Amortized-free).
//! * The **comparison field** of §5: DEBRA, QSBR, RCU/EBR, hazard pointers,
//!   hazard eras, interval-based reclamation (2GE), NBR and NBR+
//!   (cooperative neutralization — see DESIGN.md for the signal
//!   substitution), a simplified WFE, and a leaky `none` baseline.
//!
//! ## Using a scheme from a data structure
//!
//! The public surface is thread-bound (DESIGN.md §7): [`build_smr`]
//! returns a shared [`Smr`], each worker thread resolves its per-thread
//! state once with [`Smr::register`], and every operation runs under an
//! RAII [`OpGuard`] whose [`protect_load`](OpGuard::protect_load)
//! combinator owns the publish → re-read/validate → neutralization-poll
//! loop that slot-based schemes require:
//!
//! ```
//! use epic_alloc::{build_allocator, AllocatorKind, CostModel};
//! use epic_smr::{build_smr, SmrConfig, SmrKind};
//! use std::sync::atomic::AtomicUsize;
//!
//! let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
//! let smr = build_smr(SmrKind::Hp, alloc, SmrConfig::new(1));
//!
//! let handle = smr.register(0); // once per thread
//! {
//!     let guard = handle.begin_op(); // end_op on drop
//!     let node = guard.alloc(64); // pool-alloc + birth-era stamp fused
//!     let link = AtomicUsize::new(node.as_ptr() as usize);
//!     // One protected hop: publish, validate, poll — Err(Restart) means
//!     // drop every pointer and retry from the root.
//!     let next = guard.protect_load(0, &link).expect("not neutralized");
//!     guard.enter_write_phase(&[next]); // NBR write-phase immunity
//!     guard.retire(node); // freed once no thread can hold it
//! }
//! smr.quiesce_and_drain();
//! assert_eq!(smr.stats().freed + smr.stats().garbage, 1);
//! ```
//!
//! The tid-everywhere [`RawSmr`] trait behind the facade remains the
//! scheme-implementor surface (and the harness escape hatch for sweep
//! construction, stats, detach and teardown) — see [`Smr::raw`].

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod adaptive;
pub mod common;
pub mod config;
pub mod freebuf;
pub mod handle;
pub mod mutants;
pub mod retired;
pub mod schemes;
pub mod smr_stats;
pub mod sync;

pub use adaptive::{AdaptiveCtrl, CtrlSignals};
pub use common::SchemeCommon;
pub use config::{FreeMode, SmrConfig};
pub use freebuf::FreeBuffer;
pub use handle::{OpGuard, Restart, SchemeLocal, Smr, SmrHandle, LINK_TAG_MASK};
pub use retired::{Retired, RetiredList};
pub use smr_stats::SmrSnapshot;

use epic_alloc::{PoolAllocator, Tid};
use std::ptr::NonNull;
use std::sync::Arc;

/// The raw reclamation-scheme interface the schemes implement.
///
/// Methods take the caller's dense [`Tid`]; a given tid must be used by at
/// most one thread at a time (same contract as [`PoolAllocator`]). Data
/// structures do not call this directly — they go through the thread-bound
/// [`SmrHandle`]/[`OpGuard`] surface, which resolves
/// [`local`](RawSmr::local) once and keeps the per-hop protocol
/// ([`OpGuard::protect_load`]) free of tid re-indexing and dyn dispatch.
pub trait RawSmr: Send + Sync {
    /// Begins a data-structure operation: publishes whatever the scheme
    /// needs (epoch announcement, token check, reservation reset) and
    /// drains the amortized-free list by the configured per-op count.
    fn begin_op(&self, tid: Tid);

    /// Ends the operation (clears reservations, marks quiescence).
    fn end_op(&self, tid: Tid);

    /// Publishes protection for the pointer about to be dereferenced.
    /// Slot-based schemes (HP) publish `ptr`; era-based schemes (HE, IBR,
    /// WFE) publish the current era; epoch/token schemes do nothing.
    ///
    /// If [`needs_validate`](RawSmr::needs_validate) returns true the
    /// caller must re-read the link after this call and retry until stable
    /// — [`OpGuard::protect_load`] is that loop, written once.
    fn protect(&self, tid: Tid, slot: usize, ptr: usize);

    /// True if `protect` requires the re-read-and-retry validation loop.
    fn needs_validate(&self) -> bool;

    /// Neutralization poll (NBR): returns true if the thread has been asked
    /// to restart its operation. The caller must drop every data-structure
    /// pointer it holds and restart from the root. Schemes without
    /// neutralization always return false.
    fn poll_restart(&self, tid: Tid) -> bool;

    /// Declares the pointers the thread will dereference during its write
    /// phase (NBR): after this call the thread is immune to neutralization
    /// until `end_op`. No-op for other schemes.
    fn enter_write_phase(&self, tid: Tid, ptrs: &[usize]);

    /// Hook invoked right after allocating a node: era-based schemes stamp
    /// the block's birth era.
    fn on_alloc(&self, tid: Tid, ptr: NonNull<u8>);

    /// Serves an allocation from the thread's object pool when the scheme
    /// runs in [`FreeMode::Pooled`]. `None` (the default, and the answer
    /// in every other mode) means "allocate from the allocator". Callers
    /// must still invoke [`on_alloc`](RawSmr::on_alloc) on the returned
    /// block.
    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        let _ = (tid, size);
        None
    }

    /// Retires an unlinked node: it will be freed once no thread can hold a
    /// reference, via the configured [`FreeMode`].
    fn retire(&self, tid: Tid, ptr: NonNull<u8>);

    /// Announces that `tid` is leaving the workload (worker shutdown).
    /// Grace-period schemes treat detached threads as permanently
    /// quiescent so stragglers cannot block reclamation; Token-EBR removes
    /// the thread from the ring, forwarding any held token. Call outside
    /// any operation; the tid must not run further operations.
    fn detach(&self, tid: Tid);

    /// Teardown: with all worker threads quiescent, frees every object
    /// still held in limbo bags and freeable lists. Callers must guarantee
    /// no concurrent data-structure access.
    fn quiesce_and_drain(&self);

    /// Aggregated scheme statistics.
    fn stats(&self) -> SmrSnapshot;

    /// Resets statistics between trials.
    fn reset_stats(&self);

    /// Scheme name including the free-mode suffix (e.g. `"debra_af"`).
    /// Cached at construction — hot per-trial stats paths may call this
    /// freely.
    fn name(&self) -> &str;

    /// The scheme's kind tag.
    fn kind(&self) -> SmrKind;

    /// Number of participating threads (dense tids `0..max_threads`).
    fn max_threads(&self) -> usize;

    /// The scheme's per-thread fast path for `tid`, captured by
    /// [`Smr::register`]. The returned [`SchemeLocal`] must stay valid for
    /// the scheme's lifetime and reference only state owned by `tid` (plus
    /// global clocks).
    fn local(&self, tid: Tid) -> SchemeLocal;

    /// The allocator this scheme frees through.
    fn allocator(&self) -> &Arc<dyn PoolAllocator>;
}

/// Identifies a reclamation scheme (the paper's ten plus the token
/// variants and the leaky baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SmrKind {
    None,
    Qsbr,
    Rcu,
    Debra,
    TokenNaive,
    TokenPassFirst,
    TokenPeriodic,
    Hp,
    He,
    Ibr,
    Nbr,
    NbrPlus,
    Wfe,
}

impl SmrKind {
    /// Every scheme the factory knows, leaky baseline included, in
    /// [`build_smr`]'s match order. Sweeps and exhaustiveness tests should
    /// iterate this instead of hand-maintaining their own 13-kind lists.
    pub const ALL: [SmrKind; 13] = [
        SmrKind::None,
        SmrKind::Qsbr,
        SmrKind::Rcu,
        SmrKind::Debra,
        SmrKind::TokenNaive,
        SmrKind::TokenPassFirst,
        SmrKind::TokenPeriodic,
        SmrKind::Hp,
        SmrKind::He,
        SmrKind::Ibr,
        SmrKind::Nbr,
        SmrKind::NbrPlus,
        SmrKind::Wfe,
    ];

    /// The ten schemes of the paper's Experiment 2 (Fig. 11b), in its
    /// display order. `TokenPeriodic` is the "token" row (token_af when
    /// amortized).
    pub const EXPERIMENT2: [SmrKind; 10] = [
        SmrKind::Debra,
        SmrKind::He,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Nbr,
        SmrKind::NbrPlus,
        SmrKind::Qsbr,
        SmrKind::Rcu,
        SmrKind::TokenPeriodic,
        SmrKind::Wfe,
    ];

    /// Base name without free-mode suffix.
    pub fn base_name(self) -> &'static str {
        match self {
            SmrKind::None => "none",
            SmrKind::Qsbr => "qsbr",
            SmrKind::Rcu => "rcu",
            SmrKind::Debra => "debra",
            SmrKind::TokenNaive => "token_naive",
            SmrKind::TokenPassFirst => "token_passfirst",
            SmrKind::TokenPeriodic => "token",
            SmrKind::Hp => "hp",
            SmrKind::He => "he",
            SmrKind::Ibr => "ibr",
            SmrKind::Nbr => "nbr",
            SmrKind::NbrPlus => "nbr+",
            SmrKind::Wfe => "wfe",
        }
    }

    /// Parses a base name (as printed by [`base_name`](Self::base_name)).
    pub fn parse(s: &str) -> Option<SmrKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "leak" => Some(SmrKind::None),
            "qsbr" => Some(SmrKind::Qsbr),
            "rcu" | "ebr" => Some(SmrKind::Rcu),
            "debra" => Some(SmrKind::Debra),
            "token_naive" => Some(SmrKind::TokenNaive),
            "token_passfirst" => Some(SmrKind::TokenPassFirst),
            "token" | "token_periodic" => Some(SmrKind::TokenPeriodic),
            "hp" => Some(SmrKind::Hp),
            "he" => Some(SmrKind::He),
            "ibr" => Some(SmrKind::Ibr),
            "nbr" => Some(SmrKind::Nbr),
            "nbr+" | "nbrplus" => Some(SmrKind::NbrPlus),
            "wfe" => Some(SmrKind::Wfe),
            _ => None,
        }
    }
}

/// Builds a raw scheme over `alloc` with configuration `cfg` (the
/// [`build_smr`] internals, exposed for callers that drive tids
/// themselves).
pub fn build_raw_smr(
    kind: SmrKind,
    alloc: Arc<dyn PoolAllocator>,
    cfg: SmrConfig,
) -> Arc<dyn RawSmr> {
    match kind {
        SmrKind::None => Arc::new(schemes::leak::LeakSmr::new(alloc, cfg)),
        SmrKind::Qsbr => Arc::new(schemes::qsbr::QsbrSmr::new(alloc, cfg)),
        SmrKind::Rcu => Arc::new(schemes::rcu::RcuSmr::new(alloc, cfg)),
        SmrKind::Debra => Arc::new(schemes::debra::DebraSmr::new(alloc, cfg)),
        SmrKind::TokenNaive => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::Naive,
        )),
        SmrKind::TokenPassFirst => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::PassFirst,
        )),
        SmrKind::TokenPeriodic => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::Periodic,
        )),
        SmrKind::Hp => Arc::new(schemes::hp::HpSmr::new(alloc, cfg)),
        SmrKind::He => Arc::new(schemes::he::HeSmr::new(alloc, cfg)),
        SmrKind::Ibr => Arc::new(schemes::ibr::IbrSmr::new(alloc, cfg)),
        SmrKind::Nbr => Arc::new(schemes::nbr::NbrSmr::new(alloc, cfg, false)),
        SmrKind::NbrPlus => Arc::new(schemes::nbr::NbrSmr::new(alloc, cfg, true)),
        SmrKind::Wfe => Arc::new(schemes::wfe::WfeSmr::new(alloc, cfg)),
    }
}

/// Builds a reclamation scheme over `alloc` with configuration `cfg`.
pub fn build_smr(kind: SmrKind, alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Smr {
    Smr::from_raw(build_raw_smr(kind, alloc, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in SmrKind::ALL {
            assert_eq!(SmrKind::parse(kind.base_name()), Some(kind), "{kind:?}");
        }
        assert_eq!(SmrKind::parse("unknown"), None);
    }

    #[test]
    fn all_is_complete_and_distinct() {
        let set: std::collections::HashSet<_> = SmrKind::ALL.iter().collect();
        assert_eq!(set.len(), SmrKind::ALL.len());
        for kind in SmrKind::EXPERIMENT2 {
            assert!(SmrKind::ALL.contains(&kind), "{kind:?} missing from ALL");
        }
    }

    #[test]
    fn experiment2_has_ten_schemes() {
        assert_eq!(SmrKind::EXPERIMENT2.len(), 10);
        let set: std::collections::HashSet<_> = SmrKind::EXPERIMENT2.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn factory_agrees_with_kind_tags() {
        use epic_alloc::{build_allocator, AllocatorKind, CostModel};
        for kind in SmrKind::ALL {
            let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
            let smr = build_smr(kind, alloc, SmrConfig::new(1));
            assert_eq!(smr.kind(), kind);
            // Batch mode has no suffix: the cached name must be exactly the
            // kind's base name (pins the per-constructor base strings).
            assert_eq!(smr.name(), kind.base_name());
            assert_eq!(smr.raw().max_threads(), 1);
        }
    }
}
