//! # epic-smr — safe memory reclamation with batch vs amortized freeing
//!
//! The paper's core contribution, as a library:
//!
//! * **Amortized Free (AF)** (§3.3): every scheme here takes a
//!   [`FreeMode`] — `Batch` frees a safe batch immediately (the traditional
//!   "optimization" the paper shows is an anti-pattern), `Amortized` parks
//!   safe batches in a per-thread freeable list and frees a constant number
//!   of objects at each subsequent operation, letting the allocator's
//!   thread cache absorb and recycle them.
//! * **Token-EBR** (§4): epochs established by a token circulating a ring
//!   of threads, in all four variants of the paper (Naive, Pass-first,
//!   Periodic, and Amortized-free).
//! * The **comparison field** of §5: DEBRA, QSBR, RCU/EBR, hazard pointers,
//!   hazard eras, interval-based reclamation (2GE), NBR and NBR+
//!   (cooperative neutralization — see DESIGN.md for the signal
//!   substitution), a simplified WFE, and a leaky `none` baseline.
//!
//! All schemes implement the dyn-compatible [`Smr`] trait so the harness
//! can sweep them uniformly, and free through an [`epic_alloc`]
//! [`PoolAllocator`], which is where the remote-batch-free problem lives.
//!
//! ## Using a scheme from a data structure
//!
//! ```text
//! smr.begin_op(tid);                   // also drains the AF list
//! loop {
//!     let p = load link;
//!     smr.protect(tid, slot, p);       // no-op for epoch schemes
//!     if !smr.needs_validate() || relink == p { break }
//! }
//! if smr.poll_restart(tid) { restart } // NBR neutralization
//! smr.enter_write_phase(tid, &[nodes about to be touched]);
//! ... unlink node ...
//! smr.retire(tid, node);
//! smr.end_op(tid);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod common;
pub mod config;
pub mod freebuf;
pub mod retired;
pub mod schemes;
pub mod smr_stats;

pub use common::SchemeCommon;
pub use config::{FreeMode, SmrConfig};
pub use freebuf::FreeBuffer;
pub use retired::{Retired, RetiredList};
pub use smr_stats::SmrSnapshot;

use epic_alloc::{PoolAllocator, Tid};
use std::ptr::NonNull;
use std::sync::Arc;

/// The reclamation-scheme interface the trees program against.
///
/// Methods take the caller's dense [`Tid`]; a given tid must be used by at
/// most one thread at a time (same contract as [`PoolAllocator`]).
pub trait Smr: Send + Sync {
    /// Begins a data-structure operation: publishes whatever the scheme
    /// needs (epoch announcement, token check, reservation reset) and
    /// drains the amortized-free list by the configured per-op count.
    fn begin_op(&self, tid: Tid);

    /// Ends the operation (clears reservations, marks quiescence).
    fn end_op(&self, tid: Tid);

    /// Publishes protection for the pointer about to be dereferenced.
    /// Slot-based schemes (HP) publish `ptr`; era-based schemes (HE, IBR,
    /// WFE) publish the current era; epoch/token schemes do nothing.
    ///
    /// If [`needs_validate`](Smr::needs_validate) returns true the caller
    /// must re-read the link after this call and retry until stable.
    fn protect(&self, tid: Tid, slot: usize, ptr: usize);

    /// True if `protect` requires the re-read-and-retry validation loop.
    fn needs_validate(&self) -> bool;

    /// Neutralization poll (NBR): returns true if the thread has been asked
    /// to restart its operation. The caller must drop every data-structure
    /// pointer it holds and restart from the root. Schemes without
    /// neutralization always return false.
    fn poll_restart(&self, tid: Tid) -> bool;

    /// Declares the pointers the thread will dereference during its write
    /// phase (NBR): after this call the thread is immune to neutralization
    /// until `end_op`. No-op for other schemes.
    fn enter_write_phase(&self, tid: Tid, ptrs: &[usize]);

    /// Hook invoked right after allocating a node: era-based schemes stamp
    /// the block's birth era.
    fn on_alloc(&self, tid: Tid, ptr: NonNull<u8>);

    /// Serves an allocation from the thread's object pool when the scheme
    /// runs in [`FreeMode::Pooled`]. `None` (the default, and the answer
    /// in every other mode) means "allocate from the allocator". Callers
    /// must still invoke [`on_alloc`](Smr::on_alloc) on the returned block.
    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        let _ = (tid, size);
        None
    }

    /// Retires an unlinked node: it will be freed once no thread can hold a
    /// reference, via the configured [`FreeMode`].
    fn retire(&self, tid: Tid, ptr: NonNull<u8>);

    /// Announces that `tid` is leaving the workload (worker shutdown).
    /// Grace-period schemes treat detached threads as permanently
    /// quiescent so stragglers cannot block reclamation; Token-EBR removes
    /// the thread from the ring, forwarding any held token. Call outside
    /// any operation; the tid must not run further operations.
    fn detach(&self, tid: Tid);

    /// Teardown: with all worker threads quiescent, frees every object
    /// still held in limbo bags and freeable lists. Callers must guarantee
    /// no concurrent data-structure access.
    fn quiesce_and_drain(&self);

    /// Aggregated scheme statistics.
    fn stats(&self) -> SmrSnapshot;

    /// Resets statistics between trials.
    fn reset_stats(&self);

    /// Scheme name including the free-mode suffix (e.g. `"debra_af"`).
    fn name(&self) -> String;

    /// The scheme's kind tag.
    fn kind(&self) -> SmrKind;

    /// The allocator this scheme frees through.
    fn allocator(&self) -> &Arc<dyn PoolAllocator>;
}

/// Identifies a reclamation scheme (the paper's ten plus the token
/// variants and the leaky baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SmrKind {
    None,
    Qsbr,
    Rcu,
    Debra,
    TokenNaive,
    TokenPassFirst,
    TokenPeriodic,
    Hp,
    He,
    Ibr,
    Nbr,
    NbrPlus,
    Wfe,
}

impl SmrKind {
    /// The ten schemes of the paper's Experiment 2 (Fig. 11b), in its
    /// display order. `TokenPeriodic` is the "token" row (token_af when
    /// amortized).
    pub const EXPERIMENT2: [SmrKind; 10] = [
        SmrKind::Debra,
        SmrKind::He,
        SmrKind::Hp,
        SmrKind::Ibr,
        SmrKind::Nbr,
        SmrKind::NbrPlus,
        SmrKind::Qsbr,
        SmrKind::Rcu,
        SmrKind::TokenPeriodic,
        SmrKind::Wfe,
    ];

    /// Base name without free-mode suffix.
    pub fn base_name(self) -> &'static str {
        match self {
            SmrKind::None => "none",
            SmrKind::Qsbr => "qsbr",
            SmrKind::Rcu => "rcu",
            SmrKind::Debra => "debra",
            SmrKind::TokenNaive => "token_naive",
            SmrKind::TokenPassFirst => "token_passfirst",
            SmrKind::TokenPeriodic => "token",
            SmrKind::Hp => "hp",
            SmrKind::He => "he",
            SmrKind::Ibr => "ibr",
            SmrKind::Nbr => "nbr",
            SmrKind::NbrPlus => "nbr+",
            SmrKind::Wfe => "wfe",
        }
    }

    /// Parses a base name (as printed by [`base_name`](Self::base_name)).
    pub fn parse(s: &str) -> Option<SmrKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "leak" => Some(SmrKind::None),
            "qsbr" => Some(SmrKind::Qsbr),
            "rcu" | "ebr" => Some(SmrKind::Rcu),
            "debra" => Some(SmrKind::Debra),
            "token_naive" => Some(SmrKind::TokenNaive),
            "token_passfirst" => Some(SmrKind::TokenPassFirst),
            "token" | "token_periodic" => Some(SmrKind::TokenPeriodic),
            "hp" => Some(SmrKind::Hp),
            "he" => Some(SmrKind::He),
            "ibr" => Some(SmrKind::Ibr),
            "nbr" => Some(SmrKind::Nbr),
            "nbr+" | "nbrplus" => Some(SmrKind::NbrPlus),
            "wfe" => Some(SmrKind::Wfe),
            _ => None,
        }
    }
}

/// RAII operation guard: `begin_op` on creation, `end_op` on drop.
///
/// ```
/// use epic_alloc::{build_allocator, AllocatorKind, CostModel};
/// use epic_smr::{build_smr, OpGuard, SmrConfig, SmrKind};
/// use std::sync::Arc;
///
/// let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
/// let smr = build_smr(SmrKind::Debra, Arc::clone(&alloc), SmrConfig::new(1));
/// {
///     let guard = OpGuard::new(&*smr, 0);
///     // ... traverse; retire through the guard ...
///     let p = alloc.alloc(0, 64);
///     guard.retire(p);
/// } // end_op here
/// smr.quiesce_and_drain();
/// assert_eq!(smr.stats().freed + smr.stats().garbage, 1);
/// ```
pub struct OpGuard<'a> {
    smr: &'a dyn Smr,
    tid: Tid,
}

impl<'a> OpGuard<'a> {
    /// Begins an operation for `tid`.
    pub fn new(smr: &'a dyn Smr, tid: Tid) -> Self {
        smr.begin_op(tid);
        OpGuard { smr, tid }
    }

    /// The guarded thread id.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Publishes protection for a pointer (see [`Smr::protect`]).
    pub fn protect(&self, slot: usize, ptr: usize) {
        self.smr.protect(self.tid, slot, ptr);
    }

    /// Neutralization poll (see [`Smr::poll_restart`]).
    pub fn poll_restart(&self) -> bool {
        self.smr.poll_restart(self.tid)
    }

    /// Retires an unlinked node through the guarded scheme.
    pub fn retire(&self, ptr: NonNull<u8>) {
        self.smr.retire(self.tid, ptr);
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.smr.end_op(self.tid);
    }
}

/// Builds a reclamation scheme over `alloc` with configuration `cfg`.
pub fn build_smr(kind: SmrKind, alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Arc<dyn Smr> {
    match kind {
        SmrKind::None => Arc::new(schemes::leak::LeakSmr::new(alloc, cfg)),
        SmrKind::Qsbr => Arc::new(schemes::qsbr::QsbrSmr::new(alloc, cfg)),
        SmrKind::Rcu => Arc::new(schemes::rcu::RcuSmr::new(alloc, cfg)),
        SmrKind::Debra => Arc::new(schemes::debra::DebraSmr::new(alloc, cfg)),
        SmrKind::TokenNaive => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::Naive,
        )),
        SmrKind::TokenPassFirst => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::PassFirst,
        )),
        SmrKind::TokenPeriodic => Arc::new(schemes::token::TokenSmr::new(
            alloc,
            cfg,
            schemes::token::TokenVariant::Periodic,
        )),
        SmrKind::Hp => Arc::new(schemes::hp::HpSmr::new(alloc, cfg)),
        SmrKind::He => Arc::new(schemes::he::HeSmr::new(alloc, cfg)),
        SmrKind::Ibr => Arc::new(schemes::ibr::IbrSmr::new(alloc, cfg)),
        SmrKind::Nbr => Arc::new(schemes::nbr::NbrSmr::new(alloc, cfg, false)),
        SmrKind::NbrPlus => Arc::new(schemes::nbr::NbrSmr::new(alloc, cfg, true)),
        SmrKind::Wfe => Arc::new(schemes::wfe::WfeSmr::new(alloc, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_roundtrip() {
        for kind in [
            SmrKind::None,
            SmrKind::Qsbr,
            SmrKind::Rcu,
            SmrKind::Debra,
            SmrKind::TokenNaive,
            SmrKind::TokenPassFirst,
            SmrKind::TokenPeriodic,
            SmrKind::Hp,
            SmrKind::He,
            SmrKind::Ibr,
            SmrKind::Nbr,
            SmrKind::NbrPlus,
            SmrKind::Wfe,
        ] {
            assert_eq!(SmrKind::parse(kind.base_name()), Some(kind), "{kind:?}");
        }
        assert_eq!(SmrKind::parse("unknown"), None);
    }

    #[test]
    fn experiment2_has_ten_schemes() {
        assert_eq!(SmrKind::EXPERIMENT2.len(), 10);
        let set: std::collections::HashSet<_> = SmrKind::EXPERIMENT2.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
