//! Scheme configuration: free mode, bag sizes, scan frequencies.

use epic_timeline::{Recorder, Series};
use std::sync::Arc;

/// How a scheme disposes of a batch of objects once they are *safe*.
///
/// This is the paper's central dial (§3.3): `Batch` is the traditional
/// free-it-all-now approach that triggers the remote-batch-free problem;
/// `Amortized` is the paper's fix — park the batch and free `per_op`
/// objects at each subsequent operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeMode {
    /// Free the whole safe batch immediately.
    Batch,
    /// Queue the safe batch; free `per_op` objects per operation.
    ///
    /// §7: "In data structures that free more than one object per operation
    /// on average, amortized freeing should be tuned to free more than one
    /// object per operation" — `per_op` is that tuning knob (1 for the
    /// ABtree, 2 for the DGT tree).
    Amortized {
        /// Objects drained from the freeable list per operation.
        per_op: usize,
    },
    /// Hand safe batches to a dedicated background thread that frees them.
    ///
    /// Implements the Mitake et al. suggestion the paper's §6 rebuts:
    /// "moving batch freeing to a background thread appears to be
    /// insufficient to avoid the RBF problem. Batch freeing is, itself,
    /// the problem." The background thread batch-frees through its own
    /// thread cache, so the flush storms simply move there — the
    /// `ablation_background_free` bench quantifies it.
    ///
    /// Requires the allocator to be built for `max_threads + 1` tids (the
    /// extra tid belongs to the reclaimer thread).
    Background,
    /// Object pooling: park safe batches in per-thread, per-size-class
    /// pools and serve subsequent *allocations* from them directly,
    /// avoiding the allocator almost entirely.
    ///
    /// This is the optimization the paper's §3.3 deliberately does **not**
    /// perform ("we want to show that we can make interaction with the
    /// allocator fast — not avoid it") and footnote 4's explanation for
    /// why pooling reclaimers like VBR outperform allocator-interacting
    /// EBRs. Implemented here as an extension so the `ablation_pooled`
    /// bench can quantify exactly how much of AF's benefit pooling also
    /// captures — and at what cost in allocator-invisible held memory.
    Pooled,
    /// Online per-thread control of the batch-free knobs.
    ///
    /// The paper's thesis is that every *fixed* batch-free configuration is
    /// harmful somewhere; this mode stops fixing it. Each thread runs an
    /// [`AdaptiveCtrl`](crate::adaptive::AdaptiveCtrl) that retunes its
    /// limbo-bag cap and amortized drain rate at scan/drain boundaries from
    /// signals the stats layer already collects (garbage gauge, sampled
    /// drain latency, allocator flush pressure). `cfg.bag_cap` and
    /// `cfg.af_backlog_cap` become the controller's *initial* operating
    /// point rather than a constant.
    Adaptive,
}

impl FreeMode {
    /// The default amortized mode (1 object per op, matching the ABtree).
    pub fn amortized() -> Self {
        FreeMode::Amortized { per_op: 1 }
    }

    /// Suffix appended to scheme names (`""`, `"_af"`, `"_bg"`, `"_pool"`
    /// or `"_adapt"`).
    pub fn suffix(&self) -> &'static str {
        match self {
            FreeMode::Batch => "",
            FreeMode::Amortized { .. } => "_af",
            FreeMode::Background => "_bg",
            FreeMode::Pooled => "_pool",
            FreeMode::Adaptive => "_adapt",
        }
    }

    /// True for the amortized variant.
    pub fn is_amortized(&self) -> bool {
        matches!(self, FreeMode::Amortized { .. })
    }

    /// Parses a mode name as runbooks spell it: `"batch"`,
    /// `"amortized"`/`"af"` (per_op 1), `"background"`/`"bg"`,
    /// `"pooled"`/`"pool"`, `"adaptive"`/`"adapt"`.
    pub fn parse(s: &str) -> Option<FreeMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "batch" => Some(FreeMode::Batch),
            "amortized" | "af" => Some(FreeMode::Amortized { per_op: 1 }),
            "background" | "bg" => Some(FreeMode::Background),
            "pooled" | "pool" => Some(FreeMode::Pooled),
            "adaptive" | "adapt" => Some(FreeMode::Adaptive),
            _ => None,
        }
    }
}

/// Configuration shared by every scheme.
#[derive(Clone)]
pub struct SmrConfig {
    /// Number of participating threads (dense tids `0..max_threads`).
    pub max_threads: usize,
    /// Batch vs amortized freeing.
    pub mode: FreeMode,
    /// Limbo-bag capacity that triggers a reclamation attempt in
    /// threshold-based schemes (HP/HE/IBR/WFE/NBR/RCU). The paper's
    /// Experiment 2 uses 32 K nodes; the default here scales down with the
    /// machine (override with `EPIC_BAG_CAP`).
    pub bag_cap: usize,
    /// DEBRA: a thread checks one other thread's announcement every
    /// `epoch_check_every` operations (the paper's *k*).
    pub epoch_check_every: usize,
    /// Periodic Token-EBR: check for the token every this many frees
    /// (paper: 100).
    pub token_check_every: usize,
    /// Era-based schemes increment the global era every `era_freq` retires.
    pub era_freq: usize,
    /// Amortized-free backlog cap: when the freeable list exceeds this,
    /// `begin_op` drains extra objects (the "relief valve") so the backlog
    /// stays bounded even though the steady-state drain is coupled 1:1 to
    /// allocations. The occasional flushes this causes reproduce the
    /// paper's residual visible free calls (Fig. 3b, Appendix F).
    pub af_backlog_cap: usize,
    /// Hazard-pointer slots per thread.
    pub hp_slots: usize,
    /// Record individual `free` calls at least this long (ns) into the
    /// timeline recorder; `u64::MAX` disables per-call recording.
    pub free_call_record_ns: u64,
    /// Timeline recorder (pass a disabled one for throughput-only runs).
    pub recorder: Arc<Recorder>,
    /// Per-epoch garbage series (the lower panels of Figs. 4, 6–9);
    /// `None` disables sampling.
    pub garbage_series: Option<Arc<Series>>,
}

impl SmrConfig {
    /// Baseline configuration for `max_threads` threads: batch freeing, no
    /// timeline recording.
    pub fn new(max_threads: usize) -> Self {
        let bag_cap = epic_util::topology::env_usize("EPIC_BAG_CAP", 4096);
        SmrConfig {
            max_threads,
            mode: FreeMode::Batch,
            bag_cap,
            epoch_check_every: 100,
            token_check_every: 100,
            era_freq: 64,
            // The relief valve has its own knob; it defaults to the
            // (possibly overridden) bag cap. It used to silently alias
            // EPIC_BAG_CAP, making the valve untunable on its own.
            af_backlog_cap: epic_util::topology::env_usize("EPIC_AF_BACKLOG_CAP", bag_cap),
            hp_slots: 8,
            free_call_record_ns: u64::MAX,
            recorder: Arc::new(Recorder::disabled(max_threads)),
            garbage_series: None,
        }
    }

    /// Switches to amortized freeing with `per_op` frees per operation.
    pub fn with_amortized(mut self, per_op: usize) -> Self {
        self.mode = FreeMode::Amortized { per_op };
        self
    }

    /// Sets the free mode.
    pub fn with_mode(mut self, mode: FreeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the limbo-bag capacity.
    pub fn with_bag_cap(mut self, cap: usize) -> Self {
        self.bag_cap = cap;
        self
    }

    /// Sets the amortized-free backlog cap (the relief-valve threshold).
    pub fn with_af_backlog_cap(mut self, cap: usize) -> Self {
        self.af_backlog_cap = cap;
        self
    }

    /// Attaches a timeline recorder.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = recorder;
        self
    }

    /// Attaches a garbage series.
    pub fn with_garbage_series(mut self, series: Arc<Series>) -> Self {
        self.garbage_series = Some(series);
        self
    }

    /// Enables per-call free recording above `ns`.
    pub fn with_free_call_recording(mut self, ns: u64) -> Self {
        self.free_call_record_ns = ns;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_suffixes() {
        assert_eq!(FreeMode::Batch.suffix(), "");
        assert_eq!(FreeMode::amortized().suffix(), "_af");
        assert_eq!(FreeMode::Adaptive.suffix(), "_adapt");
        assert!(FreeMode::amortized().is_amortized());
        assert!(!FreeMode::Batch.is_amortized());
        assert!(!FreeMode::Adaptive.is_amortized());
    }

    #[test]
    fn builder_chain() {
        let cfg = SmrConfig::new(4)
            .with_amortized(2)
            .with_bag_cap(128)
            .with_af_backlog_cap(512)
            .with_free_call_recording(1000);
        assert_eq!(cfg.max_threads, 4);
        assert_eq!(cfg.mode, FreeMode::Amortized { per_op: 2 });
        assert_eq!(cfg.bag_cap, 128);
        assert_eq!(cfg.af_backlog_cap, 512);
        assert_eq!(cfg.free_call_record_ns, 1000);
    }

    // Regression: af_backlog_cap read EPIC_BAG_CAP instead of its own
    // EPIC_AF_BACKLOG_CAP, so the relief valve silently tracked the bag
    // cap and could not be tuned independently. Each test uses its own
    // env key; these two are only read here (SmrConfig::new reads the
    // real keys, so we pin the default/fallback relationship instead of
    // mutating the shared environment).

    #[test]
    fn af_backlog_cap_defaults_to_bag_cap() {
        // With neither env var set, both knobs share the 4096 default.
        if std::env::var("EPIC_BAG_CAP").is_err() && std::env::var("EPIC_AF_BACKLOG_CAP").is_err() {
            let cfg = SmrConfig::new(2);
            assert_eq!(cfg.af_backlog_cap, cfg.bag_cap);
        }
    }

    #[test]
    fn af_backlog_cap_reads_its_own_env_var() {
        // Pin the fix itself: EPIC_AF_BACKLOG_CAP (not EPIC_BAG_CAP) feeds
        // the relief valve. The value is deliberately *larger* than every
        // default so a concurrently-constructed SmrConfig in another test
        // only sees a laxer valve, never a tighter one.
        if std::env::var("EPIC_AF_BACKLOG_CAP").is_err() {
            std::env::set_var("EPIC_AF_BACKLOG_CAP", "123456");
            let cfg = SmrConfig::new(2);
            std::env::remove_var("EPIC_AF_BACKLOG_CAP");
            assert_eq!(cfg.af_backlog_cap, 123456);
            // bag_cap is unaffected by the AF knob.
            assert_ne!(cfg.bag_cap, 123456);
        }
    }

    #[test]
    fn free_mode_parse_round_trips_suffix_spellings() {
        assert_eq!(FreeMode::parse("batch"), Some(FreeMode::Batch));
        assert_eq!(
            FreeMode::parse("amortized"),
            Some(FreeMode::Amortized { per_op: 1 })
        );
        assert_eq!(
            FreeMode::parse("af"),
            Some(FreeMode::Amortized { per_op: 1 })
        );
        assert_eq!(FreeMode::parse("bg"), Some(FreeMode::Background));
        assert_eq!(FreeMode::parse(" Pool "), Some(FreeMode::Pooled));
        assert_eq!(FreeMode::parse("adapt"), Some(FreeMode::Adaptive));
        assert_eq!(FreeMode::parse("nope"), None);
    }

    #[test]
    fn af_backlog_cap_is_independent_of_bag_cap_builder() {
        // Tuning one knob must not move the other.
        let cfg = SmrConfig::new(2).with_bag_cap(64).with_af_backlog_cap(4096);
        assert_eq!(cfg.bag_cap, 64);
        assert_eq!(cfg.af_backlog_cap, 4096);
        let cfg = SmrConfig::new(2).with_af_backlog_cap(7).with_bag_cap(9999);
        assert_eq!(cfg.af_backlog_cap, 7);
    }
}
