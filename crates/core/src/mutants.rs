//! Seeded mutants: deliberately broken protocol variants the model
//! checker must catch.
//!
//! The checker (`crates/check`) proves its teeth by killing these: each
//! mask bit, when set in the model's context (`epic_check::ctx`),
//! flips one known-load-bearing line of the reclamation protocols into
//! a subtly wrong variant. The model tests in
//! `crates/core/tests/model_check.rs` assert that exploration *fails*
//! with the bit set and *passes* without it.
//!
//! In normal builds (no `--cfg epic_model_check`) both helpers fold to
//! compile-time constants — [`active`] is `false`, [`ord`] is the
//! identity — so the hooks cost nothing and the hot-path code carries
//! no `#[cfg]` noise at the call sites.

use crate::sync::Ordering;

/// hp: publish the hazard slot with `Relaxed` instead of `SeqCst`. The
/// publish can then sit in the store buffer past the re-read
/// validation, so a concurrent scanner misses the hazard and frees a
/// protected block (Michael's classic requirement).
pub const M_HP_PUBLISH_RELAXED: u64 = 1;

/// ibr: bump the reservation upper bound with `Relaxed` instead of
/// `SeqCst`. A concurrent retirer's overlap scan can miss the extended
/// interval and free a block the reader is about to use.
pub const M_IBR_BUMP_RELAXED: u64 = 1 << 1;

/// qsbr: `detach` forgets to announce OFFLINE. The departed thread
/// pins the fuzzy barrier forever, the global epoch stops advancing and
/// nothing is ever freed (a liveness failure the free-progress oracle
/// sees as a zero freed-delta).
pub const M_QSBR_DETACH_SKIP: u64 = 1 << 2;

/// RetiredList: `append` (the limbo-bag splice) forgets to reset the
/// source list, leaving both lists owning the same intrusive chain —
/// the double-free the free-count==1 oracle exists to catch.
pub const M_SPLICE_KEEP_SOURCE: u64 = 1 << 3;

/// Whether mutant `mask` is active in the current model-check run.
/// Always `false` in normal builds.
#[cfg(epic_model_check)]
#[inline]
pub fn active(mask: u64) -> bool {
    epic_check::ctx() & mask != 0
}

/// Whether mutant `mask` is active in the current model-check run.
/// Always `false` in normal builds.
#[cfg(not(epic_model_check))]
#[inline(always)]
pub fn active(_mask: u64) -> bool {
    false
}

/// The memory ordering a hook site should use: `default` normally,
/// `Relaxed` when mutant `mask` is active. Identity in normal builds.
#[inline(always)]
pub fn ord(mask: u64, default: Ordering) -> Ordering {
    if active(mask) {
        Ordering::Relaxed
    } else {
        default
    }
}
