//! The adaptive batch-free controller behind
//! [`FreeMode::Adaptive`](crate::config::FreeMode::Adaptive).
//!
//! The paper's finding is that every *fixed* batch-free configuration is
//! harmful somewhere: small limbo bags scan too often, big ones batch-free
//! through the allocator's thread cache and trigger flush storms, and the
//! right amortized drain rate depends on the workload's retire/alloc
//! balance (§7). This module stops picking constants. Each thread owns an
//! [`AdaptiveCtrl`] that retunes two knobs — the limbo-bag cap and the
//! amortized drain rate — from signals the stats layer already collects:
//!
//! * **allocator flush pressure** — `flushes` from
//!   [`epic_alloc::ThreadAllocStats`]: a flush inside a control window
//!   means freeing outran the thread cache, the remote-batch-free problem
//!   in miniature;
//! * **the garbage gauge** — the thread's own
//!   [`garbage`](crate::smr_stats::ThreadSmrCounters::garbage) gauge (and
//!   its peak watermark), which bounds how much memory the knobs are
//!   allowed to park in limbo;
//! * **sampled drain latency** — the 1-in-64
//!   [`on_drain_tick`](crate::smr_stats::ThreadSmrCounters::on_drain_tick)
//!   timing of the amortized drain: a per-object free that suddenly costs
//!   multiples of last window's means drains started hitting the
//!   allocator's slow path;
//! * **scan frequency** — reclamation scans per window: frequent scans
//!   with no flush pressure mean the bag cap is wastefully small.
//!
//! **Fast-path cost budget.** Nothing here runs per operation. The retire
//! fast path reads one `usize` (the current cap) from the thread's own
//! controller slot; [`AdaptiveCtrl::update`] runs only at batch-disposal
//! boundaries (a reclamation scan or epoch advance just happened, i.e. we
//! are already off the per-op path), does integer arithmetic on a few
//! `Copy` fields, and allocates nothing — the counting-allocator
//! microbench asserts the whole mode stays at zero steady-state heap
//! allocations.
//!
//! **Update rule** (AIMD, documented in DESIGN.md §10): multiplicative
//! decrease of the cap on flush pressure or a drain-latency spike;
//! additive-ish increase either when scans are frequent and the allocator
//! is quiet (epoch-style schemes can see several scans per disposal
//! window), or — for threshold schemes, whose disposal *is* the scan, so
//! the scan counter advances exactly once per window — after a streak of
//! quiet windows, recovering toward the *configured* cap but never past it
//! without genuine scan pressure. The drain rate rises while the freeable
//! backlog grows and decays back toward 1 when the backlog clears. A
//! garbage budget (a multiple of the configured cap) overrides growth so
//! limbo memory stays bounded. The relief valve
//! ([`SmrConfig::af_backlog_cap`]) is deliberately *not* a controlled
//! knob: it is the operator's hard backstop, and tying it to a shrinking
//! cap would convert allocator pressure into per-op inline frees on
//! schemes whose disposal cadence the cap does not govern.

use crate::config::SmrConfig;

/// Hard ceiling for the amortized drain rate. Draining more than this per
/// allocation stops being "amortized" and becomes the batch-free spike the
/// mode exists to avoid (§7 tunes per-op counts of 1–2).
pub const PER_OP_MAX: usize = 8;

/// Multiplier on the *configured* bag cap that bounds how far the
/// controller may grow the cap (and, at 4×, how much garbage it tolerates
/// before forcing the cap back down).
pub const CAP_GROWTH_LIMIT: usize = 8;

/// Consecutive quiet windows (no flush, no latency spike) before a
/// previously shrunk cap starts recovering toward the configured one.
pub const QUIET_RECOVERY_WINDOWS: u32 = 8;

/// One control window's worth of signals, sampled at a batch-disposal
/// boundary. All fields are cheap owner-thread reads: `Cell` loads from
/// the thread's own stats block and a stack snapshot of its allocator
/// counters — no heap allocation, no cross-thread traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtrlSignals {
    /// Current freeable-list backlog (objects parked for amortized
    /// draining).
    pub backlog: usize,
    /// The thread's own unreclaimed-garbage gauge.
    pub garbage: u64,
    /// Monotone allocator flush count for this thread
    /// ([`epic_alloc::ThreadAllocStats::flushes`]).
    pub flushes: u64,
    /// Monotone reclamation-scan count for this thread.
    pub scans: u64,
    /// Monotone sampled free time for this thread (ns, extrapolated by the
    /// 1-in-64 sample period).
    pub free_ns: u64,
    /// Monotone freed-object count for this thread.
    pub freed: u64,
}

/// Per-thread online controller for the batch-free knobs.
///
/// Owned by one thread (stored in a `TidSlots` slot under the SMR layer's
/// tid-exclusivity contract); all methods are plain field arithmetic.
#[derive(Debug, Clone)]
pub struct AdaptiveCtrl {
    per_op: usize,
    bag_cap: usize,
    /// The configured cap — the recovery target after pressure clears.
    start_cap: usize,
    min_cap: usize,
    max_cap: usize,
    /// The configured relief-valve threshold (`SmrConfig::af_backlog_cap`);
    /// constant, see the module docs for why it is not a controlled knob.
    relief_cap: usize,
    /// Quiet windows since the last pressure event.
    quiet_windows: u32,
    /// Garbage budget: gauge beyond this forces the cap down regardless of
    /// scan pressure.
    garbage_budget: u64,
    /// Previous-window monotone baselines (deltas are the window signals).
    last_flushes: u64,
    last_scans: u64,
    last_free_ns: u64,
    last_freed: u64,
    last_backlog: usize,
    /// Previous window's mean per-object drain cost (ns), for spike
    /// detection; 0 until a window actually freed something.
    last_drain_ns_per_obj: u64,
    updates: u64,
    adjustments: u64,
}

impl AdaptiveCtrl {
    /// A controller whose initial operating point is the configured static
    /// knobs: `cfg.bag_cap` as the starting cap (also anchoring the
    /// min/max bounds and garbage budget) and a drain rate of 1.
    pub fn new(cfg: &SmrConfig) -> Self {
        let start = cfg.bag_cap.max(1);
        let min_cap = (start / CAP_GROWTH_LIMIT).max(32).min(start);
        let max_cap = start.saturating_mul(CAP_GROWTH_LIMIT);
        AdaptiveCtrl {
            per_op: 1,
            bag_cap: start,
            start_cap: start,
            min_cap,
            max_cap,
            relief_cap: cfg.af_backlog_cap.max(1),
            quiet_windows: 0,
            garbage_budget: (max_cap as u64).saturating_mul(4),
            last_flushes: 0,
            last_scans: 0,
            last_free_ns: 0,
            last_freed: 0,
            last_backlog: 0,
            last_drain_ns_per_obj: 0,
            updates: 0,
            adjustments: 0,
        }
    }

    /// The current limbo-bag cap (the threshold schemes' scan trigger).
    #[inline]
    pub fn bag_cap(&self) -> usize {
        self.bag_cap
    }

    /// The current amortized drain rate (objects per allocation).
    #[inline]
    pub fn per_op(&self) -> usize {
        self.per_op
    }

    /// The backlog level at which `begin_op` drains extra objects: the
    /// configured [`SmrConfig::af_backlog_cap`]. Constant by design — the
    /// relief valve is the operator's backstop, not a tuned knob (see the
    /// module docs).
    #[inline]
    pub fn relief_cap(&self) -> usize {
        self.relief_cap
    }

    /// Control windows processed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Windows in which at least one knob actually moved — a stabilized
    /// controller keeps `updates` rising while this stays put.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Consumes one control window and retunes the knobs. Returns `true`
    /// if either knob moved.
    ///
    /// Runs at batch-disposal boundaries only (never per-op); pure integer
    /// arithmetic on `self`, no allocation.
    pub fn update(&mut self, s: CtrlSignals) -> bool {
        self.updates += 1;
        let d_flushes = s.flushes.wrapping_sub(self.last_flushes);
        let d_scans = s.scans.wrapping_sub(self.last_scans);
        let d_free_ns = s.free_ns.wrapping_sub(self.last_free_ns);
        let d_freed = s.freed.wrapping_sub(self.last_freed);
        let drain_ns_per_obj = d_free_ns.checked_div(d_freed).unwrap_or(0);

        let (old_cap, old_per_op) = (self.bag_cap, self.per_op);

        // --- drain rate: track the backlog. ---
        // The alloc-coupled drain services arrivals at exactly rate 1; a
        // growing backlog means this workload retires more than one object
        // per allocation, so raise the rate (×2, capped). A near-empty
        // backlog means we overshot: decay back toward 1.
        if s.backlog > self.relief_cap() && s.backlog > self.last_backlog {
            self.per_op = (self.per_op * 2).min(PER_OP_MAX);
        } else if s.backlog < self.bag_cap / 4 && self.per_op > 1 {
            self.per_op -= 1;
        }

        // --- bag cap: balance flush pressure against scan frequency. ---
        // A flush inside the window (or a per-object drain cost that
        // spiked to 2× last window's) says reclamation is overrunning the
        // thread cache: halve the cap so safe batches shrink. Otherwise,
        // several scans in one window with a quiet allocator says the cap
        // is wastefully small: grow it by a quarter. Threshold schemes
        // dispose exactly once per scan, so their scan delta is pinned at
        // 1 and the multi-scan branch can never fire — for them, a quiet
        // streak instead recovers a shrunk cap toward the configured
        // operating point (never past it without genuine scan pressure).
        let latency_spike = self.last_drain_ns_per_obj > 0
            && drain_ns_per_obj > self.last_drain_ns_per_obj.saturating_mul(2);
        if d_flushes > 0 || latency_spike {
            self.bag_cap = (self.bag_cap / 2).max(self.min_cap);
            self.quiet_windows = 0;
        } else {
            self.quiet_windows = self.quiet_windows.saturating_add(1);
            if d_scans >= 4 {
                self.bag_cap = (self.bag_cap + self.bag_cap / 4).min(self.max_cap);
            } else if self.quiet_windows >= QUIET_RECOVERY_WINDOWS && self.bag_cap < self.start_cap
            {
                self.bag_cap = (self.bag_cap + (self.bag_cap / 4).max(1)).min(self.start_cap);
                self.quiet_windows = 0;
            }
        }

        // --- garbage budget: bound limbo memory. ---
        // Growth never gets to park unbounded garbage: past the budget the
        // cap halves no matter what the scan counter wanted.
        if s.garbage > self.garbage_budget {
            self.bag_cap = (self.bag_cap / 2).max(self.min_cap);
        }

        self.last_flushes = s.flushes;
        self.last_scans = s.scans;
        self.last_free_ns = s.free_ns;
        self.last_freed = s.freed;
        self.last_backlog = s.backlog;
        if d_freed > 0 {
            self.last_drain_ns_per_obj = drain_ns_per_obj;
        }

        let changed = self.bag_cap != old_cap || self.per_op != old_per_op;
        if changed {
            self.adjustments += 1;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bag_cap: usize) -> SmrConfig {
        SmrConfig::new(2)
            .with_bag_cap(bag_cap)
            .with_af_backlog_cap(bag_cap * 4)
    }

    /// A synthetic workload: monotone counters advanced by per-window
    /// rates, fed to the controller like `dispose` would.
    struct Sim {
        ctrl: AdaptiveCtrl,
        s: CtrlSignals,
    }

    impl Sim {
        fn new(bag_cap: usize) -> Self {
            Sim {
                ctrl: AdaptiveCtrl::new(&cfg(bag_cap)),
                s: CtrlSignals::default(),
            }
        }

        /// One window: advance the monotone counters by the given rates
        /// and run the controller.
        fn window(&mut self, backlog: usize, garbage: u64, flushes: u64, scans: u64) -> bool {
            self.s.backlog = backlog;
            self.s.garbage = garbage;
            self.s.flushes += flushes;
            self.s.scans += scans;
            // Benign drain cost: 100 ns/object, no spikes.
            self.s.freed += 64;
            self.s.free_ns += 6_400;
            self.ctrl.update(self.s)
        }
    }

    #[test]
    fn initial_operating_point_is_the_configured_knobs() {
        let c = AdaptiveCtrl::new(&cfg(4096));
        assert_eq!(c.bag_cap(), 4096);
        assert_eq!(c.per_op(), 1);
        assert_eq!(c.relief_cap(), 4 * 4096);
        assert_eq!(c.updates(), 0);
    }

    #[test]
    fn steady_workload_stabilizes() {
        let mut sim = Sim::new(1024);
        // A steady workload: modest backlog, bounded garbage, no flushes,
        // one scan per window.
        for _ in 0..8 {
            sim.window(512, 1000, 0, 1);
        }
        let (cap, per_op, adj) = (
            sim.ctrl.bag_cap(),
            sim.ctrl.per_op(),
            sim.ctrl.adjustments(),
        );
        // Convergence: further identical windows change nothing.
        for _ in 0..32 {
            assert!(
                !sim.window(512, 1000, 0, 1),
                "knobs moved on a steady workload"
            );
        }
        assert_eq!(sim.ctrl.bag_cap(), cap);
        assert_eq!(sim.ctrl.per_op(), per_op);
        assert_eq!(
            sim.ctrl.adjustments(),
            adj,
            "stable == no further adjustments"
        );
        assert_eq!(sim.ctrl.updates(), 40, "windows keep being consumed");
    }

    #[test]
    fn flush_pressure_shrinks_cap_then_scan_pressure_regrows_it() {
        let mut sim = Sim::new(4096);
        // Phase 1: allocator flushes every window — the cap must come down.
        for _ in 0..6 {
            sim.window(100, 1000, 2, 1);
        }
        let shrunk = sim.ctrl.bag_cap();
        assert!(
            shrunk < 4096,
            "flush pressure must shrink the cap: {shrunk}"
        );
        // Phase 2 (phase shift): allocator quiet, scans frequent — the
        // controller must re-track upward.
        for _ in 0..20 {
            sim.window(100, 1000, 0, 8);
        }
        assert!(
            sim.ctrl.bag_cap() > shrunk,
            "scan pressure with a quiet allocator must regrow the cap"
        );
        assert!(sim.ctrl.bag_cap() <= 4096 * CAP_GROWTH_LIMIT);
    }

    #[test]
    fn cap_recovers_to_configured_point_after_pressure_clears() {
        let mut sim = Sim::new(4096);
        // Sustained flush pressure shrinks the cap well below the
        // configured point.
        for _ in 0..8 {
            sim.window(100, 1000, 2, 1);
        }
        let shrunk = sim.ctrl.bag_cap();
        assert!(shrunk < 4096, "flush pressure must shrink the cap");
        // A long quiet stretch with exactly one scan per window — the
        // threshold-scheme shape, where the multi-scan growth branch can
        // never fire. The cap must climb back to, and not past, the
        // configured operating point.
        for _ in 0..400 {
            sim.window(100, 1000, 0, 1);
        }
        assert_eq!(
            sim.ctrl.bag_cap(),
            4096,
            "quiet windows must recover the configured cap exactly"
        );
    }

    #[test]
    fn backlog_growth_raises_drain_rate_and_decay_returns_it() {
        let mut sim = Sim::new(256);
        // Backlog above the relief cap and growing: rate doubles per
        // window up to the ceiling.
        let mut backlog = 3000;
        for _ in 0..6 {
            backlog += 1000;
            sim.window(backlog, backlog as u64, 0, 1);
        }
        assert_eq!(sim.ctrl.per_op(), PER_OP_MAX);
        // Backlog cleared: the rate decays back to 1.
        for _ in 0..16 {
            sim.window(0, 0, 0, 1);
        }
        assert_eq!(sim.ctrl.per_op(), 1);
    }

    #[test]
    fn garbage_budget_overrides_growth() {
        let mut sim = Sim::new(512);
        // Scan pressure wants growth, but the garbage gauge is far past
        // the budget: the cap must fall to the floor instead.
        let budget_blown = (512 * CAP_GROWTH_LIMIT * 8) as u64;
        for _ in 0..20 {
            sim.window(100, budget_blown, 0, 8);
        }
        assert_eq!(
            sim.ctrl.bag_cap(),
            (512 / CAP_GROWTH_LIMIT).max(32),
            "budget violation pins the cap at the floor"
        );
    }

    #[test]
    fn drain_latency_spike_shrinks_cap() {
        let mut c = AdaptiveCtrl::new(&cfg(4096));
        let mut s = CtrlSignals {
            backlog: 100,
            garbage: 100,
            ..Default::default()
        };
        // Window 1: baseline drain cost of 100 ns/object.
        s.freed = 64;
        s.free_ns = 6_400;
        c.update(s);
        assert_eq!(c.bag_cap(), 4096);
        // Window 2: cost jumps to 1 µs/object (allocator slow path).
        s.freed += 64;
        s.free_ns += 64_000;
        c.update(s);
        assert_eq!(c.bag_cap(), 2048, "latency spike must halve the cap");
    }

    #[test]
    fn cap_respects_bounds() {
        let mut sim = Sim::new(256);
        for _ in 0..64 {
            sim.window(0, 0, 4, 0); // relentless flush pressure
        }
        assert_eq!(sim.ctrl.bag_cap(), 32.max(256 / CAP_GROWTH_LIMIT));
        let mut sim = Sim::new(256);
        for _ in 0..64 {
            sim.window(100, 100, 0, 8); // relentless scan pressure
        }
        assert_eq!(sim.ctrl.bag_cap(), 256 * CAP_GROWTH_LIMIT);
    }

    #[test]
    fn tiny_caps_keep_a_sane_floor() {
        // Schemes under test use caps as small as 4; the floor must not
        // exceed the starting cap.
        let c = AdaptiveCtrl::new(&cfg(4));
        assert_eq!(c.bag_cap(), 4);
        assert!(c.relief_cap() >= 4);
    }
}
