//! Hazard pointers (Michael, 2004) — `hp`.
//!
//! Per-thread announcement slots hold the addresses a thread may be about
//! to dereference. The data structure publishes via [`crate::RawSmr::protect`]
//! and *must* re-read the link to validate (`needs_validate() == true`);
//! reclamation scans all slots and frees only unannounced objects.
//!
//! The per-read store + SeqCst fencing is exactly why the paper finds hp
//! 7–9× slower than token_af on traversal-heavy trees (Fig. 11a), and its
//! scan-based reclamation still frees in batches — so it also benefits
//! (modestly, §5) from amortized freeing.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{fence, AtomicUsize, Ordering};
use epic_alloc::{PoolAllocator, Tid};
use epic_util::TidSlots;
use std::ptr::NonNull;
use std::sync::Arc;

struct HpThread {
    bag: RetiredList,
}

/// Hazard pointers. See module docs.
pub struct HpSmr {
    common: SchemeCommon,
    /// Flat slot array: `slots[tid * k + i]`.
    slots: Box<[AtomicUsize]>,
    k: usize,
    threads: TidSlots<HpThread>,
}

impl HpSmr {
    /// Builds the scheme with `cfg.hp_slots` hazard slots per thread.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        let k = cfg.hp_slots;
        HpSmr {
            slots: (0..n * k)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            k,
            threads: TidSlots::new_with(n, |_| HpThread {
                bag: RetiredList::new(),
            }),
            common: SchemeCommon::new("hp", alloc, cfg),
        }
    }

    /// Raw slot contents (tests).
    #[cfg(test)]
    pub(crate) fn slot_value(&self, tid: Tid, slot: usize) -> usize {
        self.slots[tid * self.k + slot].load(Ordering::Relaxed)
    }

    /// Scans all hazard slots and frees every bagged object that is not
    /// announced; announced objects stay in the bag for the next scan.
    /// The hazard snapshot lives in recycled scratch and the bag is
    /// partitioned in place, so a scan performs no heap allocation.
    fn scan_and_reclaim(&self, tid: Tid, state: &mut HpThread) {
        self.common.stats.get(tid).on_scan();
        // The fence pairs with the SeqCst protect stores: any protect that
        // precedes our scan in the SeqCst order is observed.
        fence(Ordering::SeqCst);
        let mut hazards = self.common.scratch(tid, self.slots.len());
        hazards.extend(
            self.slots
                .iter()
                .map(|s| s.load(Ordering::Acquire) as u64)
                .filter(|&p| p != 0),
        );
        hazards.sort_unstable();
        let mut freeable = RetiredList::new();
        state.bag.partition_into(
            |r| hazards.binary_search(&(r.addr() as u64)).is_ok(),
            &mut freeable,
        );
        self.common.scratch_done(tid, hazards);
        self.common.dispose(tid, &mut freeable);
    }
}

impl RawSmr for HpSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
    }

    fn end_op(&self, tid: Tid) {
        // Release the operation's hazards so scanners can reclaim.
        for i in 0..self.k {
            self.slots[tid * self.k + i].store(0, Ordering::Release);
        }
    }

    fn protect(&self, tid: Tid, slot: usize, ptr: usize) {
        debug_assert!(slot < self.k, "hazard slot {slot} out of range");
        // SeqCst: the announcement must be ordered before the caller's
        // validating re-read of the link (Michael's protocol).
        self.slots[tid * self.k + slot].store(ptr, Ordering::SeqCst);
    }

    fn needs_validate(&self) -> bool {
        true
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { state.bag.push_retire(ptr, 0) };
        let threshold = self
            .common
            .bag_cap(tid)
            .max(2 * self.k * self.common.n_threads());
        if state.bag.len() >= threshold {
            self.scan_and_reclaim(tid, state);
        }
    }

    fn detach(&self, tid: Tid) {
        // Drop all hazards permanently.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for s in self.slots.iter() {
            s.store(0, Ordering::Relaxed);
        }
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.bag);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, tid: Tid) -> SchemeLocal {
        // SAFETY: the slot array is owned by self, boxed (stable address),
        // and outlives every handle via the facade's Arc.
        unsafe { SchemeLocal::hazard_slots(&self.slots[tid * self.k..(tid + 1) * self.k]) }
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Hp
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreeMode;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize) -> (Arc<dyn PoolAllocator>, Arc<HpSmr>) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let cfg = SmrConfig::new(n).with_bag_cap(bag_cap);
        let smr = Arc::new(HpSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    #[test]
    fn protected_object_survives_scan() {
        let (alloc, smr) = setup(2, 4);
        let victim = alloc.alloc(0, 64);
        // Thread 1 protects the victim.
        smr.begin_op(1);
        smr.protect(1, 0, victim.as_ptr() as usize);
        // Thread 0 retires it plus enough filler to trigger scans.
        smr.begin_op(0);
        smr.retire(0, victim);
        for _ in 0..64 {
            let filler = alloc.alloc(0, 64);
            smr.retire(0, filler);
        }
        smr.end_op(0);
        let s = smr.stats();
        assert!(s.freed > 0, "filler must be reclaimed: {s:?}");
        assert!(s.scans > 0);
        // The victim is still protected: garbage >= 1.
        assert!(s.garbage >= 1);
        // Thread 1 releases; next scan frees the victim.
        smr.end_op(1);
        smr.begin_op(0);
        for _ in 0..64 {
            let filler = alloc.alloc(0, 64);
            smr.retire(0, filler);
        }
        smr.end_op(0);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn end_op_clears_slots() {
        let (alloc, smr) = setup(1, 2);
        let p = alloc.alloc(0, 64);
        smr.begin_op(0);
        smr.protect(0, 3, p.as_ptr() as usize);
        smr.end_op(0);
        assert!(smr.slots.iter().all(|s| s.load(Ordering::Relaxed) == 0));
        smr.begin_op(0);
        smr.retire(0, p);
        smr.end_op(0);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().freed, 1);
    }

    #[test]
    fn needs_validate_is_true() {
        let (_, smr) = setup(1, 2);
        assert!(smr.needs_validate());
    }

    #[test]
    fn af_mode_defers_scan_output() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let cfg = SmrConfig::new(1)
            .with_bag_cap(4)
            .with_mode(FreeMode::Amortized { per_op: 1 });
        let smr = HpSmr::new(Arc::clone(&alloc), cfg);
        for _ in 0..32 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
            smr.end_op(0);
        }
        // Scans happened, and AF ticks freed gradually.
        let s = smr.stats();
        assert!(s.scans > 0);
        assert!(s.freed > 0 && s.freed < 32, "gradual: {s:?}");
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().freed, 32);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        let (alloc, smr) = setup(4, 16);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for i in 0..3_000usize {
                        smr.begin_op(tid);
                        let p = alloc.alloc(tid, 64);
                        smr.protect(tid, i % 8, p.as_ptr() as usize);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 12_000);
        assert_eq!(s.freed, 12_000);
        assert_eq!(s.garbage, 0);
    }
}
