//! Classic per-operation epoch-based reclamation (`rcu`).
//!
//! The scheme Hart et al. call "epoch based reclamation" and the paper's
//! evaluation labels `rcu` \[20\]: each operation is a read-side critical
//! section announced in a shared array; a thread whose limbo bag crosses
//! the threshold scans all announcements and advances the global epoch if
//! every in-critical-section thread has announced the current one. Objects
//! retired in epoch *e* are freed once the global epoch reaches *e + 2*.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::schemes::EpochBag;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use epic_alloc::{PoolAllocator, Tid};
use epic_util::{CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Announcement encoding: `epoch << 1 | in_op`.
const IN_OP: u64 = 1;

struct RcuThread {
    bags: [EpochBag; 3],
    current_epoch: u64,
}

/// Per-operation EBR. See module docs.
pub struct RcuSmr {
    common: SchemeCommon,
    global_epoch: AtomicU64,
    announce: Box<[CachePadded<AtomicU64>]>,
    threads: TidSlots<RcuThread>,
}

impl RcuSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        RcuSmr {
            common: SchemeCommon::new("rcu", alloc, cfg),
            global_epoch: AtomicU64::new(2),
            announce: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            threads: TidSlots::new_with(n, |_| RcuThread {
                bags: Default::default(),
                current_epoch: 0,
            }),
        }
    }

    /// Frees every bag whose tag is ≤ `epoch − 2` and retags the reused
    /// slot for `epoch`.
    fn rotate(&self, tid: Tid, state: &mut RcuThread, epoch: u64) {
        for bag in &mut state.bags {
            if bag.epoch + 2 <= epoch && !bag.items.is_empty() {
                self.common.dispose(tid, &mut bag.items);
            }
        }
        state.current_epoch = epoch;
        let slot = &mut state.bags[(epoch % 3) as usize];
        debug_assert!(slot.items.is_empty() || slot.epoch + 2 > epoch);
        if slot.items.is_empty() {
            slot.epoch = epoch;
        }
    }

    /// Attempts to advance the global epoch: succeeds if every thread that
    /// is inside an operation has announced the current epoch.
    fn try_advance(&self, tid: Tid, epoch: u64) {
        for a in self.announce.iter() {
            let v = a.load(Ordering::SeqCst);
            if v & IN_OP == IN_OP && v >> 1 != epoch {
                return;
            }
        }
        if self
            .global_epoch
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            self.common.record_epoch_advance(tid, epoch + 1);
        }
    }
}

impl RawSmr for RcuSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        let e = self.global_epoch.load(Ordering::SeqCst);
        // SeqCst store: the announcement must be globally visible before
        // this thread reads any data-structure link, or a concurrent
        // advancing thread could miss it.
        self.announce[tid].store(e << 1 | IN_OP, Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if state.current_epoch != e {
            self.rotate(tid, state, e);
        }
    }

    fn end_op(&self, tid: Tid) {
        let v = self.announce[tid].load(Ordering::Relaxed);
        self.announce[tid].store(v & !IN_OP, Ordering::Release);
    }

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {}

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // Tag with a *fresh* read of the global epoch, not the thread's
        // announced epoch: if the epoch advanced mid-operation, a stale tag
        // would let the lag-2 free rule reclaim an object that a reader
        // announced in the newer epoch can still hold.
        let tag = self.global_epoch.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        let bag = &mut state.bags[(tag % 3) as usize];
        if bag.epoch != tag {
            // Previous contents of this slot are from tag−3 or older, hence
            // already ≥ 2 epochs stale: safe to dispose now.
            if !bag.items.is_empty() {
                debug_assert!(bag.epoch + 2 <= tag);
                self.common.dispose(tid, &mut bag.items);
            }
            bag.epoch = tag;
        }
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { bag.items.push_retire(ptr, 0) };
        if bag.items.len() >= self.common.bag_cap(tid) {
            self.try_advance(tid, self.global_epoch.load(Ordering::SeqCst));
        }
    }

    fn detach(&self, tid: Tid) {
        // A detached thread is permanently outside any critical section.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            for bag in &mut state.bags {
                self.common.free_batch_now(tid, &mut bag.items);
            }
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        SchemeLocal::passive()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Rcu
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize) -> (Arc<dyn PoolAllocator>, RcuSmr) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let smr = RcuSmr::new(Arc::clone(&alloc), SmrConfig::new(n).with_bag_cap(bag_cap));
        (alloc, smr)
    }

    #[test]
    fn single_thread_reclaims_after_two_epochs() {
        let (alloc, smr) = setup(1, 4);
        // Retire enough to force epoch advances; with one thread epochs
        // advance freely and memory gets reclaimed at rotations.
        for _ in 0..64 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
            smr.end_op(0);
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 64);
        assert_eq!(s.freed, 64);
        assert_eq!(s.garbage, 0);
        assert!(s.epochs > 0, "epochs should have advanced: {s:?}");
    }

    #[test]
    fn in_op_thread_blocks_advance() {
        let (alloc, smr) = setup(2, 2);
        // Thread 1 parks inside an operation at the current epoch... then
        // the epoch can advance at most once more (threads must re-announce
        // the *new* epoch for a further advance).
        smr.begin_op(1);
        let before = smr.stats().epochs;
        for _ in 0..32 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
            smr.end_op(0);
        }
        let advanced = smr.stats().epochs - before;
        assert!(
            advanced <= 1,
            "stalled reader must block advance, got {advanced}"
        );
        assert!(
            smr.stats().garbage > 0,
            "garbage must pile up behind the stalled reader"
        );
        smr.end_op(1);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn concurrent_stress_reclaims_most_garbage() {
        let (alloc, smr) = setup(4, 8);
        let smr = Arc::new(smr);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        smr.begin_op(tid);
                        let p = alloc.alloc(tid, 64);
                        smr.on_alloc(tid, p);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 20_000);
        assert_eq!(s.freed, 20_000);
        assert_eq!(s.garbage, 0);
        assert!(s.epochs > 2);
    }
}
