//! Wait-free eras (Nikolaev & Ravindran, PPoPP 2020) — `wfe`, simplified.
//!
//! Full WFE adds a wait-free helping protocol on top of hazard eras so that
//! `protect` completes in a bounded number of steps even under continuous
//! era advancement. This implementation reproduces WFE's *cost profile* —
//! the paper's evaluation point is that wfe, like he/hp, pays per-read
//! synchronization that dwarfs any batching gains — using HE-style era
//! reservations published through a **double-word announcement** (the
//! two-location handshake WFE uses on its slow path), making `protect`
//! strictly heavier than `he`'s single store:
//!
//! 1. write the era to the slot's *enter* word,
//! 2. `SeqCst` fence,
//! 3. write the era to the slot's *exit* word.
//!
//! A scanner treats a slot as reserving **both** words' eras (conservative:
//! a half-finished publication still protects). The reclamation-side behaviour
//! (bags, scans, batch vs amortized) is identical to hazard eras. The
//! deviation from the published wait-free helping protocol is documented in
//! DESIGN.md §2.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{fence, AtomicU64, Ordering};
use epic_alloc::block;
use epic_alloc::{PoolAllocator, Tid};
use epic_util::TidSlots;
use std::ptr::NonNull;
use std::sync::Arc;

const NONE: u64 = u64::MAX;

struct WfeThread {
    bag: RetiredList,
    retires_since_tick: usize,
}

/// Simplified wait-free eras. See module docs.
pub struct WfeSmr {
    common: SchemeCommon,
    era: AtomicU64,
    /// Two words per slot: `[enter, exit]` at `slots[(tid*k + i) * 2 ..]`.
    slots: Box<[AtomicU64]>,
    k: usize,
    threads: TidSlots<WfeThread>,
}

impl WfeSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        let k = cfg.hp_slots;
        WfeSmr {
            era: AtomicU64::new(1),
            slots: (0..n * k * 2)
                .map(|_| AtomicU64::new(NONE))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            k,
            threads: TidSlots::new_with(n, |_| WfeThread {
                bag: RetiredList::new(),
                retires_since_tick: 0,
            }),
            common: SchemeCommon::new("wfe", alloc, cfg),
        }
    }

    /// Current era.
    pub fn current_era(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Era snapshot (both announcement words) in recycled scratch,
    /// in-place bag partition: no heap allocation per scan.
    fn scan_and_reclaim(&self, tid: Tid, state: &mut WfeThread) {
        self.common.stats.get(tid).on_scan();
        fence(Ordering::SeqCst);
        let mut reservations = self.common.scratch(tid, self.slots.len());
        reservations.extend(
            self.slots
                .iter()
                .map(|s| s.load(Ordering::Acquire))
                .filter(|&e| e != NONE),
        );
        let mut freeable = RetiredList::new();
        state.bag.partition_into(
            |r| {
                reservations
                    .iter()
                    .any(|&e| e >= r.birth_era && e <= r.retire_era)
            },
            &mut freeable,
        );
        self.common.scratch_done(tid, reservations);
        self.common.dispose(tid, &mut freeable);
    }
}

impl RawSmr for WfeSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
    }

    fn end_op(&self, tid: Tid) {
        for i in 0..self.k * 2 {
            self.slots[tid * self.k * 2 + i].store(NONE, Ordering::Release);
        }
    }

    fn protect(&self, tid: Tid, slot: usize, _ptr: usize) {
        debug_assert!(slot < self.k);
        let e = self.era.load(Ordering::SeqCst);
        let base = (tid * self.k + slot) * 2;
        if self.slots[base + 1].load(Ordering::Relaxed) == e {
            return; // already fully published for this era
        }
        // Double-word publication: enter, fence, exit.
        self.slots[base].store(e, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        self.slots[base + 1].store(e, Ordering::SeqCst);
    }

    fn needs_validate(&self) -> bool {
        true
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.tick(tid);
        // SAFETY: live block from this scheme's allocator.
        unsafe { block::set_birth_era(ptr, self.era.load(Ordering::SeqCst)) };
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        let retire_era = self.era.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours; its birth era is already in the
        // header (stamped by `on_alloc`), so only the retire era is added.
        unsafe { state.bag.push_retire(ptr, retire_era) };
        state.retires_since_tick += 1;
        if state.retires_since_tick >= self.common.cfg.era_freq {
            state.retires_since_tick = 0;
            let new = self.era.fetch_add(1, Ordering::SeqCst) + 1;
            self.common.record_epoch_advance(tid, new);
        }
        if state.bag.len() >= self.common.bag_cap(tid) {
            self.scan_and_reclaim(tid, state);
        }
    }

    fn detach(&self, tid: Tid) {
        // Drop all era reservations permanently.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for s in self.slots.iter() {
            s.store(NONE, Ordering::Relaxed);
        }
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.bag);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, tid: Tid) -> SchemeLocal {
        // SAFETY: era clock and slot array are owned by self (boxed /
        // inline, stable addresses) and outlive every handle via the Arc.
        unsafe {
            SchemeLocal::era_slots_2wide(
                &self.era,
                &self.slots[tid * self.k * 2..(tid + 1) * self.k * 2],
            )
        }
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Wfe
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize) -> (Arc<dyn PoolAllocator>, Arc<WfeSmr>) {
        let alloc = build_allocator(AllocatorKind::Je, n, CostModel::zero());
        let mut cfg = SmrConfig::new(n).with_bag_cap(bag_cap);
        cfg.era_freq = 2;
        let smr = Arc::new(WfeSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    #[test]
    fn double_word_publication() {
        let (_, smr) = setup(1, 4);
        smr.begin_op(0);
        smr.protect(0, 2, 0);
        let base = 2 * 2;
        let enter = smr.slots[base].load(Ordering::Relaxed);
        let exit = smr.slots[base + 1].load(Ordering::Relaxed);
        assert_eq!(enter, exit);
        assert_ne!(enter, NONE);
        smr.end_op(0);
        assert_eq!(smr.slots[base].load(Ordering::Relaxed), NONE);
    }

    #[test]
    fn reservation_protects_and_releases() {
        let (alloc, smr) = setup(2, 4);
        smr.begin_op(1);
        smr.protect(1, 0, 0);
        smr.begin_op(0);
        let victim = alloc.alloc(0, 64);
        smr.on_alloc(0, victim);
        smr.retire(0, victim);
        for _ in 0..8 {
            let q = alloc.alloc(0, 64);
            smr.on_alloc(0, q);
            smr.retire(0, q);
        }
        smr.end_op(0);
        assert!(smr.stats().garbage >= 1);
        assert!(
            smr.stats().freed > 0,
            "unreserved lifetimes freed: {:?}",
            smr.stats()
        );
        smr.end_op(1);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn multithreaded_stress() {
        let (alloc, smr) = setup(4, 32);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for i in 0..3_000usize {
                        smr.begin_op(tid);
                        smr.protect(tid, i % 8, 0);
                        let p = alloc.alloc(tid, 64);
                        smr.on_alloc(tid, p);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 12_000);
        assert_eq!(s.freed, 12_000);
        assert_eq!(s.garbage, 0);
    }
}
