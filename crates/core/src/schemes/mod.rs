//! The reclamation schemes.
//!
//! | module | scheme(s) | paper role |
//! |---|---|---|
//! | [`leak`] | `none` | the leaky "upper bound" baseline the paper's AF schemes beat |
//! | [`debra`] | `debra` | state-of-the-art EBR whose batch frees expose the RBF problem (§3) |
//! | [`token`] | `token_naive`, `token_passfirst`, `token`, (`token_af` via AF mode) | §4's Token-EBR progression |
//! | [`qsbr`] | `qsbr` | quiescent-state-based reclamation (Hart et al.) |
//! | [`rcu`] | `rcu` | classic per-operation EBR (Fraser / Hart's RCU) |
//! | [`hp`] | `hp` | hazard pointers (Michael) |
//! | [`he`] | `he` | hazard eras (Ramalhete & Correia) |
//! | [`ibr`] | `ibr` | 2GE interval-based reclamation (Wen et al.) |
//! | [`nbr`] | `nbr`, `nbr+` | neutralization-based reclamation (Singh et al.), cooperative-signal variant |
//! | [`wfe`] | `wfe` | wait-free eras (Nikolaev & Ravindran), simplified |

pub mod debra;
pub mod he;
pub mod hp;
pub mod ibr;
pub mod leak;
pub mod nbr;
pub mod qsbr;
pub mod rcu;
pub mod token;
pub mod wfe;

/// A tagged limbo bag: retirements plus the epoch they belong to. The
/// items are an intrusive [`crate::RetiredList`], so filling, rotating and
/// disposing of a bag never allocates.
#[derive(Debug, Default)]
pub(crate) struct EpochBag {
    pub epoch: u64,
    pub items: crate::retired::RetiredList,
}
