//! Neutralization-based reclamation (Singh, Brown, Mashtizadeh, PPoPP
//! 2021) — `nbr` and `nbr+`, with **cooperative neutralization**.
//!
//! ## The algorithm
//!
//! Operations have two phases. In the *read phase* a thread traverses with
//! **no** per-pointer protection (epoch-cheap reads). Before its first
//! write to shared memory it publishes the handful of pointers it will
//! still dereference ([`crate::RawSmr::enter_write_phase`]) and becomes
//! immune. A thread whose limbo bag fills *neutralizes* all readers: each
//! read-phase thread abandons its operation and restarts from the root,
//! dropping every unprotected pointer. The reclaimer then frees everything
//! in the target bag except objects named in some thread's write-phase
//! reservations.
//!
//! Retirements go through **two bag generations**: the current bag fills
//! to `bag_cap` and is then *sealed*; reclamation always targets the
//! previously sealed bag. By reclaim time the sealed bag's newest object
//! is a whole bag-fill old, which is what gives the `nbr+` skip rule (see
//! below) something to bite on.
//!
//! ## The substitution (DESIGN.md §2)
//!
//! Real NBR delivers neutralization via POSIX signals + `siglongjmp`. Rust
//! has no safe signal-longjmp, so readers instead **poll** a per-thread
//! request counter at every protected hop ([`crate::RawSmr::poll_restart`])
//! and acknowledge before restarting. The reclaimer waits for each thread
//! to (a) acknowledge, (b) be in its write phase (reservations readable),
//! or (c) be outside any operation. Delivery latency changes from "signal"
//! to "one tree hop"; reclamation ordering and bounded garbage are
//! preserved. A bounded wait (~2 ms) keeps liveness if a reader is
//! descheduled mid-read-phase: the reclaimer gives up, keeps its bag, and
//! retries at the next threshold.
//!
//! ## nbr+
//!
//! `nbr+` adds the paper's optimization: skip neutralizing threads whose
//! current operation *began after the newest retirement in the target
//! bag* — such threads cannot have obtained a pointer to anything in it
//! (they started from the root after the unlink). Each `begin_op`
//! publishes a start timestamp to make that check possible; in steady
//! state most threads' ops are newer than the sealed bag, so `nbr+`
//! neutralizes almost no one.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{fence, AtomicU64, AtomicUsize, Ordering};
use epic_alloc::{PoolAllocator, Tid};
use epic_timeline::EventKind;
use epic_util::{now_ns, Backoff, CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::Arc;

/// Thread status values.
const IDLE: u64 = 0;
const READ_PHASE: u64 = 1;
const WRITE_PHASE: u64 = 2;

/// How long a reclaimer waits for acknowledgments before giving up (ns).
const HANDSHAKE_TIMEOUT_NS: u64 = 2_000_000;

struct NbrShared {
    status: AtomicU64,
    request: AtomicU64,
    ack: AtomicU64,
    /// Operation start timestamp (ns), for the nbr+ skip rule.
    op_start_ns: AtomicU64,
}

struct NbrThread {
    current: RetiredList,
    sealed: RetiredList,
    /// Timestamp of the newest retirement in `sealed`.
    sealed_ns: u64,
    last_seen_request: u64,
    restarts: u64,
}

/// NBR / NBR+. See module docs.
pub struct NbrSmr {
    common: SchemeCommon,
    plus: bool,
    shared: Box<[CachePadded<NbrShared>]>,
    /// Write-phase reservations: `reservations[tid * k + i]`.
    reservations: Box<[AtomicUsize]>,
    k: usize,
    global_seq: AtomicU64,
    threads: TidSlots<NbrThread>,
}

impl NbrSmr {
    /// Builds the scheme; `plus` selects the nbr+ skip optimization.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig, plus: bool) -> Self {
        let n = cfg.max_threads;
        let k = cfg.hp_slots;
        NbrSmr {
            plus,
            shared: (0..n)
                .map(|_| {
                    CachePadded::new(NbrShared {
                        status: AtomicU64::new(IDLE),
                        request: AtomicU64::new(0),
                        ack: AtomicU64::new(0),
                        op_start_ns: AtomicU64::new(0),
                    })
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            reservations: (0..n * k)
                .map(|_| AtomicUsize::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            k,
            global_seq: AtomicU64::new(0),
            threads: TidSlots::new_with(n, |_| NbrThread {
                current: RetiredList::new(),
                sealed: RetiredList::new(),
                sealed_ns: 0,
                last_seen_request: 0,
                restarts: 0,
            }),
            common: SchemeCommon::new(if plus { "nbr+" } else { "nbr" }, alloc, cfg),
        }
    }

    /// Neutralizes readers and reclaims the sealed bag. Returns false if
    /// the handshake timed out (bag kept, retried at the next threshold).
    fn neutralize_and_reclaim(&self, tid: Tid, state: &mut NbrThread) -> bool {
        self.common.stats.get(tid).on_scan();
        let seq = self.global_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let seal_ns = state.sealed_ns;

        // Phase 1: request neutralization (nbr+ skips provably-safe
        // threads). The acknowledgment flags live in recycled scratch —
        // one word per thread — so a reclaim pass allocates nothing.
        let n = self.shared.len();
        let mut scratch = self.common.scratch(tid, n.max(self.reservations.len()));
        scratch.resize(n, 0);
        for (t, sh) in self.shared.iter().enumerate() {
            if t == tid {
                continue;
            }
            if self.plus
                && sh.status.load(Ordering::SeqCst) != IDLE
                && sh.op_start_ns.load(Ordering::SeqCst) > seal_ns
            {
                // Its current op began after every sealed object was
                // unlinked: it cannot reach them. (Any later op is even
                // newer — still safe.)
                continue;
            }
            sh.request.store(seq, Ordering::SeqCst);
            scratch[t] = 1;
        }

        // Phase 2: handshake. A thread passes when it acked, is immune in
        // its write phase, or is idle; in the latter two cases its
        // *published reservations* are honored below.
        let deadline = now_ns() + HANDSHAKE_TIMEOUT_NS;
        for (t, sh) in self.shared.iter().enumerate() {
            if scratch[t] == 0 {
                continue;
            }
            let backoff = Backoff::new();
            loop {
                if sh.ack.load(Ordering::SeqCst) >= seq {
                    break;
                }
                let st = sh.status.load(Ordering::SeqCst);
                if st == WRITE_PHASE || st == IDLE {
                    break;
                }
                if now_ns() > deadline {
                    // Liveness guard: give up, keep the bag.
                    self.common.scratch_done(tid, scratch);
                    return false;
                }
                backoff.snooze();
            }
        }

        // Phase 3: collect write-phase reservations as hazards (reusing
        // the scratch the handshake is done with) and free the rest of the
        // sealed bag (hazarded objects stay sealed).
        fence(Ordering::SeqCst);
        scratch.clear();
        scratch.extend(
            self.reservations
                .iter()
                .map(|r| r.load(Ordering::Acquire) as u64)
                .filter(|&p| p != 0),
        );
        scratch.sort_unstable();
        let mut freeable = RetiredList::new();
        state.sealed.partition_into(
            |r| scratch.binary_search(&(r.addr() as u64)).is_ok(),
            &mut freeable,
        );
        self.common.scratch_done(tid, scratch);
        self.common.dispose(tid, &mut freeable);
        self.common.record_epoch_advance(tid, seq);
        true
    }
}

impl RawSmr for NbrSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        let sh = &self.shared[tid];
        if self.plus {
            sh.op_start_ns.store(now_ns(), Ordering::SeqCst);
        }
        sh.status.store(READ_PHASE, Ordering::SeqCst);
        // Starting fresh: any pending neutralization request is satisfied
        // by construction (we hold no pointers yet).
        let req = sh.request.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if req > state.last_seen_request {
            state.last_seen_request = req;
            sh.ack.store(req, Ordering::SeqCst);
        }
    }

    fn end_op(&self, tid: Tid) {
        let sh = &self.shared[tid];
        sh.status.store(IDLE, Ordering::SeqCst);
        for i in 0..self.k {
            self.reservations[tid * self.k + i].store(0, Ordering::Release);
        }
    }

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {
        // Read phase is unprotected — that is NBR's whole point. The
        // write-phase reservations go through `enter_write_phase`.
    }

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, tid: Tid) -> bool {
        let sh = &self.shared[tid];
        let req = sh.request.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if req <= state.last_seen_request {
            return false;
        }
        state.last_seen_request = req;
        if sh.status.load(Ordering::Relaxed) == WRITE_PHASE {
            // Immune: reclaimers honor our reservations; we must not
            // restart mid-write.
            return false;
        }
        // Acknowledge *before* restarting: after this store the reclaimer
        // may free; the caller's contract is to drop every pointer and
        // restart from the root immediately.
        sh.ack.store(req, Ordering::SeqCst);
        state.restarts += 1;
        self.common.stats.get(tid).on_restart();
        self.common
            .cfg
            .recorder
            .mark(tid, EventKind::Neutralize, state.restarts);
        true
    }

    fn enter_write_phase(&self, tid: Tid, ptrs: &[usize]) {
        debug_assert!(ptrs.len() <= self.k, "too many write-phase reservations");
        for (i, &p) in ptrs.iter().enumerate() {
            self.reservations[tid * self.k + i].store(p, Ordering::SeqCst);
        }
        let sh = &self.shared[tid];
        sh.status.store(WRITE_PHASE, Ordering::SeqCst);
        // Swallow any request that raced with the phase change: the
        // reclaimer observes WRITE_PHASE and reads the reservations we just
        // published.
        let req = sh.request.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if req > state.last_seen_request {
            state.last_seen_request = req;
        }
    }

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { state.current.push_retire(ptr, 0) };
        if state.current.len() >= self.common.bag_cap(tid) {
            if !state.sealed.is_empty() && !self.neutralize_and_reclaim(tid, state) {
                // Handshake timed out; retry at the next retirement.
                return;
            }
            // Seal the current generation (hazard survivors, if any, ride
            // along into the new sealed bag) — an O(1) splice.
            let mut cur = state.current.take();
            state.sealed.append(&mut cur);
            state.sealed_ns = now_ns();
        }
    }

    fn detach(&self, tid: Tid) {
        // Permanently outside any operation: reclaimers skip us.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for r in self.reservations.iter() {
            r.store(0, Ordering::Relaxed);
        }
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.sealed);
            self.common.free_batch_now(tid, &mut state.current);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, tid: Tid) -> SchemeLocal {
        // SAFETY: the shared per-thread cells are owned by self (boxed,
        // stable addresses) and outlive every handle via the Arc.
        unsafe { SchemeLocal::restart_poll(&self.shared[tid].request) }
    }

    fn kind(&self) -> SmrKind {
        if self.plus {
            SmrKind::NbrPlus
        } else {
            SmrKind::Nbr
        }
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize, plus: bool) -> (Arc<dyn PoolAllocator>, Arc<NbrSmr>) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let cfg = SmrConfig::new(n).with_bag_cap(bag_cap);
        let smr = Arc::new(NbrSmr::new(Arc::clone(&alloc), cfg, plus));
        (alloc, smr)
    }

    #[test]
    fn reader_gets_neutralized_and_restarts() {
        let (alloc, smr) = setup(2, 4, false);
        // Thread 1 sits in a read phase.
        smr.begin_op(1);
        assert!(!smr.poll_restart(1), "no request yet");
        // Thread 0 fills two bag generations in a separate OS thread (the
        // handshake needs thread 1 to poll, which we do from here). A
        // single pass can legitimately free nothing: the reclaimer's
        // HANDSHAKE_TIMEOUT_NS liveness guard gives up if this thread is
        // not scheduled in time (seen on loaded single-CPU boxes), keeping
        // the bag for the next threshold — so retry the fill cycle until a
        // handshake lands.
        let mut restarted = false;
        for _ in 0..50 {
            let smr2 = Arc::clone(&smr);
            let alloc2 = Arc::clone(&alloc);
            let reclaimer = std::thread::spawn(move || {
                smr2.begin_op(0);
                for _ in 0..9 {
                    let p = alloc2.alloc(0, 64);
                    smr2.retire(0, p);
                }
                smr2.end_op(0);
            });
            // Poll (and thereby ack) until the reclaimer finishes.
            while !reclaimer.is_finished() {
                if smr.poll_restart(1) {
                    restarted = true;
                }
                std::hint::spin_loop();
            }
            reclaimer.join().unwrap();
            if smr.stats().freed > 0 {
                break;
            }
        }
        assert!(restarted, "read-phase thread must be neutralized");
        assert!(smr.stats().restarts >= 1);
        assert!(
            smr.stats().freed > 0,
            "reclaimer must not wait for the reader forever"
        );
        smr.end_op(1);
        smr.quiesce_and_drain();
    }

    #[test]
    fn write_phase_reservations_are_honored() {
        let (alloc, smr) = setup(2, 4, false);
        let victim = alloc.alloc(1, 64);
        // Thread 1 enters write phase holding the victim.
        smr.begin_op(1);
        smr.enter_write_phase(1, &[victim.as_ptr() as usize]);
        // Thread 0 retires the victim plus filler across two generations;
        // the handshake must pass (thread 1 is immune) and the victim must
        // survive the reclaim of its generation.
        smr.begin_op(0);
        smr.retire(0, victim);
        for _ in 0..8 {
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
        }
        smr.end_op(0);
        let s = smr.stats();
        assert!(s.freed > 0, "filler freed: {s:?}");
        assert!(s.garbage >= 1, "victim survives: {s:?}");
        assert!(!smr.poll_restart(1), "write phase is immune to restarts");
        smr.end_op(1);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn idle_threads_do_not_block_reclaim() {
        let (alloc, smr) = setup(4, 4, false);
        // Threads 1-3 never begin ops (IDLE).
        smr.begin_op(0);
        for _ in 0..16 {
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
        }
        smr.end_op(0);
        assert!(smr.stats().freed >= 8, "{:?}", smr.stats());
        smr.quiesce_and_drain();
    }

    #[test]
    fn nbr_plus_skips_fresh_ops() {
        let (alloc, smr) = setup(2, 4, true);
        // Generation A: retire 4 objects (fills and seals the bag).
        smr.begin_op(0);
        for _ in 0..4 {
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
        }
        smr.end_op(0);
        // Thread 1 starts an op AFTER generation A was sealed.
        smr.begin_op(1);
        // Generation B fills: reclaim of A runs; nbr+ must skip thread 1
        // (its op started after A's newest retirement), so no handshake
        // stall and no restart even though thread 1 never polls.
        smr.begin_op(0);
        for _ in 0..4 {
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
        }
        smr.end_op(0);
        assert!(smr.stats().freed >= 4, "{:?}", smr.stats());
        assert!(
            !smr.poll_restart(1),
            "nbr+ should not have signaled thread 1"
        );
        assert_eq!(smr.stats().restarts, 0);
        smr.end_op(1);
        smr.quiesce_and_drain();
    }

    #[test]
    fn plain_nbr_neutralizes_fresh_ops_too() {
        let (alloc, smr) = setup(2, 4, false);
        smr.begin_op(1); // reader in read phase the whole time
        let smr2 = Arc::clone(&smr);
        let alloc2 = Arc::clone(&alloc);
        let reclaimer = std::thread::spawn(move || {
            smr2.begin_op(0);
            for _ in 0..9 {
                let p = alloc2.alloc(0, 64);
                smr2.retire(0, p);
            }
            smr2.end_op(0);
        });
        let mut restarted = false;
        for _ in 0..10_000_000 {
            if smr.poll_restart(1) {
                restarted = true;
                break;
            }
        }
        reclaimer.join().unwrap();
        assert!(restarted, "plain nbr signals everyone");
        smr.end_op(1);
        smr.quiesce_and_drain();
    }

    #[test]
    fn detached_threads_never_block_handshake() {
        let (alloc, smr) = setup(3, 4, false);
        // Thread 1 begins an op then detaches (end-of-workload pattern).
        smr.begin_op(1);
        smr.detach(1);
        // Thread 2 never participates; thread 0 reclaims through both.
        smr.begin_op(0);
        for _ in 0..12 {
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
        }
        smr.end_op(0);
        assert!(smr.stats().freed >= 4, "{:?}", smr.stats());
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn multithreaded_stress_with_polling() {
        for plus in [false, true] {
            let (alloc, smr) = setup(4, 16, plus);
            let handles: Vec<_> = (0..4)
                .map(|tid| {
                    let smr = Arc::clone(&smr);
                    let alloc = Arc::clone(&alloc);
                    std::thread::spawn(move || {
                        for _ in 0..3_000 {
                            smr.begin_op(tid);
                            // Simulated traversal with polling.
                            for _ in 0..3 {
                                let _ = smr.poll_restart(tid);
                            }
                            let p = alloc.alloc(tid, 64);
                            smr.enter_write_phase(tid, &[p.as_ptr() as usize]);
                            smr.retire(tid, p);
                            smr.end_op(tid);
                        }
                        smr.detach(tid);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            smr.quiesce_and_drain();
            let s = smr.stats();
            assert_eq!(s.retired, 12_000, "plus={plus}");
            assert_eq!(s.freed, 12_000, "plus={plus}");
            assert_eq!(s.garbage, 0, "plus={plus}");
        }
    }
}
