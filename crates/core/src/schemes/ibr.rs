//! Interval-based reclamation (Wen et al., PPoPP 2018), 2GE variant —
//! `ibr`.
//!
//! Each thread reserves an era *interval* `[lo, hi]`: `lo = hi = era` at
//! operation start, and `hi` is bumped to the current era at each protected
//! hop (the "2 Global Epochs" published-era scheme). An object whose
//! `[birth, retire]` lifetime overlaps any thread's reservation interval
//! cannot be freed.
//!
//! Compared to hazard eras, protection is cheaper (two fixed slots per
//! thread instead of per-pointer slots) but reservations are coarser.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{fence, AtomicU64, Ordering};
use epic_alloc::block;
use epic_alloc::{PoolAllocator, Tid};
use epic_util::{CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::Arc;

const NONE: u64 = u64::MAX;

struct Reservation {
    lo: AtomicU64,
    hi: AtomicU64,
}

struct IbrThread {
    bag: RetiredList,
    retires_since_tick: usize,
}

/// 2GE interval-based reclamation. See module docs.
pub struct IbrSmr {
    common: SchemeCommon,
    era: AtomicU64,
    reservations: Box<[CachePadded<Reservation>]>,
    threads: TidSlots<IbrThread>,
}

impl IbrSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        IbrSmr {
            era: AtomicU64::new(1),
            reservations: (0..n)
                .map(|_| {
                    CachePadded::new(Reservation {
                        lo: AtomicU64::new(NONE),
                        hi: AtomicU64::new(NONE),
                    })
                })
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            threads: TidSlots::new_with(n, |_| IbrThread {
                bag: RetiredList::new(),
                retires_since_tick: 0,
            }),
            common: SchemeCommon::new("ibr", alloc, cfg),
        }
    }

    /// Current era (tests, diagnostics).
    pub fn current_era(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Interval snapshot packed `[lo, hi, lo, hi, …]` into recycled
    /// scratch, in-place bag partition: no heap allocation per scan.
    fn scan_and_reclaim(&self, tid: Tid, state: &mut IbrThread) {
        self.common.stats.get(tid).on_scan();
        fence(Ordering::SeqCst);
        let mut intervals = self.common.scratch(tid, self.reservations.len() * 2);
        for res in self.reservations.iter() {
            let lo = res.lo.load(Ordering::Acquire);
            let hi = res.hi.load(Ordering::Acquire);
            if lo != NONE {
                intervals.push(lo);
                intervals.push(hi);
            }
        }
        let mut freeable = RetiredList::new();
        state.bag.partition_into(
            // Overlap test: [lo,hi] ∩ [birth,retire] ≠ ∅.
            |r| {
                intervals
                    .chunks_exact(2)
                    .any(|lohi| lohi[0] <= r.retire_era && r.birth_era <= lohi[1])
            },
            &mut freeable,
        );
        self.common.scratch_done(tid, intervals);
        self.common.dispose(tid, &mut freeable);
    }
}

impl RawSmr for IbrSmr {
    fn begin_op(&self, tid: Tid) {
        let e = self.era.load(Ordering::SeqCst);
        let r = &self.reservations[tid];
        // Publish lo before hi is irrelevant for safety (both SeqCst and
        // equal); what matters is publication precedes the first link read.
        r.lo.store(e, Ordering::SeqCst);
        r.hi.store(e, Ordering::SeqCst);
    }

    fn end_op(&self, tid: Tid) {
        let r = &self.reservations[tid];
        r.lo.store(NONE, Ordering::Release);
        r.hi.store(NONE, Ordering::Release);
    }

    fn protect(&self, tid: Tid, _slot: usize, _ptr: usize) {
        let e = self.era.load(Ordering::SeqCst);
        let hi = &self.reservations[tid].hi;
        if hi.load(Ordering::Relaxed) < e {
            hi.store(e, Ordering::SeqCst);
        }
    }

    fn needs_validate(&self) -> bool {
        true
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.tick(tid);
        // SAFETY: live block from this scheme's allocator.
        unsafe { block::set_birth_era(ptr, self.era.load(Ordering::SeqCst)) };
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        let retire_era = self.era.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours; its birth era is already in the
        // header (stamped by `on_alloc`), so only the retire era is added.
        unsafe { state.bag.push_retire(ptr, retire_era) };
        state.retires_since_tick += 1;
        if state.retires_since_tick >= self.common.cfg.era_freq {
            state.retires_since_tick = 0;
            let new = self.era.fetch_add(1, Ordering::SeqCst) + 1;
            self.common.record_epoch_advance(tid, new);
        }
        if state.bag.len() >= self.common.bag_cap(tid) {
            self.scan_and_reclaim(tid, state);
        }
    }

    fn detach(&self, tid: Tid) {
        // Drop all era reservations permanently.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for r in self.reservations.iter() {
            r.lo.store(NONE, Ordering::Relaxed);
            r.hi.store(NONE, Ordering::Relaxed);
        }
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.bag);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, tid: Tid) -> SchemeLocal {
        // SAFETY: era clock and reservation cells are owned by self (boxed
        // / inline, stable addresses) and outlive every handle via the Arc.
        unsafe { SchemeLocal::era_interval(&self.era, &self.reservations[tid].hi) }
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Ibr
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize, era_freq: usize) -> (Arc<dyn PoolAllocator>, Arc<IbrSmr>) {
        let alloc = build_allocator(AllocatorKind::Je, n, CostModel::zero());
        let mut cfg = SmrConfig::new(n).with_bag_cap(bag_cap);
        cfg.era_freq = era_freq;
        let smr = Arc::new(IbrSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    #[test]
    fn interval_reservation_blocks_overlapping_lifetimes() {
        let (alloc, smr) = setup(2, 4, 1);
        // Thread 1 opens an op at era E: reserves [E, E].
        smr.begin_op(1);
        // An object born at era <= E and retired at era >= E overlaps.
        let victim = alloc.alloc(0, 64);
        smr.on_alloc(0, victim);
        smr.begin_op(0);
        smr.retire(0, victim);
        for _ in 0..8 {
            let q = alloc.alloc(0, 64);
            smr.on_alloc(0, q);
            smr.retire(0, q);
        }
        smr.end_op(0);
        assert!(
            smr.stats().garbage >= 1,
            "victim overlaps reservation: {:?}",
            smr.stats()
        );
        // Later-born objects do get freed.
        assert!(smr.stats().freed > 0);
        smr.end_op(1);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn end_op_clears_reservation() {
        let (_, smr) = setup(1, 4, 1);
        smr.begin_op(0);
        assert_ne!(smr.reservations[0].lo.load(Ordering::Relaxed), NONE);
        smr.end_op(0);
        assert_eq!(smr.reservations[0].lo.load(Ordering::Relaxed), NONE);
        assert_eq!(smr.reservations[0].hi.load(Ordering::Relaxed), NONE);
    }

    #[test]
    fn protect_extends_hi_only_forward() {
        let (alloc, smr) = setup(1, 1_000_000, 1);
        smr.begin_op(0);
        let lo0 = smr.reservations[0].lo.load(Ordering::Relaxed);
        // Advance the era by retiring (freq 1).
        for _ in 0..5 {
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
        }
        smr.protect(0, 0, 0);
        let lo1 = smr.reservations[0].lo.load(Ordering::Relaxed);
        let hi1 = smr.reservations[0].hi.load(Ordering::Relaxed);
        assert_eq!(lo0, lo1, "lo never moves during an op");
        assert!(hi1 >= lo1 + 5, "hi tracks the era: lo={lo1} hi={hi1}");
        smr.end_op(0);
        smr.quiesce_and_drain();
    }

    #[test]
    fn multithreaded_stress() {
        let (alloc, smr) = setup(4, 32, 4);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..3_000 {
                        smr.begin_op(tid);
                        smr.protect(tid, 0, 0);
                        let p = alloc.alloc(tid, 64);
                        smr.on_alloc(tid, p);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 12_000);
        assert_eq!(s.freed, 12_000);
        assert_eq!(s.garbage, 0);
    }
}
