//! DEBRA (Brown, PODC 2015) — the paper's representative state-of-the-art
//! EBR implementation (§2).
//!
//! Structure reproduced from the paper's description:
//!
//! * a global epoch number;
//! * a single-writer multi-reader announcement array, one slot per thread,
//!   holding `epoch << 1 | quiescent`;
//! * threads update their announced epoch at the start of each operation
//!   and set the quiescent bit at the end;
//! * **amortized scanning**: once every `k` operations (the paper's *k*,
//!   [`crate::SmrConfig::epoch_check_every`]) a thread reads *one* other
//!   thread's announcement, proceeding round-robin; the first thread to
//!   observe that everyone announced the current epoch CASes the global
//!   epoch forward — so doubling the thread count doubles epoch length,
//!   the effect Table 1 quantifies;
//! * three limbo bags per thread, rotated on announcement.
//!
//! Retirements are tagged with the thread's *announced* epoch (as in real
//! DEBRA); with stale tags a bag is provably safe only after the thread
//! announces `tag + 3` (three bags = lag 3), which the rotation implements.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::schemes::EpochBag;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use epic_alloc::{PoolAllocator, Tid};
use epic_util::{CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Announcement encoding: `epoch << 1 | quiescent`.
const QUIESCENT: u64 = 1;

struct DebraThread {
    bags: [EpochBag; 3],
    announced_epoch: u64,
    scan_idx: usize,
    ops_since_check: usize,
}

/// DEBRA. See module docs.
pub struct DebraSmr {
    common: SchemeCommon,
    global_epoch: AtomicU64,
    announce: Box<[CachePadded<AtomicU64>]>,
    threads: TidSlots<DebraThread>,
}

impl DebraSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        DebraSmr {
            common: SchemeCommon::new("debra", alloc, cfg),
            global_epoch: AtomicU64::new(3),
            announce: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(3 << 1 | QUIESCENT)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            threads: TidSlots::new_with(n, |_| DebraThread {
                bags: Default::default(),
                announced_epoch: 3,
                scan_idx: 0,
                ops_since_check: 0,
            }),
        }
    }

    /// Rotation on announcing epoch `e`: free every bag whose tag is
    /// ≤ `e − 3` (safe under stale tags; see module docs).
    fn rotate(&self, tid: Tid, state: &mut DebraThread, e: u64) {
        for bag in &mut state.bags {
            if bag.epoch + 3 <= e && !bag.items.is_empty() {
                self.common.dispose(tid, &mut bag.items);
            }
        }
        state.announced_epoch = e;
        state.scan_idx = 0;
    }

    /// The amortized scan step: examine one announcement; if the whole ring
    /// has been observed in epoch `e`, advance the global epoch.
    fn scan_step(&self, tid: Tid, state: &mut DebraThread, e: u64) {
        let n = self.announce.len();
        let a = self.announce[state.scan_idx % n].load(Ordering::SeqCst);
        let agrees = a & QUIESCENT == QUIESCENT || a >> 1 == e;
        if !agrees {
            return;
        }
        state.scan_idx += 1;
        if state.scan_idx >= n {
            state.scan_idx = 0;
            if self
                .global_epoch
                .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                self.common.record_epoch_advance(tid, e + 1);
            }
        }
    }
}

impl RawSmr for DebraSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        let e = self.global_epoch.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if state.announced_epoch != e {
            self.announce[tid].store(e << 1, Ordering::SeqCst);
            self.rotate(tid, state, e);
        } else {
            // Same epoch: clear the quiescent bit for this operation.
            self.announce[tid].store(e << 1, Ordering::SeqCst);
        }
        state.ops_since_check += 1;
        if state.ops_since_check >= self.common.cfg.epoch_check_every {
            state.ops_since_check = 0;
            self.scan_step(tid, state, e);
        }
    }

    fn end_op(&self, tid: Tid) {
        let v = self.announce[tid].load(Ordering::Relaxed);
        self.announce[tid].store(v | QUIESCENT, Ordering::Release);
    }

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {}

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        let tag = state.announced_epoch;
        let bag = &mut state.bags[(tag % 3) as usize];
        if bag.epoch != tag {
            // Slot content is from tag−3 or older (rotation keeps the
            // invariant); dispose before reuse.
            if !bag.items.is_empty() {
                debug_assert!(bag.epoch + 3 <= tag);
                self.common.dispose(tid, &mut bag.items);
            }
            bag.epoch = tag;
        }
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { bag.items.push_retire(ptr, 0) };
    }

    fn detach(&self, tid: Tid) {
        // Permanently quiescent: scanners treat us as agreeing with every
        // epoch, so we never block an advance again.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            for bag in &mut state.bags {
                self.common.free_batch_now(tid, &mut bag.items);
            }
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        SchemeLocal::passive()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Debra
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreeMode;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, k: usize, mode: FreeMode) -> (Arc<dyn PoolAllocator>, Arc<DebraSmr>) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let mut cfg = SmrConfig::new(n).with_mode(mode);
        cfg.epoch_check_every = k;
        let smr = Arc::new(DebraSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    fn churn(alloc: &Arc<dyn PoolAllocator>, smr: &DebraSmr, tid: usize, ops: usize) {
        for _ in 0..ops {
            smr.begin_op(tid);
            let p = alloc.alloc(tid, 64);
            smr.on_alloc(tid, p);
            smr.retire(tid, p);
            smr.end_op(tid);
        }
    }

    #[test]
    fn single_thread_epochs_advance_and_reclaim() {
        let (alloc, smr) = setup(1, 1, FreeMode::Batch);
        churn(&alloc, &smr, 0, 100);
        let s = smr.stats();
        assert!(s.epochs >= 30, "1-thread ring should advance fast: {s:?}");
        assert!(s.freed > 0);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
        assert_eq!(smr.stats().freed, 100);
    }

    #[test]
    fn scan_amortization_slows_epochs() {
        let (alloc_fast, fast) = setup(1, 1, FreeMode::Batch);
        let (alloc_slow, slow) = setup(1, 10, FreeMode::Batch);
        churn(&alloc_fast, &fast, 0, 200);
        churn(&alloc_slow, &slow, 0, 200);
        assert!(
            fast.stats().epochs > slow.stats().epochs * 2,
            "k=1 advances much faster than k=10: {} vs {}",
            fast.stats().epochs,
            slow.stats().epochs
        );
    }

    #[test]
    fn active_stale_thread_blocks_epoch() {
        let (alloc, smr) = setup(2, 1, FreeMode::Batch);
        // Thread 1 begins an op and stalls inside it (no quiescent bit).
        smr.begin_op(1);
        let before = smr.stats().epochs;
        churn(&alloc, &smr, 0, 100);
        assert!(
            smr.stats().epochs - before <= 1,
            "in-op thread must block advance (the EBR thread-delay sensitivity)"
        );
        smr.end_op(1);
        // Once quiescent, epochs flow again.
        churn(&alloc, &smr, 0, 100);
        assert!(smr.stats().epochs - before >= 2);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn quiescent_thread_does_not_block() {
        let (alloc, smr) = setup(2, 1, FreeMode::Batch);
        // Thread 1 ran once and went quiescent.
        smr.begin_op(1);
        smr.end_op(1);
        churn(&alloc, &smr, 0, 100);
        assert!(
            smr.stats().epochs >= 20,
            "quiescent threads must not block: {:?}",
            smr.stats()
        );
    }

    #[test]
    fn amortized_mode_defers_then_drains() {
        let (alloc, smr) = setup(1, 1, FreeMode::Amortized { per_op: 2 });
        churn(&alloc, &smr, 0, 300);
        let s = smr.stats();
        assert!(s.freed > 0, "AF ticks must free: {s:?}");
        // Batches were queued, not necessarily all freed yet.
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().freed, 300);
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn multithreaded_stress() {
        let (alloc, smr) = setup(4, 2, FreeMode::Batch);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || churn(&alloc, &smr, tid, 5_000))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = smr.stats();
        assert_eq!(s.retired, 20_000);
        assert!(s.epochs > 2, "epochs: {}", s.epochs);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().freed, 20_000);
        assert_eq!(smr.stats().garbage, 0);
    }
}
