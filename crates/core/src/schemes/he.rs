//! Hazard eras (Ramalhete & Correia) — `he`.
//!
//! A global *era* clock replaces hazard pointers' per-object announcements:
//! blocks are stamped with their birth era at allocation
//! ([`crate::RawSmr::on_alloc`] writes the block header) and their retire era
//! at retirement; readers publish the era they are reading under. An object
//! is reclaimable when no published era falls inside its `[birth, retire]`
//! lifetime.
//!
//! The paper finds `he` among the slowest schemes and the only one that
//! does not improve with amortized freeing (Fig. 11b) — its per-read era
//! publication dominates, which this implementation reproduces with a
//! SeqCst era load + conditional SeqCst store per protected hop.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{fence, AtomicU64, Ordering};
use epic_alloc::block;
use epic_alloc::{PoolAllocator, Tid};
use epic_util::TidSlots;
use std::ptr::NonNull;
use std::sync::Arc;

/// Sentinel: slot holds no reservation.
const NONE: u64 = u64::MAX;

struct HeThread {
    bag: RetiredList,
    retires_since_tick: usize,
}

/// Hazard eras. See module docs.
pub struct HeSmr {
    common: SchemeCommon,
    era: AtomicU64,
    /// Flat era-slot array: `slots[tid * k + i]`, `NONE` when empty.
    slots: Box<[AtomicU64]>,
    k: usize,
    threads: TidSlots<HeThread>,
}

impl HeSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        let k = cfg.hp_slots;
        HeSmr {
            era: AtomicU64::new(1),
            slots: (0..n * k)
                .map(|_| AtomicU64::new(NONE))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            k,
            threads: TidSlots::new_with(n, |_| HeThread {
                bag: RetiredList::new(),
                retires_since_tick: 0,
            }),
            common: SchemeCommon::new("he", alloc, cfg),
        }
    }

    /// Current era (tests, diagnostics).
    pub fn current_era(&self) -> u64 {
        self.era.load(Ordering::SeqCst)
    }

    /// Reservation snapshot in recycled scratch, in-place bag partition:
    /// no heap allocation per scan.
    fn scan_and_reclaim(&self, tid: Tid, state: &mut HeThread) {
        self.common.stats.get(tid).on_scan();
        fence(Ordering::SeqCst);
        let mut reservations = self.common.scratch(tid, self.slots.len());
        reservations.extend(
            self.slots
                .iter()
                .map(|s| s.load(Ordering::Acquire))
                .filter(|&e| e != NONE),
        );
        let mut freeable = RetiredList::new();
        state.bag.partition_into(
            |r| {
                reservations
                    .iter()
                    .any(|&e| e >= r.birth_era && e <= r.retire_era)
            },
            &mut freeable,
        );
        self.common.scratch_done(tid, reservations);
        self.common.dispose(tid, &mut freeable);
    }
}

impl RawSmr for HeSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
    }

    fn end_op(&self, tid: Tid) {
        for i in 0..self.k {
            self.slots[tid * self.k + i].store(NONE, Ordering::Release);
        }
    }

    fn protect(&self, tid: Tid, slot: usize, _ptr: usize) {
        debug_assert!(slot < self.k);
        let e = self.era.load(Ordering::SeqCst);
        let s = &self.slots[tid * self.k + slot];
        if s.load(Ordering::Relaxed) != e {
            // SeqCst: publication must precede the caller's validating
            // re-read of the link.
            s.store(e, Ordering::SeqCst);
        }
    }

    fn needs_validate(&self) -> bool {
        true
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.tick(tid);
        // SAFETY: ptr is a live block from this scheme's allocator (trait
        // contract).
        unsafe { block::set_birth_era(ptr, self.era.load(Ordering::SeqCst)) };
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        let retire_era = self.era.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours; its birth era is already in the
        // header (stamped by `on_alloc`), so only the retire era is added.
        unsafe { state.bag.push_retire(ptr, retire_era) };
        state.retires_since_tick += 1;
        if state.retires_since_tick >= self.common.cfg.era_freq {
            state.retires_since_tick = 0;
            let new = self.era.fetch_add(1, Ordering::SeqCst) + 1;
            self.common.record_epoch_advance(tid, new);
        }
        if state.bag.len() >= self.common.bag_cap(tid) {
            self.scan_and_reclaim(tid, state);
        }
    }

    fn detach(&self, tid: Tid) {
        // Drop all era reservations permanently.
        self.end_op(tid);
    }

    fn quiesce_and_drain(&self) {
        for s in self.slots.iter() {
            s.store(NONE, Ordering::Relaxed);
        }
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.bag);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, tid: Tid) -> SchemeLocal {
        // SAFETY: era clock and slot array are owned by self (boxed /
        // inline, stable addresses) and outlive every handle via the Arc.
        unsafe { SchemeLocal::era_slots(&self.era, &self.slots[tid * self.k..(tid + 1) * self.k]) }
    }

    fn kind(&self) -> SmrKind {
        SmrKind::He
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, bag_cap: usize, era_freq: usize) -> (Arc<dyn PoolAllocator>, Arc<HeSmr>) {
        let alloc = build_allocator(AllocatorKind::Je, n, CostModel::zero());
        let mut cfg = SmrConfig::new(n).with_bag_cap(bag_cap);
        cfg.era_freq = era_freq;
        let smr = Arc::new(HeSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    #[test]
    fn era_advances_with_retires() {
        let (alloc, smr) = setup(1, 1_000_000, 4);
        let e0 = smr.current_era();
        for _ in 0..16 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
            smr.end_op(0);
        }
        assert_eq!(smr.current_era() - e0, 4, "16 retires / freq 4");
        smr.quiesce_and_drain();
    }

    #[test]
    fn reserved_era_blocks_reclaim() {
        let (alloc, smr) = setup(2, 8, 2);
        // Thread 1 publishes the current era and parks.
        smr.begin_op(1);
        smr.protect(1, 0, 0);
        // Thread 0 churns: everything it retires is born/retired in eras
        // >= thread 1's reservation... so objects whose lifetime covers
        // the reserved era are kept.
        let reserved = smr.current_era();
        let p = alloc.alloc(0, 64);
        smr.on_alloc(0, p); // birth = reserved era
        smr.begin_op(0);
        smr.retire(0, p); // lifetime [reserved, >=reserved] covers it
        for _ in 0..16 {
            let q = alloc.alloc(0, 64);
            smr.on_alloc(0, q);
            smr.retire(0, q);
        }
        smr.end_op(0);
        let s = smr.stats();
        assert!(s.scans > 0);
        assert!(s.garbage >= 1, "the covered object must survive: {s:?}");
        let _ = reserved;
        smr.end_op(1);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn objects_born_after_reservation_epoch_are_freed() {
        let (alloc, smr) = setup(2, 4, 1);
        // Thread 1 reserves era E.
        smr.begin_op(1);
        smr.protect(1, 0, 0);
        // Era moves past E via retires; objects born *later* than E and
        // retired later are unreachable by thread 1's reservation... they
        // free despite the standing reservation.
        for _ in 0..8 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.on_alloc(0, p);
            smr.retire(0, p);
            smr.end_op(0);
        }
        let freed_mid = smr.stats().freed;
        assert!(
            freed_mid > 0,
            "later-born objects must be reclaimable: {:?}",
            smr.stats()
        );
        smr.end_op(1);
        smr.quiesce_and_drain();
    }

    #[test]
    fn multithreaded_stress() {
        let (alloc, smr) = setup(4, 32, 8);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for i in 0..3_000usize {
                        smr.begin_op(tid);
                        smr.protect(tid, i % 8, 0);
                        let p = alloc.alloc(tid, 64);
                        smr.on_alloc(tid, p);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 12_000);
        assert_eq!(s.freed, 12_000);
        assert_eq!(s.garbage, 0);
    }
}
