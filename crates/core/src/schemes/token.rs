//! Token-EBR (§4): epochs established by a token circulating a ring.
//!
//! All threads are arranged in a ring; each thread enters a new epoch when
//! it receives the token. Each thread keeps two limbo bags (*current* and
//! *previous*); receipt of the token proves the previous bag is safe
//! (correctness sketch in §4: during one full circulation every thread has
//! begun — and therefore finished — an operation, so nothing unlinked
//! before the circulation can still be referenced).
//!
//! The three variants trace the paper's §4 progression:
//!
//! * [`TokenVariant::Naive`] — free the previous bag, swap, **then** pass
//!   the token. Serializes all reclamation around the ring (Fig. 6's
//!   "continuous curve") and piles up garbage.
//! * [`TokenVariant::PassFirst`] — pass first, then free. Threads free
//!   concurrently, but a long free delays the *next* token receipt
//!   (Fig. 7).
//! * [`TokenVariant::Periodic`] — pass first, then free, re-checking for
//!   the token every `token_check_every` frees and forwarding it
//!   immediately (Fig. 8). Forwarding is safe here because the freeing
//!   thread is *between* data-structure operations: it holds no pointers.
//!
//! `token_af` — the paper's headline algorithm — is `Periodic` with
//! [`crate::FreeMode::Amortized`]: the previous bag moves to the freeable
//! list in O(1) and is drained one object per operation (Fig. 9/10).

use crate::common::SchemeCommon;
use crate::config::{FreeMode, SmrConfig};
use crate::retired::RetiredList;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use epic_alloc::{PoolAllocator, Tid};
use epic_timeline::EventKind;
use epic_util::{now_ns, CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Which §4 algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenVariant {
    /// Free, swap, then pass (§4.1).
    Naive,
    /// Pass, then free and swap.
    PassFirst,
    /// Pass, then free with periodic token checks (every
    /// `token_check_every` frees).
    Periodic,
}

struct TokenThread {
    current: RetiredList,
    previous: RetiredList,
    consumed: u64,
    epochs_entered: u64,
}

/// Token-EBR. See module docs.
pub struct TokenSmr {
    common: SchemeCommon,
    variant: TokenVariant,
    /// `tokens[i]` counts tokens delivered to thread `i`; a thread holds
    /// the token while `tokens[tid] > consumed`.
    tokens: Box<[CachePadded<AtomicU64>]>,
    /// Ring membership: detached threads are skipped when passing.
    detached: Box<[CachePadded<AtomicBool>]>,
    threads: TidSlots<TokenThread>,
}

impl TokenSmr {
    /// Builds the scheme; thread 0 starts with the token.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig, variant: TokenVariant) -> Self {
        let n = cfg.max_threads;
        let tokens: Box<[CachePadded<AtomicU64>]> = (0..n)
            .map(|i| CachePadded::new(AtomicU64::new(u64::from(i == 0))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let base = match variant {
            TokenVariant::Naive => "token_naive",
            TokenVariant::PassFirst => "token_passfirst",
            TokenVariant::Periodic => "token",
        };
        TokenSmr {
            common: SchemeCommon::new(base, alloc, cfg),
            variant,
            tokens,
            detached: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            threads: TidSlots::new_with(n, |_| TokenThread {
                current: RetiredList::new(),
                previous: RetiredList::new(),
                consumed: 0,
                epochs_entered: 0,
            }),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> TokenVariant {
        self.variant
    }

    /// Passes the token to the next live thread in the ring; a token is
    /// dropped when every other thread has detached (the ring is dissolving
    /// at workload shutdown, where `quiesce_and_drain` takes over).
    #[inline]
    fn pass(&self, tid: Tid) {
        let n = self.tokens.len();
        let mut next = (tid + 1) % n;
        let mut hops = 0;
        while self.detached[next].load(Ordering::Acquire) {
            next = (next + 1) % n;
            hops += 1;
            if hops >= n {
                return;
            }
        }
        // Release: the passing thread's bag swap must be visible before the
        // receiver observes the token.
        self.tokens[next].fetch_add(1, Ordering::Release);
    }

    /// True if `tid` currently holds (at least) one token.
    #[inline]
    fn holds_token(&self, tid: Tid, consumed: u64) -> bool {
        self.tokens[tid].load(Ordering::Acquire) > consumed
    }

    /// Processes one token receipt according to the variant.
    fn on_token(&self, tid: Tid, state: &mut TokenThread) {
        state.consumed += 1;
        state.epochs_entered += 1;
        self.common
            .cfg
            .recorder
            .mark(tid, EventKind::TokenReceive, state.epochs_entered);
        // Count a global "epoch" per full circulation, observed at thread 0
        // (also samples the garbage series — the paper's lower panels).
        if tid == 0 {
            self.common.record_epoch_advance(tid, state.epochs_entered);
        }

        match self.variant {
            TokenVariant::Naive => {
                // Free previous bag COMPLETELY, swap, then pass: the next
                // thread cannot reclaim until we finish (garbage pile-up).
                self.common.dispose(tid, &mut state.previous);
                std::mem::swap(&mut state.current, &mut state.previous);
                self.pass(tid);
            }
            TokenVariant::PassFirst => {
                self.pass(tid);
                self.common.dispose(tid, &mut state.previous);
                std::mem::swap(&mut state.current, &mut state.previous);
            }
            TokenVariant::Periodic => {
                self.pass(tid);
                match self.common.cfg.mode {
                    FreeMode::Amortized { .. }
                    | FreeMode::Background
                    | FreeMode::Pooled
                    | FreeMode::Adaptive => {
                        // token_af: absorb into the freeable list (O(1));
                        // token_bg: hand to the reclaimer; token_pool:
                        // absorb into the object pool; token_adapt: absorb
                        // + controller retune (all O(1)).
                        self.common.dispose(tid, &mut state.previous);
                    }
                    FreeMode::Batch => {
                        self.free_with_token_checks(tid, state);
                    }
                }
                std::mem::swap(&mut state.current, &mut state.previous);
            }
        }
    }

    /// Periodic-variant batch free: free the previous bag one object at a
    /// time, checking for (and forwarding) the token every
    /// `token_check_every` frees. The forwarded receipts still count as
    /// epochs entered, but bag swapping for them is deferred — we are
    /// mid-free, so the bags cannot be split retroactively (§4 discusses
    /// exactly this: a long `free` call still blocks the check).
    fn free_with_token_checks(&self, tid: Tid, state: &mut TokenThread) {
        if state.previous.is_empty() {
            return;
        }
        let check_every = self.common.cfg.token_check_every.max(1);
        let n = state.previous.len() as u64;
        let t0 = now_ns();
        let counters = self.common.stats.get(tid);
        counters.on_batch();
        let mut freed = 0usize;
        while let Some(r) = state.previous.pop() {
            self.common.alloc.dealloc(tid, r.ptr);
            freed += 1;
            if freed.is_multiple_of(check_every) && self.holds_token(tid, state.consumed) {
                // Forward without swapping: we hold no data-structure
                // pointers (we are between operations), so forwarding is
                // safe and keeps the ring moving.
                state.consumed += 1;
                state.epochs_entered += 1;
                self.pass(tid);
                if tid == 0 {
                    self.common.record_epoch_advance(tid, state.epochs_entered);
                }
            }
        }
        let t1 = now_ns();
        counters.on_free(n);
        counters.add_free_ns(t1 - t0);
        self.common
            .cfg
            .recorder
            .record(tid, EventKind::BatchFree, t0, t1, n);
    }
}

impl RawSmr for TokenSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if self.holds_token(tid, state.consumed) {
            self.on_token(tid, state);
        }
    }

    fn end_op(&self, _tid: Tid) {}

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {}

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { state.current.push_retire(ptr, 0) };
    }

    fn detach(&self, tid: Tid) {
        self.detached[tid].store(true, Ordering::SeqCst);
        // Forward tokens already delivered to us so the ring keeps moving.
        // (A pass racing with this store may still strand a token here;
        // that only loses epochs at shutdown, never safety, and
        // quiesce_and_drain reclaims everything regardless.)
        // SAFETY: detach is called by the owning thread (tid contract).
        let state = unsafe { self.threads.get_mut(tid) };
        while self.holds_token(tid, state.consumed) {
            state.consumed += 1;
            self.pass(tid);
        }
    }

    fn quiesce_and_drain(&self) {
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            self.common.free_batch_now(tid, &mut state.previous);
            self.common.free_batch_now(tid, &mut state.current);
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        SchemeLocal::passive()
    }

    fn kind(&self) -> SmrKind {
        match self.variant {
            TokenVariant::Naive => SmrKind::TokenNaive,
            TokenVariant::PassFirst => SmrKind::TokenPassFirst,
            TokenVariant::Periodic => SmrKind::TokenPeriodic,
        }
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(
        n: usize,
        variant: TokenVariant,
        mode: FreeMode,
    ) -> (Arc<dyn PoolAllocator>, Arc<TokenSmr>) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let cfg = SmrConfig::new(n).with_mode(mode);
        let smr = Arc::new(TokenSmr::new(Arc::clone(&alloc), cfg, variant));
        (alloc, smr)
    }

    fn churn(alloc: &Arc<dyn PoolAllocator>, smr: &TokenSmr, tid: usize, ops: usize) {
        for _ in 0..ops {
            smr.begin_op(tid);
            let p = alloc.alloc(tid, 64);
            smr.on_alloc(tid, p);
            smr.retire(tid, p);
            smr.end_op(tid);
        }
    }

    #[test]
    fn names_follow_variant_and_mode() {
        let (_, naive) = setup(1, TokenVariant::Naive, FreeMode::Batch);
        assert_eq!(naive.name(), "token_naive");
        let (_, af) = setup(1, TokenVariant::Periodic, FreeMode::amortized());
        assert_eq!(af.name(), "token_af");
        assert_eq!(af.kind(), SmrKind::TokenPeriodic);
    }

    #[test]
    fn single_thread_ring_cycles() {
        let (alloc, smr) = setup(1, TokenVariant::Naive, FreeMode::Batch);
        churn(&alloc, &smr, 0, 50);
        let s = smr.stats();
        // Every op receives the token back; previous bag of each epoch is
        // freed two receipts later.
        assert!(s.freed >= 48, "freed {}", s.freed);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().freed, 50);
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn token_requires_all_threads_to_participate() {
        let (alloc, smr) = setup(2, TokenVariant::PassFirst, FreeMode::Batch);
        // Only thread 0 runs: it consumes its initial token, passes to
        // thread 1, and never sees it again.
        churn(&alloc, &smr, 0, 100);
        let s = smr.stats();
        assert_eq!(s.freed, 0, "no circulation without thread 1");
        assert!(s.garbage >= 100);
        // Thread 1 joins: the ring circulates and reclamation resumes.
        for _ in 0..6 {
            churn(&alloc, &smr, 0, 1);
            churn(&alloc, &smr, 1, 1);
        }
        assert!(smr.stats().freed > 0, "{:?}", smr.stats());
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn two_bag_rule_never_frees_current_epoch_retires() {
        // Objects retired in the current epoch must survive until two token
        // receipts later. With a 1-thread ring we can count receipts
        // exactly: retire during op i is freed at op i+2.
        let (alloc, smr) = setup(1, TokenVariant::Naive, FreeMode::Batch);
        smr.begin_op(0); // receipt 1
        let p = alloc.alloc(0, 64);
        smr.retire(0, p);
        smr.end_op(0);
        assert_eq!(smr.stats().freed, 0);
        smr.begin_op(0); // receipt 2: p moves to previous
        smr.end_op(0);
        assert_eq!(smr.stats().freed, 0, "p is in previous, not yet safe");
        smr.begin_op(0); // receipt 3: previous freed
        smr.end_op(0);
        assert_eq!(smr.stats().freed, 1);
    }

    #[test]
    fn all_variants_reclaim_under_multithreaded_churn() {
        for variant in [
            TokenVariant::Naive,
            TokenVariant::PassFirst,
            TokenVariant::Periodic,
        ] {
            for mode in [FreeMode::Batch, FreeMode::amortized()] {
                let (alloc, smr) = setup(4, variant, mode);
                let handles: Vec<_> = (0..4)
                    .map(|tid| {
                        let smr = Arc::clone(&smr);
                        let alloc = Arc::clone(&alloc);
                        std::thread::spawn(move || churn(&alloc, &smr, tid, 3_000))
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                smr.quiesce_and_drain();
                let s = smr.stats();
                assert_eq!(s.retired, 12_000, "{variant:?} {mode:?}");
                assert_eq!(s.freed, 12_000, "{variant:?} {mode:?}");
                assert_eq!(s.garbage, 0, "{variant:?} {mode:?}");
                assert!(s.epochs > 0, "{variant:?} {mode:?}: token should circulate");
            }
        }
    }

    #[test]
    fn af_variant_keeps_garbage_bounded_under_churn() {
        let (alloc, smr) = setup(2, TokenVariant::Periodic, FreeMode::Amortized { per_op: 2 });
        for round in 0..2_000 {
            for tid in 0..2 {
                churn(&alloc, &smr, tid, 1);
            }
            if round % 500 == 499 {
                let g = smr.stats().garbage;
                // 2 bags per thread x ring latency 2 ops + freebuf backlog;
                // with per_op=2 >= retire rate 1/op the backlog cannot grow
                // unboundedly. Generous bound: 64 objects.
                assert!(g < 64, "garbage unbounded under AF: {g} at round {round}");
            }
        }
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }
}
