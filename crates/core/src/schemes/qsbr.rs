//! Quiescent-state-based reclamation (`qsbr`).
//!
//! Hart et al.'s QSBR \[20\]: threads do **not** announce every operation;
//! instead they pass through an explicit *quiescent state* once every `k`
//! operations, announcing the global epoch. The fuzzy barrier advances the
//! epoch when every thread has announced it. Cheaper per-op than RCU/EBR
//! (no announcement write on the operation path), at the cost of longer
//! grace periods — hence bigger batches, which is exactly what makes it
//! interesting for the paper's batch-vs-amortized question.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::schemes::EpochBag;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use crate::sync::{AtomicU64, Ordering};
use epic_alloc::{PoolAllocator, Tid};
use epic_util::{CachePadded, TidSlots};
use std::ptr::NonNull;
use std::sync::Arc;

/// Announcement sentinel: the thread has left the workload and counts as
/// permanently quiescent.
const OFFLINE: u64 = u64::MAX;

struct QsbrThread {
    bags: [EpochBag; 3],
    current_epoch: u64,
    ops_since_quiescent: usize,
}

/// QSBR. See module docs.
pub struct QsbrSmr {
    common: SchemeCommon,
    global_epoch: AtomicU64,
    announce: Box<[CachePadded<AtomicU64>]>,
    threads: TidSlots<QsbrThread>,
}

impl QsbrSmr {
    /// Builds the scheme.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        QsbrSmr {
            common: SchemeCommon::new("qsbr", alloc, cfg),
            global_epoch: AtomicU64::new(2),
            announce: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(2)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            threads: TidSlots::new_with(n, |_| QsbrThread {
                bags: Default::default(),
                current_epoch: 2,
                ops_since_quiescent: 0,
            }),
        }
    }

    /// The quiescent-state visit: announce the global epoch, rotate bags,
    /// and try to advance the fuzzy barrier.
    fn quiescent(&self, tid: Tid) {
        let e = self.global_epoch.load(Ordering::SeqCst);
        self.announce[tid].store(e, Ordering::SeqCst);

        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        if state.current_epoch != e {
            for bag in &mut state.bags {
                if bag.epoch + 2 <= e && !bag.items.is_empty() {
                    self.common.dispose(tid, &mut bag.items);
                }
            }
            state.current_epoch = e;
        }

        // Fuzzy barrier: advance if everyone announced e (or is offline).
        if self
            .announce
            .iter()
            .all(|a| matches!(a.load(Ordering::SeqCst), v if v == e || v == OFFLINE))
            && self
                .global_epoch
                .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
        {
            self.common.record_epoch_advance(tid, e + 1);
        }
    }
}

impl RawSmr for QsbrSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        state.ops_since_quiescent += 1;
        if state.ops_since_quiescent >= self.common.cfg.epoch_check_every {
            state.ops_since_quiescent = 0;
            self.quiescent(tid);
        }
    }

    fn end_op(&self, _tid: Tid) {}

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {}

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, ptr: NonNull<u8>) {
        self.common.stats.get(tid).on_retire(1);
        // Fresh-epoch tag (see rcu.rs): guarantees the lag-2 free rule is
        // safe even when the global epoch advanced since our last quiescent
        // announcement.
        let tag = self.global_epoch.load(Ordering::SeqCst);
        // SAFETY: tid-exclusivity contract.
        let state = unsafe { self.threads.get_mut(tid) };
        let bag = &mut state.bags[(tag % 3) as usize];
        if bag.epoch != tag {
            if !bag.items.is_empty() {
                debug_assert!(bag.epoch + 2 <= tag);
                self.common.dispose(tid, &mut bag.items);
            }
            bag.epoch = tag;
        }
        // SAFETY: `ptr` is a live block of this scheme's allocator (retire
        // contract), exclusively ours from unlink to free.
        unsafe { bag.items.push_retire(ptr, 0) };
    }

    fn detach(&self, tid: Tid) {
        if crate::mutants::active(crate::mutants::M_QSBR_DETACH_SKIP) {
            return;
        }
        // Without this, a finished thread's frozen announcement would pin
        // the fuzzy barrier forever — the QSBR equivalent of EBR's
        // thread-delay sensitivity, solved by explicit unregistration.
        self.announce[tid].store(OFFLINE, Ordering::SeqCst);
    }

    fn quiesce_and_drain(&self) {
        for tid in 0..self.common.n_threads() {
            // SAFETY: quiescence is the caller's contract.
            let state = unsafe { self.threads.get_mut(tid) };
            for bag in &mut state.bags {
                self.common.free_batch_now(tid, &mut bag.items);
            }
            self.common.drain_freebuf(tid);
        }
        self.common.sync_background();
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        SchemeLocal::passive()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::Qsbr
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn setup(n: usize, k: usize) -> (Arc<dyn PoolAllocator>, Arc<QsbrSmr>) {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        let mut cfg = SmrConfig::new(n);
        cfg.epoch_check_every = k;
        let smr = Arc::new(QsbrSmr::new(Arc::clone(&alloc), cfg));
        (alloc, smr)
    }

    #[test]
    fn epochs_advance_every_k_ops_single_thread() {
        let (alloc, smr) = setup(1, 10);
        for _ in 0..100 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
            smr.end_op(0);
        }
        let s = smr.stats();
        // 100 ops / k=10 -> 10 quiescent visits, each advancing.
        assert!(s.epochs >= 8, "expected ~10 epochs, got {}", s.epochs);
        assert!(s.freed > 0, "older bags must have been reclaimed");
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn non_quiescing_thread_blocks_reclamation() {
        let (alloc, smr) = setup(2, 5);
        // Thread 1 never runs an op (never reaches a quiescent state with
        // the new epoch after the first announcement)... its initial
        // announcement equals the starting epoch, so at most one advance.
        let before = smr.stats().epochs;
        for _ in 0..50 {
            smr.begin_op(0);
            let p = alloc.alloc(0, 64);
            smr.retire(0, p);
            smr.end_op(0);
        }
        assert!(smr.stats().epochs - before <= 1);
        assert!(
            smr.stats().garbage >= 49,
            "garbage piles up: {:?}",
            smr.stats()
        );
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
    }

    #[test]
    fn multithreaded_quiescence_reclaims() {
        let (alloc, smr) = setup(4, 4);
        let handles: Vec<_> = (0..4)
            .map(|tid| {
                let smr = Arc::clone(&smr);
                let alloc = Arc::clone(&alloc);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        smr.begin_op(tid);
                        let p = alloc.alloc(tid, 64);
                        smr.on_alloc(tid, p);
                        smr.retire(tid, p);
                        smr.end_op(tid);
                    }
                    // Unregister so a fast finisher cannot pin the barrier.
                    smr.detach(tid);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = smr.stats();
        assert!(s.epochs > 2, "epochs: {}", s.epochs);
        assert!(s.freed > 0);
        smr.quiesce_and_drain();
        assert_eq!(smr.stats().garbage, 0);
        assert_eq!(smr.stats().retired, 20_000);
    }
}
