//! The `none` baseline: never reclaim.
//!
//! The paper includes a leaky implementation in Experiment 1 because it is
//! "often (incorrectly) described as an upper bound on the performance of a
//! reclamation algorithm" — and then shows `token_af` and `debra_af`
//! *beating* it (Fig. 11a), since gradually recycled memory has better
//! locality than an ever-growing heap.

use crate::common::SchemeCommon;
use crate::config::SmrConfig;
use crate::smr_stats::SmrSnapshot;
use crate::{RawSmr, SchemeLocal, SmrKind};

use epic_alloc::{PoolAllocator, Tid};
use std::ptr::NonNull;
use std::sync::Arc;

/// Leaky no-op reclaimer.
pub struct LeakSmr {
    common: SchemeCommon,
}

impl LeakSmr {
    /// Builds the leaky baseline.
    pub fn new(alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        LeakSmr {
            common: SchemeCommon::new("none", alloc, cfg),
        }
    }
}

impl RawSmr for LeakSmr {
    fn begin_op(&self, tid: Tid) {
        self.common.relief(tid);
    }

    fn end_op(&self, _tid: Tid) {}

    fn protect(&self, _tid: Tid, _slot: usize, _ptr: usize) {}

    fn needs_validate(&self) -> bool {
        false
    }

    fn poll_restart(&self, _tid: Tid) -> bool {
        false
    }

    fn enter_write_phase(&self, _tid: Tid, _ptrs: &[usize]) {}

    fn on_alloc(&self, tid: Tid, _ptr: NonNull<u8>) {
        self.common.tick(tid);
    }

    fn try_pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        self.common.pool_alloc(tid, size)
    }

    fn retire(&self, tid: Tid, _ptr: NonNull<u8>) {
        // Count it as garbage forever: this is what "leaking" means for the
        // peak-memory figures.
        self.common.stats.get(tid).on_retire(1);
        self.common.stats.observe_garbage();
    }

    fn detach(&self, _tid: Tid) {}

    fn quiesce_and_drain(&self) {
        // Leaks by definition. Pool memory is reclaimed when the allocator
        // drops.
    }

    fn stats(&self) -> SmrSnapshot {
        self.common.stats.snapshot()
    }

    fn reset_stats(&self) {
        self.common.stats.reset();
    }

    fn name(&self) -> &str {
        self.common.name()
    }

    fn max_threads(&self) -> usize {
        self.common.n_threads()
    }

    fn local(&self, _tid: Tid) -> SchemeLocal {
        SchemeLocal::passive()
    }

    fn kind(&self) -> SmrKind {
        SmrKind::None
    }

    fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.common.alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    #[test]
    fn retire_never_frees() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let smr = LeakSmr::new(Arc::clone(&alloc), SmrConfig::new(1));
        let p = alloc.alloc(0, 64);
        smr.begin_op(0);
        smr.retire(0, p);
        smr.end_op(0);
        smr.quiesce_and_drain();
        let s = smr.stats();
        assert_eq!(s.retired, 1);
        assert_eq!(s.freed, 0);
        assert_eq!(s.garbage, 1);
        assert_eq!(s.peak_garbage, 1);
        assert_eq!(smr.name(), "none");
        // The block is still allocated as far as the allocator knows.
        assert_eq!(alloc.snapshot().totals.deallocs, 0);
    }
}
