//! The thread-bound protection API: [`Smr`] → [`SmrHandle`] → [`OpGuard`].
//!
//! The raw [`RawSmr`] trait threads a [`Tid`] through every
//! hot-path call, and each scheme re-indexes its per-thread slot arrays on
//! every `protect`. This module resolves that per-thread state **once**, at
//! [`Smr::register`], into a [`SchemeLocal`] — cached pointers to the
//! thread's own hazard/era slots, reservation cell, or restart counter —
//! so the per-hop protocol ([`OpGuard::protect_load`]) runs with no `tid`
//! arithmetic and no dyn dispatch.
//!
//! The protocol itself (§3 of the paper: publish → re-read/validate →
//! write phase → retire) lives here in exactly one place:
//!
//! ```text
//! let h = smr.register(tid);            // once per thread
//! let guard = h.begin_op();             // RAII begin_op/end_op
//! loop {
//!     let Ok(next) = guard.protect_load(slot, link) else { restart };
//!     ...
//! }
//! guard.enter_write_phase(&[nodes]);
//! guard.retire(unlinked);
//! drop(guard);                          // end_op
//! ```
//!
//! Misuse is ruled out by construction: registering the same tid twice
//! panics, an [`OpGuard`] cannot outlive its handle (borrow), and neither
//! type can cross threads (`!Send`/`!Sync`) — see the `compile_fail`
//! doctests on [`SmrHandle`].

use crate::sync::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::{RawSmr, SmrKind, SmrSnapshot};
use epic_alloc::{PoolAllocator, Tid};
use std::cell::Cell;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::Arc;

/// Low link-word bits treated as data-structure tag bits (mark flags).
/// [`OpGuard::protect_load`] strips them before publishing a pointer to a
/// hazard slot; nodes are ≥ 16-aligned so the bits never carry address.
pub const LINK_TAG_MASK: usize = 0b11;

/// The operation must be restarted from the root: a neutralization request
/// (NBR) arrived mid-traversal. The caller must drop every data-structure
/// pointer it obtained under the current guard before retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Restart;

/// Out-of-line panic for a slot index past the scheme's `hp_slots`: keeps
/// the bounds check in [`OpGuard::protect_load`] to one predictable
/// compare without dragging panic formatting into the hot loop.
#[cold]
#[inline(never)]
fn slot_out_of_range(slot: usize, k: usize) -> ! {
    panic!("protection slot {slot} out of range (scheme has {k} slots per thread)");
}

/// A scheme's per-thread fast path, captured once at registration.
///
/// Internally this caches raw pointers into state the scheme owns (boxed
/// slot arrays, cache-padded reservation cells). The pointers stay valid
/// for the scheme's lifetime, which the [`SmrHandle`] pins via its `Arc`;
/// the handle's `!Send`/`!Sync` marker keeps the per-thread cells
/// single-writer. The representation is sealed: values can only be built
/// through the constructors below, whose pointer-caching forms are
/// `unsafe` with an explicit stability contract.
pub struct SchemeLocal(Local);

/// The variants, private so safe code cannot forge a pointer-carrying
/// value (see [`SchemeLocal`]).
enum Local {
    /// `protect` is a no-op and links never need re-validation
    /// (epoch/token/QSBR/leak schemes): the grace period covers the whole
    /// operation.
    Passive,
    /// Hazard pointers: publish the (tag-stripped) pointer to one of the
    /// thread's `k` hazard slots with SeqCst ordering, then re-read the
    /// link until stable (Michael's protocol).
    HazardSlots { slots: *const AtomicUsize, k: usize },
    /// Hazard eras: publish the current global era to the thread's era
    /// slot (skipping the store when unchanged), then validate the link.
    EraSlots {
        era: *const AtomicU64,
        slots: *const AtomicU64,
        k: usize,
    },
    /// Wait-free eras: like [`Local::EraSlots`] but each slot is a
    /// `[enter, exit]` double word published with an intervening fence
    /// (WFE's two-location handshake).
    EraSlots2 {
        era: *const AtomicU64,
        slots: *const AtomicU64,
        k: usize,
    },
    /// Interval-based reclamation: bump the thread's reservation upper
    /// bound to the current era before dereferencing, then validate.
    EraInterval {
        era: *const AtomicU64,
        hi: *const AtomicU64,
    },
    /// NBR: reads are unprotected, but every hop polls the thread's
    /// neutralization-request counter. `seen` mirrors the last counter
    /// value routed through [`RawSmr::poll_restart`], so the common
    /// no-request case is one relaxed-ish load and a compare — no dyn call.
    RestartPoll {
        request: *const AtomicU64,
        seen: Cell<u64>,
    },
}

impl SchemeLocal {
    /// Fast path for schemes whose `protect` is a no-op.
    pub fn passive() -> Self {
        SchemeLocal(Local::Passive)
    }

    /// Fast path over `slots`, the registering thread's own hazard slots.
    ///
    /// # Safety
    /// `slots` must borrow from state owned *by the scheme itself* and
    /// remain valid (unmoved) for the scheme's whole lifetime — the
    /// [`SmrHandle`]'s `Arc` pins the scheme, not a stack temporary.
    pub unsafe fn hazard_slots(slots: &[AtomicUsize]) -> Self {
        SchemeLocal(Local::HazardSlots {
            slots: slots.as_ptr(),
            k: slots.len(),
        })
    }

    /// Fast path over the global `era` clock and the registering thread's
    /// own era slots.
    ///
    /// # Safety
    /// As [`hazard_slots`](Self::hazard_slots), for both `era` and
    /// `slots`.
    pub unsafe fn era_slots(era: &AtomicU64, slots: &[AtomicU64]) -> Self {
        SchemeLocal(Local::EraSlots {
            era,
            slots: slots.as_ptr(),
            k: slots.len(),
        })
    }

    /// Like [`era_slots`](Self::era_slots) for double-word (`[enter,
    /// exit]`) announcements; `slots` holds `2 * k` words.
    ///
    /// # Safety
    /// As [`hazard_slots`](Self::hazard_slots), for both `era` and
    /// `slots`.
    pub unsafe fn era_slots_2wide(era: &AtomicU64, slots: &[AtomicU64]) -> Self {
        debug_assert!(slots.len().is_multiple_of(2));
        SchemeLocal(Local::EraSlots2 {
            era,
            slots: slots.as_ptr(),
            k: slots.len() / 2,
        })
    }

    /// Fast path over the global `era` clock and the registering thread's
    /// reservation upper bound.
    ///
    /// # Safety
    /// As [`hazard_slots`](Self::hazard_slots), for both `era` and `hi`.
    pub unsafe fn era_interval(era: &AtomicU64, hi: &AtomicU64) -> Self {
        SchemeLocal(Local::EraInterval { era, hi })
    }

    /// Fast path over the registering thread's neutralization-request
    /// counter. Requests not yet observed are routed through
    /// [`RawSmr::poll_restart`].
    ///
    /// # Safety
    /// As [`hazard_slots`](Self::hazard_slots), for `request`.
    pub unsafe fn restart_poll(request: &AtomicU64) -> Self {
        SchemeLocal(Local::RestartPoll {
            request,
            seen: Cell::new(request.load(Ordering::SeqCst)),
        })
    }
}

/// A shared reclamation scheme: the cheap-to-clone, `Send + Sync` entry
/// point returned by [`build_smr`](crate::build_smr).
///
/// Cross-thread surface only: trial setup obtains per-thread
/// [`SmrHandle`]s via [`register`](Smr::register); the harness-side
/// lifecycle calls (`stats`, `detach`, `quiesce_and_drain`) delegate to the
/// underlying [`RawSmr`], which remains reachable through
/// [`raw`](Smr::raw) as the escape hatch for scheme-driving code that
/// manages tids itself (sweep construction, microbenches, custom schemes).
#[derive(Clone)]
pub struct Smr {
    raw: Arc<dyn RawSmr>,
    /// One flag per tid; `register` flips it on, handle drop flips it off.
    registered: Arc<[AtomicBool]>,
}

impl Smr {
    /// Wraps a raw scheme (the normal path is
    /// [`build_smr`](crate::build_smr); use this for custom schemes).
    pub fn from_raw(raw: Arc<dyn RawSmr>) -> Smr {
        let registered = (0..raw.max_threads())
            .map(|_| AtomicBool::new(false))
            .collect::<Vec<_>>()
            .into();
        Smr { raw, registered }
    }

    /// The underlying scheme object — the tid-everywhere escape hatch.
    pub fn raw(&self) -> &Arc<dyn RawSmr> {
        &self.raw
    }

    /// Unwraps into the raw scheme object.
    pub fn into_raw(self) -> Arc<dyn RawSmr> {
        self.raw
    }

    /// Binds the calling thread to `tid`, resolving the scheme's
    /// per-thread hot state once.
    ///
    /// # Panics
    /// If `tid` is out of range or already registered (through *this*
    /// facade or a clone of it) without having been released — the
    /// one-thread-per-tid contract every lower layer relies on.
    pub fn register(&self, tid: Tid) -> SmrHandle {
        assert!(
            tid < self.registered.len(),
            "tid {tid} out of range for {} threads",
            self.registered.len()
        );
        assert!(
            !self.registered[tid].swap(true, Ordering::AcqRel),
            "tid {tid} is already registered; drop (or detach) its SmrHandle first"
        );
        SmrHandle {
            alloc: Arc::clone(self.raw.allocator()),
            local: self.raw.local(tid),
            validating: self.raw.needs_validate(),
            raw: Arc::clone(&self.raw),
            registered: Arc::clone(&self.registered),
            tid,
            _not_send_sync: PhantomData,
        }
    }

    /// Scheme name including the free-mode suffix (e.g. `"debra_af"`).
    pub fn name(&self) -> &str {
        self.raw.name()
    }

    /// The scheme's kind tag.
    pub fn kind(&self) -> SmrKind {
        self.raw.kind()
    }

    /// Aggregated scheme statistics.
    pub fn stats(&self) -> SmrSnapshot {
        self.raw.stats()
    }

    /// Resets statistics between trials.
    pub fn reset_stats(&self) {
        self.raw.reset_stats()
    }

    /// Announces that `tid` has left the workload (see
    /// [`RawSmr::detach`]); prefer [`SmrHandle::detach`], which also
    /// releases the registration.
    pub fn detach(&self, tid: Tid) {
        self.raw.detach(tid)
    }

    /// Teardown: frees everything still in limbo (see
    /// [`RawSmr::quiesce_and_drain`]).
    pub fn quiesce_and_drain(&self) {
        self.raw.quiesce_and_drain()
    }

    /// The allocator this scheme frees through.
    pub fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        self.raw.allocator()
    }
}

/// A thread's bound view of a scheme: `tid`, allocator, and the scheme's
/// [`SchemeLocal`] fast path, resolved once by [`Smr::register`].
///
/// Neither the handle nor its guards can cross threads:
///
/// ```compile_fail
/// # use epic_alloc::{build_allocator, AllocatorKind, CostModel};
/// # use epic_smr::{build_smr, SmrConfig, SmrKind};
/// let smr = build_smr(
///     SmrKind::Debra,
///     build_allocator(AllocatorKind::Sys, 1, CostModel::zero()),
///     SmrConfig::new(1),
/// );
/// let h = smr.register(0);
/// std::thread::spawn(move || drop(h)); // ERROR: SmrHandle is !Send
/// ```
///
/// and an [`OpGuard`] cannot outlive the handle it was pinned from:
///
/// ```compile_fail
/// # use epic_alloc::{build_allocator, AllocatorKind, CostModel};
/// # use epic_smr::{build_smr, SmrConfig, SmrKind};
/// let smr = build_smr(
///     SmrKind::Debra,
///     build_allocator(AllocatorKind::Sys, 1, CostModel::zero()),
///     SmrConfig::new(1),
/// );
/// let guard = {
///     let h = smr.register(0);
///     h.begin_op() // ERROR: borrowed value does not live long enough
/// };
/// ```
pub struct SmrHandle {
    raw: Arc<dyn RawSmr>,
    alloc: Arc<dyn PoolAllocator>,
    registered: Arc<[AtomicBool]>,
    tid: Tid,
    local: SchemeLocal,
    validating: bool,
    /// `SchemeLocal::Passive` holds no pointers; this marker makes the
    /// handle `!Send`/`!Sync` for every scheme, not just the caching ones.
    _not_send_sync: PhantomData<*mut ()>,
}

impl SmrHandle {
    /// The bound thread id.
    #[inline]
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Begins a data-structure operation (publishes epoch/reservation
    /// state, drains the amortized-free list). The returned guard ends the
    /// operation on drop.
    #[inline]
    pub fn begin_op(&self) -> OpGuard<'_> {
        self.raw.begin_op(self.tid);
        OpGuard {
            h: self,
            stale: Cell::new(false),
        }
    }

    /// Allocates `size` bytes for a node: object pool first
    /// ([`FreeMode::Pooled`](crate::FreeMode::Pooled)), allocator
    /// otherwise, with the scheme's `on_alloc` hook (birth-era stamp +
    /// amortized-free tick) already applied.
    #[inline]
    pub fn alloc(&self, size: usize) -> NonNull<u8> {
        let ptr = self
            .raw
            .try_pool_alloc(self.tid, size)
            .unwrap_or_else(|| self.alloc.alloc(self.tid, size));
        self.raw.on_alloc(self.tid, ptr);
        ptr
    }

    /// Returns an *unpublished* block straight to the allocator (failed
    /// CAS / validation paths — the block was never visible to other
    /// threads, so it must not go through `retire`).
    ///
    /// # Safety
    /// `ptr` must come from [`alloc`](Self::alloc) on this handle and must
    /// not have been published to the data structure.
    #[inline]
    pub unsafe fn dealloc_unpublished(&self, ptr: NonNull<u8>) {
        self.alloc.dealloc(self.tid, ptr);
    }

    /// The allocator this handle allocates from.
    pub fn allocator(&self) -> &Arc<dyn PoolAllocator> {
        &self.alloc
    }

    /// True for slot/era schemes, whose protected targets can be retired
    /// (and their memory recycled) mid-operation. Data structures consult
    /// this for *their own* staleness checks (e.g. a copy-on-write parent's
    /// mark bit) layered on top of [`OpGuard::protect_load`]'s link
    /// validation; under grace-period schemes such checks are unnecessary
    /// and skipped.
    #[inline]
    pub fn validating(&self) -> bool {
        self.validating
    }

    /// Leaves the workload for good: forwards to [`RawSmr::detach`]
    /// (permanent quiescence / ring removal) and releases the tid
    /// registration. A plainly dropped handle releases the tid without
    /// detaching — right for transient registrations (prefill threads)
    /// whose tid keeps operating later.
    pub fn detach(self) {
        self.raw.detach(self.tid);
        // Drop releases the registration flag.
    }
}

impl Drop for SmrHandle {
    fn drop(&mut self) {
        self.registered[self.tid].store(false, Ordering::Release);
    }
}

/// RAII operation scope obtained from [`SmrHandle::begin_op`]; `end_op`
/// runs on drop. Carries the protocol combinators the data structures
/// build on — see [`protect_load`](OpGuard::protect_load).
///
/// Like the handle it borrows, a guard is pinned to its thread:
///
/// ```compile_fail
/// fn assert_send<T: Send>() {}
/// assert_send::<epic_smr::OpGuard<'static>>(); // ERROR: OpGuard is !Send
/// ```
pub struct OpGuard<'h> {
    h: &'h SmrHandle,
    /// Set by [`restart`](Self::restart): protections established before
    /// the restart are void, so a retire before re-protecting (another
    /// [`protect_load`](Self::protect_load) or
    /// [`enter_write_phase`](Self::enter_write_phase)) is a misuse —
    /// [`retire`](Self::retire) panics on it.
    stale: Cell<bool>,
}

impl<'h> OpGuard<'h> {
    /// The guarded thread id.
    #[inline]
    pub fn tid(&self) -> Tid {
        self.h.tid
    }

    /// The handle this guard was pinned from.
    #[inline]
    pub fn handle(&self) -> &'h SmrHandle {
        self.h
    }

    /// See [`SmrHandle::validating`].
    #[inline]
    pub fn validating(&self) -> bool {
        self.h.validating
    }

    /// One protected hop — **the** protocol primitive. Loads `link`,
    /// publishes whatever protection the scheme requires for the loaded
    /// pointer (hazard slot, era slot, reservation bump), and re-reads the
    /// link until it is stable under the published protection; then polls
    /// for neutralization (NBR).
    ///
    /// Returns the stable raw link word — low [`LINK_TAG_MASK`] bits (mark
    /// flags) included; they are stripped only for slot publication. On
    /// `Err(`[`Restart`]`)` the caller must drop every pointer read under
    /// this guard and restart its operation from the root.
    ///
    /// Epoch/token schemes compile this down to the single `Acquire` load.
    #[inline]
    pub fn protect_load(&self, slot: usize, link: &AtomicUsize) -> Result<usize, Restart> {
        let r = self.protect_load_inner(slot, link);
        if r.is_ok() {
            // A successful protection re-arms the guard after a restart.
            self.stale.set(false);
        }
        r
    }

    #[inline]
    fn protect_load_inner(&self, slot: usize, link: &AtomicUsize) -> Result<usize, Restart> {
        let mut raw = link.load(Ordering::Acquire);
        match &self.h.local.0 {
            Local::Passive => Ok(raw),
            Local::HazardSlots { slots, k } => {
                if slot >= *k {
                    slot_out_of_range(slot, *k);
                }
                // SAFETY: `slots` points at this thread's `k` hazard slots
                // (bounds just checked), alive while the handle's Arc pins
                // the scheme.
                let s = unsafe { &*slots.add(slot) };
                loop {
                    // SeqCst: the announcement must be ordered before the
                    // validating re-read (Michael's protocol).
                    s.store(
                        raw & !LINK_TAG_MASK,
                        crate::mutants::ord(crate::mutants::M_HP_PUBLISH_RELAXED, Ordering::SeqCst),
                    );
                    let again = link.load(Ordering::Acquire);
                    if again == raw {
                        return Ok(raw);
                    }
                    raw = again;
                }
            }
            Local::EraSlots { era, slots, k } => {
                if slot >= *k {
                    slot_out_of_range(slot, *k);
                }
                // SAFETY: as above — bounds checked, scheme-owned cells
                // pinned by the Arc.
                let (era, s) = unsafe { (&**era, &*slots.add(slot)) };
                loop {
                    let e = era.load(Ordering::SeqCst);
                    if s.load(Ordering::Relaxed) != e {
                        // SeqCst: publication precedes the validating
                        // re-read.
                        s.store(e, Ordering::SeqCst);
                    }
                    let again = link.load(Ordering::Acquire);
                    if again == raw {
                        return Ok(raw);
                    }
                    raw = again;
                }
            }
            Local::EraSlots2 { era, slots, k } => {
                if slot >= *k {
                    slot_out_of_range(slot, *k);
                }
                // SAFETY: as above.
                let (era, enter, exit) =
                    unsafe { (&**era, &*slots.add(slot * 2), &*slots.add(slot * 2 + 1)) };
                loop {
                    let e = era.load(Ordering::SeqCst);
                    if exit.load(Ordering::Relaxed) != e {
                        // Double-word publication: enter, fence, exit.
                        enter.store(e, Ordering::SeqCst);
                        fence(Ordering::SeqCst);
                        exit.store(e, Ordering::SeqCst);
                    }
                    let again = link.load(Ordering::Acquire);
                    if again == raw {
                        return Ok(raw);
                    }
                    raw = again;
                }
            }
            Local::EraInterval { era, hi } => {
                // SAFETY: as above.
                let (era, hi) = unsafe { (&**era, &**hi) };
                loop {
                    let e = era.load(Ordering::SeqCst);
                    if hi.load(Ordering::Relaxed) < e {
                        // SeqCst: the widened interval must be visible
                        // before the validating re-read.
                        hi.store(
                            e,
                            crate::mutants::ord(
                                crate::mutants::M_IBR_BUMP_RELAXED,
                                Ordering::SeqCst,
                            ),
                        );
                    }
                    let again = link.load(Ordering::Acquire);
                    if again == raw {
                        return Ok(raw);
                    }
                    raw = again;
                }
            }
            Local::RestartPoll { request, seen } => {
                // SAFETY: as above.
                let req = unsafe { &**request }.load(Ordering::SeqCst);
                if req != seen.get() {
                    // Route through the scheme: it acknowledges, counts the
                    // restart, and knows about write-phase immunity.
                    seen.set(req);
                    if self.h.raw.poll_restart(self.h.tid) {
                        return Err(Restart);
                    }
                }
                Ok(raw)
            }
        }
    }

    /// Explicit neutralization poll for hops that do not go through
    /// [`protect_load`](Self::protect_load) (see [`RawSmr::poll_restart`]).
    #[inline]
    pub fn poll_restart(&self) -> bool {
        match &self.h.local.0 {
            Local::RestartPoll { request, seen } => {
                // SAFETY: scheme-owned cell pinned by the handle's Arc.
                let req = unsafe { &**request }.load(Ordering::SeqCst);
                if req == seen.get() {
                    return false;
                }
                seen.set(req);
                self.h.raw.poll_restart(self.h.tid)
            }
            _ => false,
        }
    }

    /// Declares the pointers still dereferenced during the write phase;
    /// the thread is immune to neutralization until the guard drops (see
    /// [`RawSmr::enter_write_phase`]).
    #[inline]
    pub fn enter_write_phase(&self, ptrs: &[usize]) {
        self.stale.set(false);
        self.h.raw.enter_write_phase(self.h.tid, ptrs);
    }

    /// Re-enters the read phase after a failed publish (lost CAS, stale
    /// window): re-runs the scheme's `begin_op` under the same guard,
    /// clearing write-phase immunity and re-ticking the amortized drain.
    #[inline]
    pub fn restart(&self) {
        self.stale.set(true);
        self.h.raw.begin_op(self.h.tid);
    }

    /// Retires an unlinked node through the scheme (see [`RawSmr::retire`]).
    ///
    /// # Panics
    /// If called after [`restart`](Self::restart) without re-protecting
    /// first: the restart voided every protection this guard had
    /// established, so the "unlinked" node may never have been safely
    /// reachable.
    #[inline]
    pub fn retire(&self, ptr: NonNull<u8>) {
        assert!(
            !self.stale.get(),
            "OpGuard::retire after restart(): re-protect (protect_load / enter_write_phase) first"
        );
        self.h.raw.retire(self.h.tid, ptr);
    }

    /// Node allocation with the `on_alloc` hook fused — see
    /// [`SmrHandle::alloc`].
    #[inline]
    pub fn alloc(&self, size: usize) -> NonNull<u8> {
        self.h.alloc(size)
    }

    /// Returns an unpublished block — see
    /// [`SmrHandle::dealloc_unpublished`].
    ///
    /// # Safety
    /// As [`SmrHandle::dealloc_unpublished`].
    #[inline]
    pub unsafe fn dealloc_unpublished(&self, ptr: NonNull<u8>) {
        // SAFETY: forwarded to caller.
        unsafe { self.h.dealloc_unpublished(ptr) }
    }
}

impl Drop for OpGuard<'_> {
    fn drop(&mut self) {
        self.h.raw.end_op(self.h.tid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_smr, SmrConfig};
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};

    fn smr(kind: SmrKind, n: usize) -> Smr {
        let alloc = build_allocator(AllocatorKind::Sys, n, CostModel::zero());
        build_smr(kind, alloc, SmrConfig::new(n))
    }

    #[test]
    fn register_release_reregister() {
        let s = smr(SmrKind::Debra, 2);
        let h0 = s.register(0);
        let _h1 = s.register(1);
        assert_eq!(h0.tid(), 0);
        drop(h0);
        let h0 = s.register(0); // released by drop
        drop(h0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn double_register_panics() {
        let s = smr(SmrKind::Hp, 2);
        let _a = s.register(0);
        let _b = s.register(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_register_panics() {
        let s = smr(SmrKind::Qsbr, 2);
        let _ = s.register(2);
    }

    #[test]
    #[should_panic(expected = "retire after restart()")]
    fn retire_after_restart_panics() {
        let s = smr(SmrKind::Hp, 1);
        let h = s.register(0);
        let g = h.begin_op();
        let p = g.alloc(64);
        g.enter_write_phase(&[p.as_ptr() as usize]);
        g.restart(); // voids the protections established above
        g.retire(p); // must panic: nothing re-protected since the restart
    }

    #[test]
    fn retire_after_restart_and_reprotect_is_fine() {
        for kind in SmrKind::ALL {
            let s = smr(kind, 1);
            let h = s.register(0);
            {
                let g = h.begin_op();
                let p = g.alloc(64);
                let link = AtomicUsize::new(p.as_ptr() as usize);
                g.restart();
                // The ds crates' lost-CAS loops re-traverse (protect_load)
                // or re-pin (enter_write_phase) before retiring again.
                let read = g.protect_load(0, &link).expect("no neutralization");
                g.enter_write_phase(&[read]);
                g.retire(p);
            }
            s.quiesce_and_drain();
            assert_eq!(s.stats().retired, 1, "{kind:?}");
        }
    }

    #[test]
    fn clone_shares_the_registry() {
        let s = smr(SmrKind::Rcu, 1);
        let s2 = s.clone();
        let h = s.register(0);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s2.register(0))).is_err();
        assert!(caught, "clone must see the registration");
        drop(h);
        drop(s2.register(0));
    }

    #[test]
    fn detach_releases_the_tid() {
        let s = smr(SmrKind::Qsbr, 1);
        let h = s.register(0);
        h.detach();
        drop(s.register(0));
    }

    #[test]
    fn guard_cycle_retires_and_frees() {
        for kind in SmrKind::ALL {
            let s = smr(kind, 1);
            let h = s.register(0);
            {
                let g = h.begin_op();
                let p = g.alloc(64);
                let link = AtomicUsize::new(p.as_ptr() as usize);
                let read = g.protect_load(0, &link).expect("no neutralization");
                assert_eq!(read, p.as_ptr() as usize, "{kind:?}");
                g.enter_write_phase(&[read]);
                g.retire(p);
            }
            s.quiesce_and_drain();
            let st = s.stats();
            assert_eq!(st.retired, 1, "{kind:?}");
            assert_eq!(st.freed + st.garbage, 1, "{kind:?}");
        }
    }

    #[test]
    fn protect_load_publishes_and_validates() {
        // hp: the hazard slot must hold the tag-stripped pointer after a
        // protected hop, and a moved link must be re-read to stability.
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let raw = Arc::new(crate::schemes::hp::HpSmr::new(
            Arc::clone(&alloc),
            SmrConfig::new(1),
        ));
        let s = Smr::from_raw(Arc::clone(&raw) as Arc<dyn RawSmr>);
        let h = s.register(0);
        let g = h.begin_op();
        let target = alloc.alloc(0, 64).as_ptr() as usize;
        let link = AtomicUsize::new(target | 0b1); // marked link
        let read = g.protect_load(2, &link).unwrap();
        assert_eq!(read, target | 0b1, "raw word returned, mark intact");
        assert_eq!(
            raw.slot_value(0, 2),
            target,
            "published pointer is tag-stripped"
        );
        drop(g);
        assert_eq!(raw.slot_value(0, 2), 0, "end_op clears the slot");
        // SAFETY: block is live and unpublished.
        unsafe { h.dealloc_unpublished(NonNull::new(target as *mut u8).unwrap()) };
    }

    #[test]
    fn restart_poll_surfaces_neutralization() {
        let alloc = build_allocator(AllocatorKind::Sys, 2, CostModel::zero());
        let s = build_smr(
            SmrKind::Nbr,
            Arc::clone(&alloc),
            SmrConfig::new(2).with_bag_cap(4),
        );
        let h = s.register(1);
        let g = h.begin_op();
        let link = AtomicUsize::new(0xdead_0000);
        assert!(g.protect_load(0, &link).is_ok(), "no request yet");
        // Thread 0 fills two bag generations from another OS thread; the
        // handshake completes once thread 1's protect_load observes the
        // request and returns Restart.
        let s2 = s.clone();
        let alloc2 = Arc::clone(&alloc);
        let reclaimer = std::thread::spawn(move || {
            let h0 = s2.register(0);
            let g0 = h0.begin_op();
            for _ in 0..9 {
                let p = alloc2.alloc(0, 64);
                g0.retire(p);
            }
        });
        let mut restarted = false;
        for _ in 0..10_000_000 {
            if g.protect_load(0, &link).is_err() {
                restarted = true;
                break;
            }
        }
        reclaimer.join().unwrap();
        assert!(restarted, "read-phase thread must observe Restart");
        assert!(s.stats().restarts >= 1);
        drop(g);
        drop(h);
        s.quiesce_and_drain();
    }
}
