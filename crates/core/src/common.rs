//! Machinery shared by every scheme: batch disposal (batch vs amortized),
//! timeline instrumentation, garbage sampling, recycled scan scratch.
//!
//! Everything here is on the retire→rotate→drain→free path and therefore
//! allocation-free in steady state: safe batches move as O(1) intrusive
//! splices ([`RetiredList`]), and reclamation scans borrow recycled
//! [`Segment`] scratch whose rare heap misses are counted into
//! [`SmrStats`] (`retire_path_allocs`) so the harness can assert zero.

use crate::adaptive::{AdaptiveCtrl, CtrlSignals};
use crate::config::{FreeMode, SmrConfig};
use crate::freebuf::{FreeBuffer, PoolBins};
use crate::retired::RetiredList;
use crate::smr_stats::SmrStats;

use crate::sync::Ordering;
use epic_alloc::{PoolAllocator, Segment, SegmentPool, Tid};
use epic_timeline::EventKind;
use epic_util::{now_ns, TidSlots};
use std::ptr::NonNull;
use std::sync::mpsc;
use std::sync::Arc;

/// Work sent to the background reclaimer thread.
enum BgMsg {
    /// A safe batch to free (the intrusive list travels whole; the channel
    /// send is the synchronizing hand-off).
    Batch(RetiredList),
    /// Flush barrier: ack once everything sent before it is freed.
    Sync(mpsc::Sender<()>),
}

/// The background reclaimer of [`FreeMode::Background`].
struct BgReclaimer {
    sender: mpsc::Sender<BgMsg>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Shared state embedded in every scheme.
pub struct SchemeCommon {
    /// The allocator retired objects are freed through.
    pub alloc: Arc<dyn PoolAllocator>,
    /// Scheme configuration.
    pub cfg: SmrConfig,
    /// Counters (one extra slot for the background reclaimer's tid).
    pub stats: SmrStats,
    /// Full scheme name (base + free-mode suffix), interned once here so
    /// per-trial stats paths never re-format it.
    name: String,
    freebufs: TidSlots<FreeBuffer>,
    pools: TidSlots<PoolBins>,
    /// Per-thread batch-free controllers ([`FreeMode::Adaptive`] only;
    /// idle otherwise).
    ctrls: TidSlots<AdaptiveCtrl>,
    /// Recycled scan scratch, one pool per thread.
    scratch_pools: TidSlots<SegmentPool>,
    bg: Option<BgReclaimer>,
}

impl SchemeCommon {
    /// Builds the shared state for the scheme named `base` (the free-mode
    /// suffix is appended here, once).
    pub fn new(base: &str, alloc: Arc<dyn PoolAllocator>, cfg: SmrConfig) -> Self {
        let n = cfg.max_threads;
        // Stats get one extra slot so the background reclaimer (tid == n)
        // has somewhere to account its frees.
        let stats = SmrStats::new(n + 1);
        // Scan snapshots are bounded by the widest published state any
        // scheme keeps: two era words per hazard slot per thread.
        let scratch_cap = (n * cfg.hp_slots * 2).max(16);
        let bg = matches!(cfg.mode, FreeMode::Background).then(|| {
            let (sender, receiver) = mpsc::channel::<BgMsg>();
            let alloc = Arc::clone(&alloc);
            // The reclaimer frees through its OWN tid (n), hence its own
            // thread cache: the caller must have built the allocator for
            // n + 1 tids. Its batch frees overflow that cache exactly like
            // a worker's would — which is the §6 point.
            let handle = std::thread::Builder::new()
                .name("epic-smr-bg-reclaimer".into())
                .spawn(move || {
                    let bg_tid = n;
                    while let Ok(msg) = receiver.recv() {
                        match msg {
                            BgMsg::Batch(mut batch) => {
                                while let Some(r) = batch.pop() {
                                    alloc.dealloc(bg_tid, r.ptr);
                                }
                            }
                            BgMsg::Sync(ack) => {
                                let _ = ack.send(());
                            }
                        }
                    }
                })
                .expect("spawn background reclaimer");
            BgReclaimer {
                sender,
                handle: Some(handle),
            }
        });
        SchemeCommon {
            name: format!("{}{}", base, cfg.mode.suffix()),
            alloc,
            ctrls: TidSlots::new_with(n, |_| AdaptiveCtrl::new(&cfg)),
            cfg,
            stats,
            freebufs: TidSlots::new_with(n, |_| FreeBuffer::new()),
            pools: TidSlots::new_with(n, |_| PoolBins::new()),
            scratch_pools: TidSlots::new_with(n, |_| SegmentPool::new(scratch_cap)),
            bg,
        }
    }

    /// Number of participating threads.
    #[inline]
    pub fn n_threads(&self) -> usize {
        self.cfg.max_threads
    }

    /// The limbo-bag cap threshold schemes compare against on the retire
    /// path: the static `cfg.bag_cap`, except in [`FreeMode::Adaptive`]
    /// where it is `tid`'s controller's current cap (one `usize` read from
    /// the thread's own slot — the only adaptive cost on the fast path).
    #[inline]
    pub fn bag_cap(&self, tid: Tid) -> usize {
        match self.cfg.mode {
            // SAFETY: tid-exclusivity contract (read of own slot).
            FreeMode::Adaptive => unsafe { self.ctrls.peek(tid) }.bag_cap(),
            _ => self.cfg.bag_cap,
        }
    }

    /// Runs `tid`'s controller over the window that just ended
    /// ([`FreeMode::Adaptive`] batch-disposal boundaries only). Every
    /// signal is an owner-thread `Cell` read or a stack snapshot of the
    /// thread's allocator counters — no allocation, no cross-thread
    /// traffic.
    fn adapt_recompute(&self, tid: Tid) {
        let c = self.stats.get(tid);
        let signals = CtrlSignals {
            // SAFETY: tid-exclusivity contract (len read of own slot).
            backlog: unsafe { self.freebufs.peek(tid).len() },
            garbage: c.garbage.get(),
            flushes: self.alloc.thread_stats(tid).flushes,
            scans: c.scans.get(),
            free_ns: c.free_ns.get(),
            freed: c.freed.get(),
        };
        // SAFETY: tid-exclusivity contract.
        unsafe { self.ctrls.get_mut(tid) }.update(signals);
    }

    /// Borrows `tid`'s recycled scan scratch, cleared, with room for at
    /// least `min_cap` slots. Return it with
    /// [`scratch_done`](Self::scratch_done); the rare heap allocation a
    /// miss costs is charged to the `retire_path_allocs` counter.
    pub fn scratch(&self, tid: Tid, min_cap: usize) -> Segment {
        // SAFETY: tid-exclusivity contract.
        let pool = unsafe { self.scratch_pools.get_mut(tid) };
        let seg = pool.acquire(min_cap);
        let fresh = pool.take_heap_allocs();
        if fresh > 0 {
            self.stats.get(tid).on_retire_path_alloc(fresh);
        }
        seg
    }

    /// Returns a borrowed scratch segment for recycling. A segment that
    /// grew past its granted capacity while borrowed is charged here.
    pub fn scratch_done(&self, tid: Tid, seg: Segment) {
        // SAFETY: tid-exclusivity contract.
        let pool = unsafe { self.scratch_pools.get_mut(tid) };
        pool.release(seg);
        let grown = pool.take_heap_allocs();
        if grown > 0 {
            self.stats.get(tid).on_retire_path_alloc(grown);
        }
    }

    /// Disposes of a batch that has just been proven *safe to free*,
    /// according to the configured [`FreeMode`]. The batch list is left
    /// empty (reusable).
    pub fn dispose(&self, tid: Tid, batch: &mut RetiredList) {
        if batch.is_empty() {
            return;
        }
        self.stats.get(tid).on_batch();
        match self.cfg.mode {
            FreeMode::Batch => self.free_batch_now(tid, batch),
            FreeMode::Amortized { .. } => {
                // SAFETY: tid-exclusivity contract.
                let buf = unsafe { self.freebufs.get_mut(tid) };
                buf.absorb(batch);
            }
            FreeMode::Adaptive => {
                // Park the batch like Amortized, then let the controller
                // consume the window: a disposal IS a scan/epoch boundary,
                // so the retune happens off the per-op fast path.
                // SAFETY: tid-exclusivity contract.
                let buf = unsafe { self.freebufs.get_mut(tid) };
                buf.absorb(batch);
                self.adapt_recompute(tid);
            }
            FreeMode::Pooled => {
                // SAFETY: tid-exclusivity contract; batch pointers are live
                // blocks of `self.alloc` (retire contract).
                unsafe { self.pools.get_mut(tid).absorb(batch) };
            }
            FreeMode::Background => {
                let bg = self
                    .bg
                    .as_ref()
                    .expect("Background mode spawns a reclaimer");
                let n = batch.len() as u64;
                // Freed-count accounting happens here (sender side) so the
                // garbage gauge stays single-writer per tid; the actual
                // dealloc time lands on the background thread's core.
                let sent = batch.take();
                if bg.sender.send(BgMsg::Batch(sent)).is_ok() {
                    self.stats.get(tid).on_free(n);
                }
            }
        }
    }

    /// Frees a whole batch immediately, recording one `BatchFree` timeline
    /// event covering it (the boxes of Fig. 2) plus per-call events when
    /// enabled (Fig. 3 / Fig. 17).
    pub fn free_batch_now(&self, tid: Tid, batch: &mut RetiredList) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        let t0 = now_ns();
        while let Some(r) = batch.pop() {
            self.dealloc_recorded(tid, r);
        }
        let t1 = now_ns();
        let c = self.stats.get(tid);
        c.on_free(n);
        c.add_free_ns(t1 - t0);
        self.cfg
            .recorder
            .record(tid, EventKind::BatchFree, t0, t1, n);
    }

    /// The amortized drain. Schemes call this from `on_alloc` — freeing is
    /// coupled to *allocation*, which is the §7 guidance ("amortized
    /// freeing will be most effective if the number of objects freed and
    /// allocated per operation is similar") made exact: every block that
    /// leaves the thread cache is replaced by one from the freeable list,
    /// so the cache level stays flat and flushes never trigger. No-op in
    /// batch mode or when the freeable list is empty.
    #[inline]
    pub fn tick(&self, tid: Tid) {
        let per_op = match self.cfg.mode {
            FreeMode::Amortized { per_op } => per_op,
            // SAFETY: tid-exclusivity contract (read of own slot).
            FreeMode::Adaptive => unsafe { self.ctrls.peek(tid) }.per_op(),
            FreeMode::Batch | FreeMode::Background | FreeMode::Pooled => return,
        };
        self.drain_n(tid, per_op);
    }

    /// Pool allocation ([`FreeMode::Pooled`]): serves `size` bytes from the
    /// thread's object pool if a block of the matching size class is
    /// available. `None` in every other mode (or on a pool miss) — the
    /// caller then allocates normally.
    #[inline]
    pub fn pool_alloc(&self, tid: Tid, size: usize) -> Option<NonNull<u8>> {
        if self.cfg.mode != FreeMode::Pooled {
            return None;
        }
        // SAFETY: tid-exclusivity contract.
        let pool = unsafe { self.pools.get_mut(tid) };
        let r = pool.pop_for(size)?;
        self.stats.get(tid).on_pool_hit();
        Some(r.ptr)
    }

    /// The backlog relief valve, called from `begin_op`: the alloc-coupled
    /// drain services the freeable list at exactly its arrival rate, so
    /// any burst would otherwise persist forever (a ρ = 1 queue). When the
    /// backlog exceeds `af_backlog_cap`, drain extra objects per operation
    /// until it is back under the cap.
    #[inline]
    pub fn relief(&self, tid: Tid) {
        let (per_op, backlog_cap) = match self.cfg.mode {
            FreeMode::Amortized { per_op } => (per_op, self.cfg.af_backlog_cap),
            FreeMode::Adaptive => {
                // SAFETY: tid-exclusivity contract (read of own slot).
                let ctrl = unsafe { self.ctrls.peek(tid) };
                // Drain at double rate under relief so a burst clears in
                // finite time even at per_op == 1.
                (ctrl.per_op() * 2, ctrl.relief_cap())
            }
            FreeMode::Pooled => {
                // A pool that outgrows the backlog cap holds memory the
                // allocator can never reuse elsewhere; bleed the excess
                // back one object per operation.
                // SAFETY: tid-exclusivity contract.
                let pool = unsafe { self.pools.get_mut(tid) };
                if pool.len() > self.cfg.af_backlog_cap {
                    let mut excess = RetiredList::new();
                    pool.take_excess(1, &mut excess);
                    self.free_batch_now(tid, &mut excess);
                }
                return;
            }
            FreeMode::Batch | FreeMode::Background => return,
        };
        // SAFETY: tid-exclusivity contract (len read of own slot).
        let backlog = unsafe { self.freebufs.peek(tid).len() };
        if backlog > backlog_cap {
            self.drain_n(tid, per_op);
        }
    }

    /// Drains up to `n` objects from `tid`'s freeable list.
    ///
    /// Timing: with per-call recording on, every free is clocked exactly
    /// (the whole point of that mode). Otherwise this per-operation fast
    /// path samples 1 drain in [`crate::smr_stats::DRAIN_SAMPLE_PERIOD`]
    /// and extrapolates, like the allocator's own counters — two clock
    /// reads per operation would otherwise dominate the drained object's
    /// cost.
    #[inline]
    fn drain_n(&self, tid: Tid, n: usize) {
        // SAFETY: tid-exclusivity contract.
        let buf = unsafe { self.freebufs.get_mut(tid) };
        if buf.is_empty() {
            return;
        }
        let c = self.stats.get(tid);
        if self.cfg.free_call_record_ns != u64::MAX {
            let t0 = now_ns();
            let mut freed = 0u64;
            for _ in 0..n {
                let Some(r) = buf.pop() else { break };
                freed += 1;
                self.dealloc_one(tid, r);
            }
            let t1 = now_ns();
            c.on_free(freed);
            c.add_free_ns(t1 - t0);
            return;
        }
        let t0 = c.on_drain_tick().then(now_ns);
        let mut freed = 0u64;
        for _ in 0..n {
            let Some(r) = buf.pop() else { break };
            freed += 1;
            self.alloc.dealloc(tid, r.ptr);
        }
        c.on_free(freed);
        if let Some(t0) = t0 {
            c.add_sampled_free_ns(now_ns() - t0);
        }
    }

    /// Frees one retired object. When per-call recording is enabled, the
    /// call's latency goes into the per-thread histogram (Fig. 3 /
    /// Appendix F percentiles) and, if long enough, into the timeline as an
    /// individual `FreeCall` event.
    #[inline]
    fn dealloc_one(&self, tid: Tid, r: crate::Retired) {
        if self.cfg.free_call_record_ns != u64::MAX {
            let t0 = now_ns();
            self.alloc.dealloc(tid, r.ptr);
            let t1 = now_ns();
            self.stats.record_free_latency(tid, t1 - t0);
            if t1 - t0 >= self.cfg.free_call_record_ns {
                self.cfg.recorder.record(
                    tid,
                    EventKind::FreeCall,
                    t0,
                    t1,
                    r.addr() as u64 & 0xFFFF_FFFF,
                );
            }
        } else {
            self.alloc.dealloc(tid, r.ptr);
        }
    }

    /// Like [`dealloc_one`](Self::dealloc_one) (separate name so batch and
    /// tick paths read clearly at call sites).
    #[inline]
    fn dealloc_recorded(&self, tid: Tid, r: crate::Retired) {
        self.dealloc_one(tid, r);
    }

    /// A copy of `tid`'s adaptive controller in [`FreeMode::Adaptive`]
    /// (`None` in every other mode). Reporting/tests only — the clone is
    /// a handful of `Copy` fields, and a racy read of another thread's
    /// slot is tolerated under the reporting convention.
    pub fn adaptive_ctrl(&self, tid: Tid) -> Option<AdaptiveCtrl> {
        match self.cfg.mode {
            // SAFETY: reporting convention (racy read tolerated).
            FreeMode::Adaptive => Some(unsafe { self.ctrls.peek(tid) }.clone()),
            _ => None,
        }
    }

    /// Current length of `tid`'s freeable list.
    pub fn freebuf_len(&self, tid: Tid) -> usize {
        // SAFETY: teardown/reporting convention (racy read tolerated).
        unsafe { self.freebufs.peek(tid).len() }
    }

    /// Current size of `tid`'s object pool ([`FreeMode::Pooled`]).
    pub fn pool_len(&self, tid: Tid) -> usize {
        // SAFETY: teardown/reporting convention (racy read tolerated).
        unsafe { self.pools.peek(tid).len() }
    }

    /// Teardown: frees everything in `tid`'s freeable list and object pool
    /// immediately.
    pub fn drain_freebuf(&self, tid: Tid) {
        // SAFETY: callers guarantee quiescence (trait contract of
        // `quiesce_and_drain`).
        let mut all = unsafe { self.freebufs.get_mut(tid) }.drain_all();
        self.free_batch_now(tid, &mut all);
        // SAFETY: quiescence, as above.
        let mut pooled = unsafe { self.pools.get_mut(tid) }.drain_all();
        self.free_batch_now(tid, &mut pooled);
    }

    /// Records an epoch advance: blue-dot timeline event, epoch counter,
    /// garbage-series sample, peak watermark.
    pub fn record_epoch_advance(&self, tid: Tid, new_epoch: u64) {
        self.stats.epochs.fetch_add(1, Ordering::Relaxed);
        self.cfg
            .recorder
            .mark(tid, EventKind::EpochAdvance, new_epoch);
        let garbage = self.stats.observe_garbage();
        if let Some(series) = &self.cfg.garbage_series {
            series.push(new_epoch as f64, garbage as f64);
        }
    }

    /// The cached scheme name (base plus free-mode suffix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Background mode: blocks until the reclaimer has freed everything
    /// sent so far (used by `quiesce_and_drain` for deterministic
    /// teardown). No-op in other modes.
    pub fn sync_background(&self) {
        if let Some(bg) = &self.bg {
            let (ack_tx, ack_rx) = mpsc::channel();
            if bg.sender.send(BgMsg::Sync(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
    }
}

impl Drop for SchemeCommon {
    fn drop(&mut self) {
        if let Some(bg) = &mut self.bg {
            // Closing the channel ends the reclaimer's recv loop.
            let (closed_tx, _) = mpsc::channel();
            let _ = std::mem::replace(&mut bg.sender, closed_tx);
            if let Some(h) = bg.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Retired;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel};
    use epic_timeline::{Recorder, Series};

    fn common(mode: FreeMode) -> SchemeCommon {
        let alloc = build_allocator(AllocatorKind::Sys, 2, CostModel::zero());
        let cfg = SmrConfig::new(2)
            .with_mode(mode)
            .with_recorder(Arc::new(Recorder::new(2, 128)))
            .with_garbage_series(Arc::new(Series::new("g")));
        SchemeCommon::new("test", alloc, cfg)
    }

    fn make_batch(c: &SchemeCommon, tid: Tid, n: usize) -> RetiredList {
        let mut list = RetiredList::new();
        for _ in 0..n {
            let p = c.alloc.alloc(tid, 64);
            c.stats.get(tid).on_retire(1);
            // SAFETY: live block of c.alloc, exclusively ours.
            unsafe { list.push(Retired::new(p)) };
        }
        list
    }

    #[test]
    fn batch_mode_frees_immediately() {
        let c = common(FreeMode::Batch);
        let mut batch = make_batch(&c, 0, 10);
        c.dispose(0, &mut batch);
        assert!(batch.is_empty());
        let snap = c.stats.snapshot();
        assert_eq!(snap.freed, 10);
        assert_eq!(snap.garbage, 0);
        // One BatchFree event recorded.
        let events = c.cfg.recorder.events(0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), EventKind::BatchFree);
        assert_eq!(events[0].value, 10);
    }

    #[test]
    fn amortized_mode_queues_then_ticks() {
        let c = common(FreeMode::Amortized { per_op: 3 });
        let mut batch = make_batch(&c, 0, 10);
        c.dispose(0, &mut batch);
        assert_eq!(c.stats.snapshot().freed, 0, "nothing freed yet");
        assert_eq!(c.freebuf_len(0), 10);
        assert_eq!(
            c.stats.snapshot().garbage,
            10,
            "queued objects are still garbage"
        );

        c.tick(0);
        assert_eq!(c.stats.snapshot().freed, 3);
        assert_eq!(c.freebuf_len(0), 7);
        for _ in 0..3 {
            c.tick(0);
        }
        assert_eq!(c.stats.snapshot().freed, 10);
        assert_eq!(c.stats.snapshot().garbage, 0);
        c.tick(0); // empty tick is harmless
        assert_eq!(c.stats.snapshot().freed, 10);
    }

    #[test]
    fn drain_freebuf_flushes_everything() {
        let c = common(FreeMode::Amortized { per_op: 1 });
        let mut batch = make_batch(&c, 1, 5);
        c.dispose(1, &mut batch);
        c.drain_freebuf(1);
        assert_eq!(c.stats.snapshot().freed, 5);
        assert_eq!(c.freebuf_len(1), 0);
    }

    #[test]
    fn epoch_advance_samples_series() {
        let c = common(FreeMode::Batch);
        c.stats.get(0).on_retire(4);
        c.record_epoch_advance(0, 1);
        assert_eq!(c.stats.snapshot().epochs, 1);
        assert_eq!(c.stats.snapshot().peak_garbage, 4);
        let series = c.cfg.garbage_series.as_ref().unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series.sorted_points()[0], (1.0, 4.0));
        // Blue dot recorded.
        assert_eq!(c.cfg.recorder.events(0)[0].kind(), EventKind::EpochAdvance);
        // Clean up gauge for hygiene.
        c.stats.get(0).on_free(4);
    }

    #[test]
    fn name_suffixes() {
        assert_eq!(common(FreeMode::Batch).name(), "test");
        assert_eq!(common(FreeMode::amortized()).name(), "test_af");
        assert_eq!(common(FreeMode::Background).name(), "test_bg");
        assert_eq!(common(FreeMode::Adaptive).name(), "test_adapt");
    }

    #[test]
    fn adaptive_mode_parks_batches_and_runs_the_controller() {
        let c = common(FreeMode::Adaptive);
        assert_eq!(c.adaptive_ctrl(0).unwrap().updates(), 0);
        let mut batch = make_batch(&c, 0, 10);
        c.dispose(0, &mut batch);
        // Parked like Amortized, not freed.
        assert_eq!(c.stats.snapshot().freed, 0);
        assert_eq!(c.freebuf_len(0), 10);
        // The disposal boundary consumed one control window.
        let ctrl = c.adaptive_ctrl(0).unwrap();
        assert_eq!(ctrl.updates(), 1);
        // Ticks drain at the controller's rate.
        c.tick(0);
        assert_eq!(c.stats.snapshot().freed as usize, ctrl.per_op());
        // bag_cap(tid) reads the controller, not the static config.
        assert_eq!(c.bag_cap(0), ctrl.bag_cap());
        // Other threads' controllers are untouched.
        assert_eq!(c.adaptive_ctrl(1).unwrap().updates(), 0);
        c.drain_freebuf(0);
    }

    #[test]
    fn adaptive_ctrl_is_none_outside_adaptive_mode() {
        let c = common(FreeMode::amortized());
        assert!(c.adaptive_ctrl(0).is_none());
        assert_eq!(c.bag_cap(0), c.cfg.bag_cap);
    }

    #[test]
    fn background_mode_frees_on_reclaimer_thread() {
        // Allocator sized max_threads + 1: tid 2 is the reclaimer's.
        let alloc = build_allocator(AllocatorKind::Sys, 3, CostModel::zero());
        let cfg = SmrConfig::new(2)
            .with_mode(FreeMode::Background)
            .with_recorder(Arc::new(Recorder::new(2, 128)));
        let c = SchemeCommon::new("test", Arc::clone(&alloc), cfg);
        let mut batch = make_batch(&c, 0, 20);
        c.dispose(0, &mut batch);
        assert!(batch.is_empty());
        // Deterministic wait for the reclaimer.
        c.sync_background();
        let snap = c.stats.snapshot();
        assert_eq!(snap.freed, 20);
        assert_eq!(snap.garbage, 0);
        // The deallocs happened under the reclaimer's tid (2), not tid 0.
        assert_eq!(alloc.thread_stats(2).deallocs, 20);
        assert_eq!(alloc.thread_stats(0).deallocs, 0);
    }

    #[test]
    fn pooled_mode_recycles_matching_class() {
        let c = common(FreeMode::Pooled);
        // Retire a 64-byte block; it must come back for a 64-byte request
        // but not for a 256-byte one.
        let mut batch = make_batch(&c, 0, 1);
        let retired_addr = {
            let r = batch.pop().unwrap();
            // SAFETY: live block of c.alloc, exclusively ours.
            unsafe { batch.push(r) };
            r.addr()
        };
        c.dispose(0, &mut batch);
        assert_eq!(c.pool_len(0), 1);
        assert!(c.pool_alloc(0, 256).is_none(), "class mismatch must miss");
        let hit = c.pool_alloc(0, 64).expect("class match must hit");
        assert_eq!(hit.as_ptr() as usize, retired_addr);
        assert_eq!(c.pool_len(0), 0);
        let snap = c.stats.snapshot();
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(snap.freed, 1, "pool hit leaves the SMR system");
        assert_eq!(snap.garbage, 0);
        // The allocator never saw a dealloc: the block was recycled.
        assert_eq!(c.alloc.snapshot().totals.deallocs, 0);
        // Clean up: block is now "live" again; return it for hygiene.
        c.alloc.dealloc(0, hit);
    }

    #[test]
    fn pool_alloc_refuses_outside_pooled_mode() {
        let c = common(FreeMode::amortized());
        let mut batch = make_batch(&c, 0, 2);
        c.dispose(0, &mut batch);
        assert!(c.pool_alloc(0, 64).is_none(), "AF mode must not pool");
        c.drain_freebuf(0);
    }

    #[test]
    fn pooled_mode_drains_at_teardown() {
        let c = common(FreeMode::Pooled);
        let mut batch = make_batch(&c, 1, 5);
        c.dispose(1, &mut batch);
        assert_eq!(c.pool_len(1), 5);
        c.drain_freebuf(1);
        assert_eq!(c.pool_len(1), 0);
        assert_eq!(c.stats.snapshot().freed, 5);
        assert_eq!(c.alloc.snapshot().totals.deallocs, 5);
    }

    #[test]
    fn pooled_relief_bleeds_excess() {
        let alloc = build_allocator(AllocatorKind::Sys, 1, CostModel::zero());
        let mut cfg = SmrConfig::new(1).with_mode(FreeMode::Pooled);
        cfg.af_backlog_cap = 4;
        let c = SchemeCommon::new("test", alloc, cfg);
        let mut batch = make_batch(&c, 0, 8);
        c.dispose(0, &mut batch);
        assert_eq!(c.pool_len(0), 8);
        c.relief(0); // 8 > 4: one object returned to the allocator
        assert_eq!(c.pool_len(0), 7);
        assert_eq!(c.alloc.snapshot().totals.deallocs, 1);
        c.relief(0);
        c.relief(0);
        c.relief(0); // down to the cap
        assert_eq!(c.pool_len(0), 4);
        c.relief(0); // at the cap: no further bleeding
        assert_eq!(c.pool_len(0), 4);
        c.drain_freebuf(0);
    }

    #[test]
    fn background_mode_shutdown_joins_cleanly() {
        let alloc = build_allocator(AllocatorKind::Sys, 3, CostModel::zero());
        let cfg = SmrConfig::new(2).with_mode(FreeMode::Background);
        let c = SchemeCommon::new("test", Arc::clone(&alloc), cfg);
        let mut batch = make_batch(&c, 1, 5);
        c.dispose(1, &mut batch);
        c.sync_background();
        drop(c); // must join without hanging
        assert_eq!(alloc.snapshot().totals.deallocs, 5);
    }

    #[test]
    fn scratch_recycles_without_counting_allocs() {
        let c = common(FreeMode::Batch);
        let mut seg = c.scratch(0, 8);
        seg.push(42);
        c.scratch_done(0, seg);
        let first = c.stats.snapshot().retire_path_allocs;
        assert!(first >= 1, "first borrow heap-allocates and is counted");
        for _ in 0..64 {
            let seg = c.scratch(0, 8);
            assert!(seg.is_empty(), "scratch comes back cleared");
            c.scratch_done(0, seg);
        }
        assert_eq!(
            c.stats.snapshot().retire_path_allocs,
            first,
            "steady-state scratch borrows must not allocate"
        );
    }
}
