//! Atomics used by the reclamation hot paths, swappable for model
//! checking.
//!
//! Normal builds re-export `std::sync::atomic` — zero cost, identical
//! codegen. Under `RUSTFLAGS="--cfg epic_model_check"` the same names
//! come from `epic_check::atomic`: instrumented shims that yield to
//! epic-check's controlled scheduler at every access and model TSO
//! store buffers, so the scheme protocols (hazard publication, era
//! bumps, limbo-bag splicing, QSBR announcements) can be exhaustively
//! interleaved and replayed from a seed. See DESIGN.md §9.

#[cfg(not(epic_model_check))]
pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

#[cfg(epic_model_check)]
pub use epic_check::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize};

pub use std::sync::atomic::Ordering;
