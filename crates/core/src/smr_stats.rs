//! Per-scheme statistics: the quantities behind Tables 2 and 4
//! (ops/s, `% free`, objects freed, epochs advanced) and the garbage
//! accounting behind Figures 4–9.

use epic_util::stats::LogHistogram;
use epic_util::{CachePadded, TidSlots};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// 1-in-N sampling period for timing the amortized drain's fast path —
/// the allocator's own period, re-exported so the two sampled `free_ns`
/// figures in a trial can never drift apart: rare long operations (batch
/// frees) are timed exactly, per-op work is sampled and extrapolated.
pub const DRAIN_SAMPLE_PERIOD: u64 = epic_alloc::stats::SAMPLE_PERIOD;

/// Per-thread scheme counters. `Cell`-based: the owning thread writes,
/// reporting reads are racy-but-monotone (same pattern as the allocator's
/// counters).
#[derive(Debug, Default)]
pub struct ThreadSmrCounters {
    /// Objects retired.
    pub retired: Cell<u64>,
    /// Objects actually freed to the allocator.
    pub freed: Cell<u64>,
    /// Safe batches processed (either freed or queued for amortization).
    pub batches: Cell<u64>,
    /// Nanoseconds spent freeing (batch frees + amortized ticks).
    pub free_ns: Cell<u64>,
    /// Operation restarts caused by neutralization (NBR) or validation.
    pub restarts: Cell<u64>,
    /// Reservation/era scans performed (HP/HE/IBR/WFE reclaim passes).
    pub scans: Cell<u64>,
    /// Objects served from the thread's object pool instead of the
    /// allocator ([`crate::FreeMode::Pooled`]).
    pub pool_hits: Cell<u64>,
    /// Heap allocations performed by the retire pipeline itself (scratch
    /// segment-pool misses). The zero-allocation design keeps this at 0 in
    /// steady state; anything else is measurement overhead attributed to
    /// the scheme under test.
    pub retire_path_allocs: Cell<u64>,
    /// Unreclaimed garbage currently attributed to this thread (limbo
    /// bags and the freeable list). Mirrored into `garbage_pub` for
    /// cross-thread sampling.
    pub garbage: Cell<u64>,
    /// Published copy of `garbage` (relaxed; owner-only writer).
    pub garbage_pub: AtomicU64,
    /// Times the garbage gauge would have gone negative and was clamped to
    /// zero. A nonzero value means retire/free accounting double-counted
    /// somewhere (e.g. a double free) — the stress and model suites assert
    /// it stays 0.
    pub garbage_clamps: Cell<u64>,
    /// Rolling tick for [`DRAIN_SAMPLE_PERIOD`] drain-timing sampling.
    sample_tick_drain: Cell<u64>,
}

// SAFETY: owner-writes / racy-snapshot-reads, identical contract to
// epic_alloc::stats::ThreadCounters.
unsafe impl Sync for ThreadSmrCounters {}

impl ThreadSmrCounters {
    #[inline]
    fn bump(cell: &Cell<u64>, by: u64) {
        cell.set(cell.get().wrapping_add(by));
    }

    /// Records `n` retirements (adds to garbage).
    #[inline]
    pub fn on_retire(&self, n: u64) {
        Self::bump(&self.retired, n);
        self.add_garbage(n as i64);
    }

    /// Records `n` objects actually freed (removes from garbage).
    #[inline]
    pub fn on_free(&self, n: u64) {
        Self::bump(&self.freed, n);
        self.add_garbage(-(n as i64));
    }

    /// Adjusts the garbage gauge and publishes it. A negative result is
    /// clamped to zero, but no longer silently: the clamp is counted into
    /// [`garbage_clamps`](Self::garbage_clamps) so accounting bugs
    /// (double frees, double counting) surface in the stress/model suites
    /// instead of hiding behind the clamp.
    #[inline]
    pub fn add_garbage(&self, delta: i64) {
        let g = self.garbage.get() as i64 + delta;
        if g < 0 {
            Self::bump(&self.garbage_clamps, 1);
        }
        let g = g.max(0) as u64;
        self.garbage.set(g);
        self.garbage_pub.store(g, Ordering::Relaxed);
    }

    /// Adds free time (exact — batch frees and teardown drains).
    #[inline]
    pub fn add_free_ns(&self, ns: u64) {
        Self::bump(&self.free_ns, ns);
    }

    /// Advances the drain sample tick; true when this drain should be
    /// timed (1-in-[`DRAIN_SAMPLE_PERIOD`]).
    #[inline]
    pub fn on_drain_tick(&self) -> bool {
        let t = self.sample_tick_drain.get().wrapping_add(1);
        self.sample_tick_drain.set(t);
        t.is_multiple_of(DRAIN_SAMPLE_PERIOD)
    }

    /// Adds a sampled drain duration, extrapolated by the period.
    #[inline]
    pub fn add_sampled_free_ns(&self, ns: u64) {
        Self::bump(&self.free_ns, ns * DRAIN_SAMPLE_PERIOD);
    }

    /// Records a processed batch.
    #[inline]
    pub fn on_batch(&self) {
        Self::bump(&self.batches, 1);
    }

    /// Records an operation restart.
    #[inline]
    pub fn on_restart(&self) {
        Self::bump(&self.restarts, 1);
    }

    /// Records a reclamation scan.
    #[inline]
    pub fn on_scan(&self) {
        Self::bump(&self.scans, 1);
    }

    /// Records a heap allocation on the retire path (scratch-pool miss).
    #[inline]
    pub fn on_retire_path_alloc(&self, n: u64) {
        Self::bump(&self.retire_path_allocs, n);
    }

    /// Records one object recycled from the pool: it leaves the garbage
    /// gauge (it is live again) and counts as a pool hit *and* a free
    /// (the object left the reclamation system).
    #[inline]
    pub fn on_pool_hit(&self) {
        Self::bump(&self.pool_hits, 1);
        self.on_free(1);
    }

    /// Zeroes the monotone counters (keeps the garbage gauge, which tracks
    /// live state).
    pub fn reset(&self) {
        self.retired.set(0);
        self.freed.set(0);
        self.batches.set(0);
        self.free_ns.set(0);
        self.restarts.set(0);
        self.scans.set(0);
        self.pool_hits.set(0);
        self.retire_path_allocs.set(0);
        self.garbage_clamps.set(0);
    }
}

/// Aggregated scheme statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmrSnapshot {
    /// Total objects retired.
    pub retired: u64,
    /// Total objects freed to the allocator.
    pub freed: u64,
    /// Safe batches processed.
    pub batches: u64,
    /// Nanoseconds spent freeing across threads.
    pub free_ns: u64,
    /// Neutralization/validation restarts.
    pub restarts: u64,
    /// Reclamation scans.
    pub scans: u64,
    /// Current unreclaimed garbage (sum of gauges).
    pub garbage: u64,
    /// Peak observed garbage.
    pub peak_garbage: u64,
    /// Epochs advanced / tokens fully circulated.
    pub epochs: u64,
    /// Objects recycled straight from the pool ([`crate::FreeMode::Pooled`]).
    pub pool_hits: u64,
    /// Heap allocations charged to the retire pipeline itself (0 in the
    /// steady state of the zero-allocation design).
    pub retire_path_allocs: u64,
    /// Garbage-gauge negative clamps (see
    /// [`ThreadSmrCounters::garbage_clamps`]); 0 when accounting balances.
    pub garbage_clamps: u64,
    /// Median individual `free`-call latency (ns, bucket resolution; 0 when
    /// per-call recording was off). Fig. 3 / Appendix F material.
    pub free_p50_ns: u64,
    /// 99th-percentile free-call latency (ns, bucket resolution).
    pub free_p99_ns: u64,
    /// Longest observed free call (ns, exact).
    pub free_max_ns: u64,
}

impl SmrSnapshot {
    /// The `% free` of Tables 2 and 4: fraction of total thread-time spent
    /// freeing.
    pub fn pct_free(&self, wall_ns: u64, threads: usize) -> f64 {
        if wall_ns == 0 || threads == 0 {
            return 0.0;
        }
        100.0 * self.free_ns as f64 / (wall_ns as f64 * threads as f64)
    }
}

/// Scheme-wide shared counters: per-thread blocks plus global gauges.
pub struct SmrStats {
    slots: Box<[CachePadded<ThreadSmrCounters>]>,
    /// Per-thread free-call latency histograms (owner-writes, racy
    /// aggregated reads — same contract as the counters). Populated only
    /// while per-call recording is enabled.
    hists: TidSlots<LogHistogram>,
    /// Global epoch/token-cycle counter.
    pub epochs: AtomicU64,
    /// Peak garbage high-watermark.
    pub peak_garbage: AtomicU64,
}

impl SmrStats {
    /// Creates counters for `n` threads.
    pub fn new(n: usize) -> Self {
        SmrStats {
            slots: (0..n)
                .map(|_| CachePadded::new(ThreadSmrCounters::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            hists: TidSlots::new_with(n, |_| LogHistogram::new()),
            epochs: AtomicU64::new(0),
            peak_garbage: AtomicU64::new(0),
        }
    }

    /// Records one individual free-call latency for `tid`.
    ///
    /// Owner-thread only (tid-exclusivity contract).
    #[inline]
    pub fn record_free_latency(&self, tid: usize, ns: u64) {
        // SAFETY: tid-exclusivity contract of the SMR layer.
        unsafe { self.hists.get_mut(tid) }.push(ns);
    }

    /// Merged free-call latency histogram across all threads (racy
    /// aggregation, reporting only).
    pub fn free_hist(&self) -> LogHistogram {
        let mut merged = LogHistogram::new();
        for tid in 0..self.hists.len() {
            // SAFETY: reporting convention — racy reads of owner-written
            // counters are tolerated (and torn values are monotone-bounded).
            merged.merge(unsafe { self.hists.peek(tid) });
        }
        merged
    }

    /// The counter block for `tid`.
    #[inline]
    pub fn get(&self, tid: usize) -> &ThreadSmrCounters {
        &self.slots[tid]
    }

    /// Number of thread slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slots exist.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sum of published garbage gauges (racy, for sampling).
    pub fn total_garbage(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.garbage_pub.load(Ordering::Relaxed))
            .sum()
    }

    /// Records a garbage observation into the peak watermark, returning the
    /// observed total.
    pub fn observe_garbage(&self) -> u64 {
        let g = self.total_garbage();
        self.peak_garbage.fetch_max(g, Ordering::Relaxed);
        g
    }

    /// Aggregates everything into a snapshot.
    pub fn snapshot(&self) -> SmrSnapshot {
        let mut s = SmrSnapshot {
            epochs: self.epochs.load(Ordering::Relaxed),
            peak_garbage: self.peak_garbage.load(Ordering::Relaxed),
            ..Default::default()
        };
        for c in self.slots.iter() {
            s.retired += c.retired.get();
            s.freed += c.freed.get();
            s.batches += c.batches.get();
            s.free_ns += c.free_ns.get();
            s.restarts += c.restarts.get();
            s.scans += c.scans.get();
            s.pool_hits += c.pool_hits.get();
            s.retire_path_allocs += c.retire_path_allocs.get();
            s.garbage_clamps += c.garbage_clamps.get();
            s.garbage += c.garbage_pub.load(Ordering::Relaxed);
        }
        let hist = self.free_hist();
        if hist.count() > 0 {
            s.free_p50_ns = hist.quantile(0.5);
            s.free_p99_ns = hist.quantile(0.99);
            s.free_max_ns = hist.max();
        }
        s
    }

    /// Resets monotone counters and the epoch/peak gauges.
    pub fn reset(&self) {
        for c in self.slots.iter() {
            c.reset();
        }
        for tid in 0..self.hists.len() {
            // SAFETY: reset happens between trials (quiescence convention).
            unsafe { self.hists.get_mut(tid) }.clear();
        }
        self.epochs.store(0, Ordering::Relaxed);
        self.peak_garbage.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_free_balance_garbage() {
        let s = SmrStats::new(2);
        s.get(0).on_retire(10);
        s.get(1).on_retire(5);
        assert_eq!(s.total_garbage(), 15);
        s.get(0).on_free(4);
        assert_eq!(s.total_garbage(), 11);
        let snap = s.snapshot();
        assert_eq!(snap.retired, 15);
        assert_eq!(snap.freed, 4);
        assert_eq!(snap.garbage, 11);
    }

    #[test]
    fn garbage_never_negative_and_clamp_is_counted() {
        let s = SmrStats::new(1);
        s.get(0).on_free(100);
        assert_eq!(s.total_garbage(), 0);
        // The clamp itself is no longer silent.
        assert_eq!(s.snapshot().garbage_clamps, 1);
        // Balanced accounting does not clamp.
        s.get(0).on_retire(5);
        s.get(0).on_free(5);
        assert_eq!(s.snapshot().garbage_clamps, 1);
        // reset() clears the clamp counter with the other monotone counters.
        s.reset();
        assert_eq!(s.snapshot().garbage_clamps, 0);
    }

    #[test]
    fn peak_watermark() {
        let s = SmrStats::new(1);
        s.get(0).on_retire(50);
        s.observe_garbage();
        s.get(0).on_free(50);
        s.observe_garbage();
        assert_eq!(s.snapshot().peak_garbage, 50);
        assert_eq!(s.snapshot().garbage, 0);
    }

    #[test]
    fn pct_free_math() {
        let snap = SmrSnapshot {
            free_ns: 250,
            ..Default::default()
        };
        assert!((snap.pct_free(1000, 1) - 25.0).abs() < 1e-12);
        assert!((snap.pct_free(500, 2) - 25.0).abs() < 1e-12);
        assert_eq!(snap.pct_free(0, 1), 0.0);
    }

    #[test]
    fn reset_keeps_gauge() {
        let s = SmrStats::new(1);
        s.get(0).on_retire(7);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.retired, 0);
        // Garbage gauge describes live state and survives reset.
        assert_eq!(snap.garbage, 7);
    }

    #[test]
    fn pool_hits_count_as_frees() {
        let s = SmrStats::new(1);
        s.get(0).on_retire(3);
        s.get(0).on_pool_hit();
        let snap = s.snapshot();
        assert_eq!(snap.pool_hits, 1);
        assert_eq!(
            snap.freed, 1,
            "a pool hit removes the object from the SMR system"
        );
        assert_eq!(snap.garbage, 2);
    }

    #[test]
    fn free_latency_percentiles_in_snapshot() {
        let s = SmrStats::new(2);
        for _ in 0..99 {
            s.record_free_latency(0, 200);
        }
        s.record_free_latency(1, 3_000_000);
        let snap = s.snapshot();
        assert!(
            snap.free_p50_ns >= 200 && snap.free_p50_ns < 512,
            "{snap:?}"
        );
        assert_eq!(snap.free_max_ns, 3_000_000);
        assert!(snap.free_p99_ns >= snap.free_p50_ns);
        let hist = s.free_hist();
        assert_eq!(hist.count(), 100);
        // Reset clears the histograms too.
        s.reset();
        assert_eq!(s.free_hist().count(), 0);
        assert_eq!(s.snapshot().free_max_ns, 0);
    }
}
