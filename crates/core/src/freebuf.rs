//! The per-thread freeable list of the Amortized Free technique, plus the
//! per-size-class object pool of [`crate::FreeMode::Pooled`].
//!
//! §3.3: "once a batch of nodes has been identified as safe to free, one
//! does not necessarily need to free them immediately as a batch. One could
//! instead place the batch in a thread local *freeable list*, and gradually
//! free objects one by one, each time a data structure operation is
//! performed."
//!
//! [`FreeBuffer`] is deliberately **not** an object pool: the paper wants
//! to show interaction with the allocator can be made fast, not avoided
//! (§3.3 and footnote 4), so it only delays `dealloc` calls — it never
//! serves allocations. [`PoolBins`] is the pooling alternative the paper
//! declines (and footnote 4 credits for VBR's performance), implemented
//! separately so the `ablation_pooled` bench can compare the two.
//!
//! Both are thin shells over [`RetiredList`]: absorbing a safe batch is an
//! O(1) intrusive splice, and neither structure allocates after
//! construction — the freeable list's spine is the retired memory itself.

use crate::retired::{Retired, RetiredList};
use epic_alloc::{class_of, BlockHeader, NUM_CLASSES};

/// FIFO freeable list. FIFO matters: the oldest safe objects are freed
/// first, bounding the staleness of any queued object.
#[derive(Debug, Default)]
pub struct FreeBuffer {
    queue: RetiredList,
}

impl FreeBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FreeBuffer {
            queue: RetiredList::new(),
        }
    }

    /// Queues an entire safe batch (O(1) splice; `batch` is left empty).
    pub fn absorb(&mut self, batch: &mut RetiredList) {
        self.queue.append(batch);
    }

    /// Queues one object.
    ///
    /// # Safety
    /// Same contract as [`RetiredList::push`]: a live, exclusively-owned
    /// pool-allocator block.
    pub unsafe fn push(&mut self, r: Retired) {
        // SAFETY: forwarded to caller.
        unsafe { self.queue.push(r) };
    }

    /// Takes the oldest queued object, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<Retired> {
        self.queue.pop()
    }

    /// Splices the entire backlog out (teardown).
    pub fn drain_all(&mut self) -> RetiredList {
        self.queue.take()
    }

    /// Objects still queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Per-size-class LIFO object pool ([`crate::FreeMode::Pooled`]).
///
/// LIFO because the most recently retired block is the warmest in cache —
/// the same reason the allocators' thread caches pop newest-first.
#[derive(Debug)]
pub struct PoolBins {
    bins: Box<[RetiredList; NUM_CLASSES]>,
    len: usize,
}

impl Default for PoolBins {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolBins {
    /// An empty pool.
    pub fn new() -> Self {
        PoolBins {
            bins: Box::new(std::array::from_fn(|_| RetiredList::new())),
            len: 0,
        }
    }

    /// Queues a safe batch, binned by each block's size class (read from
    /// its header). `batch` is left empty.
    ///
    /// # Safety
    /// Every pointer in `batch` must be a live block from the scheme's
    /// pool allocator (so its header is readable).
    pub unsafe fn absorb(&mut self, batch: &mut RetiredList) {
        while let Some(r) = batch.pop() {
            // SAFETY: forwarded to caller.
            let class = unsafe { BlockHeader::from_user(r.ptr) }.class as usize;
            // SAFETY: popped from a RetiredList, so still exclusively ours.
            unsafe { self.bins[class].push_front(r) };
            self.len += 1;
        }
    }

    /// Pops the most recently pooled block that can serve a `size`-byte
    /// allocation (exact class match — a smaller block would corrupt the
    /// heap, a larger one would leak capacity).
    pub fn pop_for(&mut self, size: usize) -> Option<Retired> {
        let class = class_of(size);
        let r = self.bins[class].pop();
        self.len -= usize::from(r.is_some());
        r
    }

    /// Moves up to `n` blocks (largest-bin first) into `out`, for draining
    /// excess pool memory back to the allocator.
    pub fn take_excess(&mut self, n: usize, out: &mut RetiredList) {
        for _ in 0..n {
            let Some(bin) = self.bins.iter_mut().max_by_key(|b| b.len()) else {
                break;
            };
            match bin.pop() {
                Some(r) => {
                    self.len -= 1;
                    // SAFETY: popped from our bin, still exclusively ours.
                    unsafe { out.push(r) };
                }
                None => break,
            }
        }
    }

    /// Drains the entire pool (teardown).
    pub fn drain_all(&mut self) -> RetiredList {
        let mut out = RetiredList::new();
        for bin in self.bins.iter_mut() {
            out.append(bin);
        }
        self.len = 0;
        out
    }

    /// Blocks currently pooled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epic_alloc::{build_allocator, AllocatorKind, CostModel, PoolAllocator};
    use std::sync::Arc;

    fn arena() -> Arc<dyn PoolAllocator> {
        build_allocator(AllocatorKind::Sys, 1, CostModel::zero())
    }

    fn batch_of(a: &Arc<dyn PoolAllocator>, sizes: &[usize]) -> (RetiredList, Vec<usize>) {
        let mut list = RetiredList::new();
        let mut addrs = Vec::new();
        for &s in sizes {
            let p = a.alloc(0, s);
            addrs.push(p.as_ptr() as usize);
            // SAFETY: live block of `a`, exclusively ours.
            unsafe { list.push(Retired::new(p)) };
        }
        (list, addrs)
    }

    fn free_list(a: &Arc<dyn PoolAllocator>, mut list: RetiredList) {
        while let Some(r) = list.pop() {
            a.dealloc(0, r.ptr);
        }
    }

    #[test]
    fn absorb_then_pop_fifo() {
        let a = arena();
        let mut buf = FreeBuffer::new();
        let (mut batch, addrs) = batch_of(&a, &[64, 64, 64]);
        buf.absorb(&mut batch);
        assert!(batch.is_empty());
        assert_eq!(buf.len(), 3);
        let first: Vec<usize> = (0..2).map(|_| buf.pop().unwrap().addr()).collect();
        assert_eq!(first, addrs[..2], "oldest first");
        assert_eq!(buf.len(), 1);
        free_list(&a, buf.drain_all());
        for addr in first {
            a.dealloc(0, std::ptr::NonNull::new(addr as *mut u8).unwrap());
        }
    }

    #[test]
    fn pop_past_empty_is_none() {
        let a = arena();
        let mut buf = FreeBuffer::new();
        let p = a.alloc(0, 64);
        // SAFETY: live block of `a`, exclusively ours.
        unsafe { buf.push(Retired::new(p)) };
        assert_eq!(buf.pop().unwrap().addr(), p.as_ptr() as usize);
        assert!(buf.pop().is_none());
        assert!(buf.is_empty());
        a.dealloc(0, p);
    }

    #[test]
    fn absorb_twice_preserves_arrival_order() {
        let a = arena();
        let mut buf = FreeBuffer::new();
        let (mut first, first_addrs) = batch_of(&a, &[64]);
        let (mut second, second_addrs) = batch_of(&a, &[64]);
        buf.absorb(&mut first);
        buf.absorb(&mut second);
        assert_eq!(buf.pop().unwrap().addr(), first_addrs[0]);
        assert_eq!(buf.pop().unwrap().addr(), second_addrs[0]);
        for addr in [first_addrs[0], second_addrs[0]] {
            a.dealloc(0, std::ptr::NonNull::new(addr as *mut u8).unwrap());
        }
    }

    mod pool_bins {
        use super::*;

        #[test]
        fn absorb_bins_by_class_and_pop_matches() {
            let a = arena();
            let mut pool = PoolBins::new();
            let (mut batch, addrs) = batch_of(&a, &[64, 240, 64, 100]);
            // SAFETY: live blocks from `a`.
            unsafe { pool.absorb(&mut batch) };
            assert!(batch.is_empty());
            assert_eq!(pool.len(), 4);
            // 240 and 100 land in different classes (256 vs 128).
            let hit = pool
                .pop_for(200)
                .expect("the 240-byte block serves a 200-byte ask");
            assert_eq!(hit.addr(), addrs[1]);
            assert!(pool.pop_for(200).is_none(), "class 256 is now empty");
            // LIFO within the 64-byte class.
            assert_eq!(pool.pop_for(64).unwrap().addr(), addrs[2]);
            assert_eq!(pool.pop_for(64).unwrap().addr(), addrs[0]);
            assert_eq!(pool.len(), 1);
            free_list(&a, pool.drain_all());
            for addr in [addrs[1], addrs[2], addrs[0]] {
                a.dealloc(0, std::ptr::NonNull::new(addr as *mut u8).unwrap());
            }
        }

        #[test]
        fn take_excess_prefers_fullest_bin() {
            let a = arena();
            let mut pool = PoolBins::new();
            let (mut batch, _) = batch_of(&a, &[64, 64, 64, 240]);
            // SAFETY: live blocks.
            unsafe { pool.absorb(&mut batch) };
            let mut excess = RetiredList::new();
            pool.take_excess(2, &mut excess);
            assert_eq!(excess.len(), 2);
            assert_eq!(pool.len(), 2);
            // Both excess blocks came from the (fuller) 64-byte bin.
            let survivor = pool.pop_for(240).expect("240-class survived the bleed");
            a.dealloc(0, survivor.ptr);
            free_list(&a, excess);
            free_list(&a, pool.drain_all());
        }

        #[test]
        fn drain_all_empties_every_bin() {
            let a = arena();
            let mut pool = PoolBins::new();
            let (mut batch, _) = batch_of(&a, &[16, 64, 512, 2048]);
            // SAFETY: live blocks.
            unsafe { pool.absorb(&mut batch) };
            let all = pool.drain_all();
            assert_eq!(all.len(), 4);
            assert!(pool.is_empty());
            assert!(pool.pop_for(64).is_none());
            let mut none = RetiredList::new();
            pool.take_excess(10, &mut none);
            assert!(none.is_empty());
            free_list(&a, all);
        }
    }
}
